//! Compressed Sparse Row format (Sec. 2.1): non-zero values, 16-bit column
//! indices, and per-row non-zero counts.

use crate::{Error, Result};

/// A CSR sparse matrix with int8 values, 16-bit column indices and 16-bit
/// per-row lengths (the paper's "minimum precision ... 16-bit" accounting).
///
/// # Example
/// ```
/// use nm_core::format::CsrMatrix;
/// let dense = vec![0i8, 3, 0, 0, -1, 0];
/// let csr = CsrMatrix::from_dense(&dense, 2, 3)?;
/// assert_eq!(csr.row_nnz(0), 1);
/// assert_eq!(csr.to_dense(), dense);
/// # Ok::<(), nm_core::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    values: Vec<i8>,
    col_idx: Vec<u16>,
    row_len: Vec<u16>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from a dense row-major buffer.
    ///
    /// # Errors
    /// [`Error::ShapeMismatch`] if the buffer length is wrong, a dimension
    /// exceeds the 16-bit index range, or some row holds more than
    /// `u16::MAX` non-zeros.
    pub fn from_dense(dense: &[i8], rows: usize, cols: usize) -> Result<Self> {
        if dense.len() != rows * cols {
            return Err(Error::ShapeMismatch(format!(
                "buffer has {} elements, expected {rows}x{cols}",
                dense.len()
            )));
        }
        if cols > (u16::MAX as usize + 1) {
            return Err(Error::ShapeMismatch(
                "columns exceed 16-bit index range".into(),
            ));
        }
        let mut m = CsrMatrix {
            rows,
            cols,
            ..Default::default()
        };
        for r in 0..rows {
            let mut count: usize = 0;
            for c in 0..cols {
                let v = dense[r * cols + c];
                if v != 0 {
                    m.values.push(v);
                    m.col_idx.push(c as u16);
                    count += 1;
                }
            }
            if count > u16::MAX as usize {
                return Err(Error::ShapeMismatch(format!(
                    "row {r} has {count} non-zeros"
                )));
            }
            m.row_len.push(count as u16);
        }
        Ok(m)
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Non-zeros in one row.
    ///
    /// # Panics
    /// Panics if `row >= rows()`.
    pub fn row_nnz(&self, row: usize) -> usize {
        usize::from(self.row_len[row])
    }

    /// The `(column, value)` pairs of one row.
    ///
    /// # Panics
    /// Panics if `row >= rows()`.
    pub fn row(&self, row: usize) -> impl Iterator<Item = (usize, i8)> + '_ {
        let start: usize = self.row_len[..row].iter().map(|&l| usize::from(l)).sum();
        let len = self.row_nnz(row);
        self.col_idx[start..start + len]
            .iter()
            .zip(&self.values[start..start + len])
            .map(|(&c, &v)| (usize::from(c), v))
    }

    /// Reconstructs the dense matrix.
    pub fn to_dense(&self) -> Vec<i8> {
        let mut dense = vec![0i8; self.rows * self.cols];
        let mut pos = 0;
        for r in 0..self.rows {
            for _ in 0..self.row_nnz(r) {
                dense[r * self.cols + usize::from(self.col_idx[pos])] = self.values[pos];
                pos += 1;
            }
        }
        dense
    }

    /// Storage: values + 16-bit column indices + 16-bit per-row lengths.
    pub fn memory_bytes(&self) -> usize {
        self.nnz() * (1 + 2) + self.rows * 2
    }

    /// Compression ratio versus dense int8 (`dense / packed`).
    pub fn compression_ratio(&self) -> f64 {
        (self.rows * self.cols) as f64 / self.memory_bytes() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let dense = vec![1i8, 0, 2, 0, 0, 0, 0, -3, 4, 0, 0, 0];
        let csr = CsrMatrix::from_dense(&dense, 3, 4).unwrap();
        assert_eq!(csr.nnz(), 4);
        assert_eq!(csr.to_dense(), dense);
        assert_eq!(csr.row_nnz(1), 1);
        assert_eq!(csr.row(1).collect::<Vec<_>>(), vec![(3, -3)]);
        assert_eq!(csr.row(2).collect::<Vec<_>>(), vec![(0, 4)]);
    }

    #[test]
    fn row_iteration() {
        let dense = vec![0i8, 5, 0, 6, 0, 0, 7, 0];
        let csr = CsrMatrix::from_dense(&dense, 2, 4).unwrap();
        assert_eq!(csr.row(0).collect::<Vec<_>>(), vec![(1, 5), (3, 6)]);
        assert_eq!(csr.row(1).collect::<Vec<_>>(), vec![(2, 7)]);
    }

    #[test]
    fn paper_claim_csr_worse_than_nm_at_75_percent() {
        // Sec. 4: at 75% sparsity (the 1:4 equivalent) CSR compresses
        // less than 25%... i.e. ratio < 4/3 while N:M 1:4 achieves 3.2x.
        let rows = 64;
        let cols = 64;
        let mut dense = vec![0i8; rows * cols];
        for i in 0..(rows * cols / 4) {
            dense[i * 4] = 1;
        }
        let csr = CsrMatrix::from_dense(&dense, rows, cols).unwrap();
        let ratio = csr.compression_ratio();
        assert!(ratio < 4.0 / 3.0 + 0.05, "CSR ratio {ratio}");
    }

    #[test]
    fn empty_rows_cost_row_length_entries() {
        let csr = CsrMatrix::from_dense(&[0i8; 32], 8, 4).unwrap();
        assert_eq!(csr.memory_bytes(), 16);
    }
}
