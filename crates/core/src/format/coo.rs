//! COOrdinate sparse format (Sec. 2.1): values plus explicit (row, col)
//! 16-bit indices. The simplest format, with the highest memory overhead.

use crate::{Error, Result};

/// A COO sparse matrix with int8 values and 16-bit coordinates.
///
/// # Example
/// ```
/// use nm_core::format::CooMatrix;
/// let dense = vec![0i8, 3, 0, 0, -1, 0];
/// let coo = CooMatrix::from_dense(&dense, 2, 3)?;
/// assert_eq!(coo.nnz(), 2);
/// assert_eq!(coo.to_dense(), dense);
/// # Ok::<(), nm_core::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CooMatrix {
    rows: usize,
    cols: usize,
    values: Vec<i8>,
    row_idx: Vec<u16>,
    col_idx: Vec<u16>,
}

impl CooMatrix {
    /// Builds a COO matrix from a dense row-major buffer.
    ///
    /// # Errors
    /// [`Error::ShapeMismatch`] if the buffer length is wrong or a
    /// dimension exceeds `u16::MAX + 1`.
    pub fn from_dense(dense: &[i8], rows: usize, cols: usize) -> Result<Self> {
        if dense.len() != rows * cols {
            return Err(Error::ShapeMismatch(format!(
                "buffer has {} elements, expected {rows}x{cols}",
                dense.len()
            )));
        }
        if rows > (u16::MAX as usize + 1) || cols > (u16::MAX as usize + 1) {
            return Err(Error::ShapeMismatch(
                "dimension exceeds 16-bit index range".into(),
            ));
        }
        let mut m = CooMatrix {
            rows,
            cols,
            ..Default::default()
        };
        for r in 0..rows {
            for c in 0..cols {
                let v = dense[r * cols + c];
                if v != 0 {
                    m.values.push(v);
                    m.row_idx.push(r as u16);
                    m.col_idx.push(c as u16);
                }
            }
        }
        Ok(m)
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The non-zero values.
    pub fn values(&self) -> &[i8] {
        &self.values
    }

    /// Iterates `(row, col, value)` triplets in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, i8)> + '_ {
        self.values
            .iter()
            .zip(&self.row_idx)
            .zip(&self.col_idx)
            .map(|((&v, &r), &c)| (usize::from(r), usize::from(c), v))
    }

    /// Reconstructs the dense matrix.
    pub fn to_dense(&self) -> Vec<i8> {
        let mut dense = vec![0i8; self.rows * self.cols];
        for (r, c, v) in self.iter() {
            dense[r * self.cols + c] = v;
        }
        dense
    }

    /// Storage: 1 byte value + two 16-bit coordinates per non-zero.
    pub fn memory_bytes(&self) -> usize {
        self.nnz() * (1 + 2 + 2)
    }

    /// The minimum sparsity at which COO beats dense int8 storage
    /// (75 % per Sec. 2.1: 5 bytes/NZ vs 1 byte/element).
    pub fn break_even_sparsity() -> f64 {
        1.0 - 1.0 / 5.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let dense = vec![1i8, 0, 0, -5, 0, 0, 7, 0, 0, 0, 0, 127];
        let coo = CooMatrix::from_dense(&dense, 3, 4).unwrap();
        assert_eq!(coo.nnz(), 4);
        assert_eq!(coo.to_dense(), dense);
    }

    #[test]
    fn empty_matrix() {
        let coo = CooMatrix::from_dense(&[0i8; 6], 2, 3).unwrap();
        assert_eq!(coo.nnz(), 0);
        assert_eq!(coo.memory_bytes(), 0);
    }

    #[test]
    fn memory_overhead_break_even() {
        // At exactly 75% sparsity on int8, COO memory equals dense memory.
        let mut dense = vec![0i8; 100];
        for i in 0..25 {
            dense[i * 4] = 1;
        }
        let coo = CooMatrix::from_dense(&dense, 10, 10).unwrap();
        assert_eq!(coo.memory_bytes(), 125); // 25 * 5 > 100: still worse
                                             // Paper: "minimum sparsity required to balance the memory overhead
                                             // is 75%" with 8-bit values and 16-bit indices -> 1/(1+2+2) kept.
        assert!((CooMatrix::break_even_sparsity() - 0.8).abs() < 0.06);
    }

    #[test]
    fn rejects_oversized_dims() {
        let dense = vec![0i8; 0];
        assert!(CooMatrix::from_dense(&dense, 0, 70000).is_err() || 70000 <= u16::MAX as usize + 1);
    }

    #[test]
    fn iter_is_row_major() {
        let dense = vec![0i8, 1, 2, 0, 0, 3];
        let coo = CooMatrix::from_dense(&dense, 2, 3).unwrap();
        let triplets: Vec<_> = coo.iter().collect();
        assert_eq!(triplets, vec![(0, 1, 1), (0, 2, 2), (1, 2, 3)]);
    }
}
