//! The paper's bit-packed N:M sparse weight format (Fig. 1, Sec. 2.1 / 4).
//!
//! A `rows x cols` dense-equivalent matrix is stored as:
//!
//! * `values` — the non-zero int8 values, row-major, `cols/M * N` per row;
//! * `offsets` — for each non-zero, its index inside its M-sized block,
//!   packed into [`crate::sparsity::Nm::offset_bits`] bits.
//!
//! Three offset layouts exist, matching the three kernel families:
//!
//! * [`OffsetLayout::Plain`] — one offset per non-zero (software kernels);
//! * [`OffsetLayout::Duplicated`] — every offset stored twice, so that the
//!   `xDecimate` instruction, which advances its block pointer every *two*
//!   executions (to serve the conv kernels' two im2col buffers), reads the
//!   same offset for both buffers (Sec. 4.1.3);
//! * [`OffsetLayout::Interleaved`] — offsets of two consecutive rows
//!   (output channels) alternate, so the ISA-extended fully-connected
//!   kernel can fill two accumulator registers from a single input buffer
//!   with the same instruction (Sec. 4.2.3, Fig. 6). Requires an even
//!   number of rows.
//!
//! Every row's (or row pair's) offset stream is zero-padded to a 32-bit
//! boundary so kernels can load whole words per output channel.

use super::bitpack::{BitReader, BitWriter};
use crate::sparsity::{check_pattern, prune_magnitude, Nm};
use crate::{Error, Result};

/// How intra-block offsets are arranged in the packed stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OffsetLayout {
    /// One offset per non-zero, row-major (software kernels).
    #[default]
    Plain,
    /// Each offset duplicated back-to-back (ISA-extended conv kernels).
    Duplicated,
    /// Offsets of row pairs `(2i, 2i+1)` interleaved
    /// (ISA-extended fully-connected kernels).
    Interleaved,
}

impl OffsetLayout {
    /// How many packed entries each logical offset occupies.
    fn replication(self) -> usize {
        match self {
            OffsetLayout::Plain | OffsetLayout::Interleaved => 1,
            OffsetLayout::Duplicated => 2,
        }
    }
}

/// An N:M sparse matrix: packed non-zero values plus bit-packed offsets.
///
/// # Example
/// ```
/// use nm_core::format::{NmMatrix, OffsetLayout};
/// use nm_core::sparsity::Nm;
/// # fn main() -> Result<(), nm_core::Error> {
/// let mut dense = vec![0i8; 2 * 16];
/// dense[3] = 5;    // row 0, block 0, offset 3
/// dense[8] = -2;   // row 0, block 1, offset 0
/// dense[16] = 1;   // row 1, block 0, offset 0
/// dense[31] = 9;   // row 1, block 1, offset 7
/// let nm = Nm::new(1, 8)?;
/// let packed = NmMatrix::from_dense(&dense, 2, 16, nm, OffsetLayout::Plain)?;
/// assert_eq!(packed.values(), &[5, -2, 1, 9]);
/// assert_eq!(packed.row_offsets(0), vec![3, 0]);
/// assert_eq!(packed.to_dense(), dense);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NmMatrix {
    rows: usize,
    cols: usize,
    nm: Nm,
    layout: OffsetLayout,
    values: Vec<i8>,
    /// Packed offsets, one padded segment per row (Plain/Duplicated) or per
    /// row pair (Interleaved).
    offsets: Vec<u8>,
    /// Bytes per packed segment (constant across segments).
    segment_bytes: usize,
}

impl NmMatrix {
    /// Packs a dense row-major matrix that already satisfies the pattern.
    ///
    /// # Errors
    /// * [`Error::PatternViolation`] if some block has more than N non-zeros.
    /// * [`Error::ShapeMismatch`] if `cols % M != 0`, the buffer length is
    ///   wrong, or `rows` is odd with [`OffsetLayout::Interleaved`].
    pub fn from_dense(
        dense: &[i8],
        rows: usize,
        cols: usize,
        nm: Nm,
        layout: OffsetLayout,
    ) -> Result<Self> {
        check_pattern(dense, rows, cols, nm)?;
        if layout == OffsetLayout::Interleaved && !rows.is_multiple_of(2) {
            return Err(Error::ShapeMismatch(format!(
                "interleaved layout requires an even number of rows, got {rows}"
            )));
        }
        let blocks_per_row = cols / nm.m();
        let nz_per_row = blocks_per_row * nm.n();
        let mut values = Vec::with_capacity(rows * nz_per_row);
        // Per-row logical offsets, before layout-specific packing.
        let mut row_offsets: Vec<Vec<u8>> = Vec::with_capacity(rows);
        for row in 0..rows {
            let mut offs = Vec::with_capacity(nz_per_row);
            for block in 0..blocks_per_row {
                let start = row * cols + block * nm.m();
                let blk = &dense[start..start + nm.m()];
                let mut found = 0;
                for (o, &v) in blk.iter().enumerate() {
                    if v != 0 {
                        values.push(v);
                        offs.push(o as u8);
                        found += 1;
                    }
                }
                // Blocks with fewer than N non-zeros are padded with
                // explicit zero values at offset 0, keeping per-row counts
                // uniform — the load-balancing property N:M guarantees.
                for _ in found..nm.n() {
                    values.push(0);
                    offs.push(0);
                }
            }
            row_offsets.push(offs);
        }

        let width = nm.offset_bits();
        let mut writer = BitWriter::new();
        let mut segment_bytes = 0;
        match layout {
            OffsetLayout::Plain | OffsetLayout::Duplicated => {
                for offs in &row_offsets {
                    let start = writer.bit_len();
                    for &o in offs {
                        for _ in 0..layout.replication() {
                            writer.push(width, o);
                        }
                    }
                    writer.align_to_bytes(4);
                    segment_bytes = (writer.bit_len() - start) / 8;
                }
            }
            OffsetLayout::Interleaved => {
                for pair in row_offsets.chunks(2) {
                    let start = writer.bit_len();
                    for (&a, &b) in pair[0].iter().zip(&pair[1]) {
                        writer.push(width, a);
                        writer.push(width, b);
                    }
                    writer.align_to_bytes(4);
                    segment_bytes = (writer.bit_len() - start) / 8;
                }
            }
        }

        Ok(NmMatrix {
            rows,
            cols,
            nm,
            layout,
            values,
            offsets: writer.into_bytes(),
            segment_bytes,
        })
    }

    /// Magnitude-prunes a dense matrix to the pattern, then packs it.
    ///
    /// # Errors
    /// Same shape conditions as [`NmMatrix::from_dense`].
    pub fn prune_from_dense(
        dense: &[i8],
        rows: usize,
        cols: usize,
        nm: Nm,
        layout: OffsetLayout,
    ) -> Result<Self> {
        let mut pruned = dense.to_vec();
        prune_magnitude(&mut pruned, rows, cols, nm)?;
        Self::from_dense(&pruned, rows, cols, nm, layout)
    }

    /// Dense-equivalent row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Dense-equivalent column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The sparsity pattern.
    pub fn nm(&self) -> Nm {
        self.nm
    }

    /// The offset layout.
    pub fn layout(&self) -> OffsetLayout {
        self.layout
    }

    /// All non-zero values, row-major.
    pub fn values(&self) -> &[i8] {
        &self.values
    }

    /// The packed offset stream (including per-segment padding).
    pub fn offsets_bytes(&self) -> &[u8] {
        &self.offsets
    }

    /// Packed bytes per row (Plain/Duplicated) or row pair (Interleaved).
    pub fn segment_bytes(&self) -> usize {
        self.segment_bytes
    }

    /// Non-zero values per row.
    pub fn nz_per_row(&self) -> usize {
        (self.cols / self.nm.m()) * self.nm.n()
    }

    /// The non-zero values of one row.
    ///
    /// # Panics
    /// Panics if `row >= rows()`.
    pub fn row_values(&self, row: usize) -> &[i8] {
        assert!(row < self.rows, "row {row} out of range");
        let nz = self.nz_per_row();
        &self.values[row * nz..(row + 1) * nz]
    }

    /// The packed offset bytes of one row (Plain/Duplicated) — a
    /// word-aligned segment suitable for 32-bit loads.
    ///
    /// # Panics
    /// Panics if `row` is out of range or the layout is
    /// [`OffsetLayout::Interleaved`] (use [`NmMatrix::pair_offset_bytes`]).
    pub fn row_offset_bytes(&self, row: usize) -> &[u8] {
        assert!(row < self.rows, "row {row} out of range");
        assert!(
            self.layout != OffsetLayout::Interleaved,
            "interleaved layout stores row pairs"
        );
        &self.offsets[row * self.segment_bytes..(row + 1) * self.segment_bytes]
    }

    /// The packed offset bytes of a row pair (Interleaved layout).
    ///
    /// # Panics
    /// Panics if the layout is not interleaved or `pair >= rows()/2`.
    pub fn pair_offset_bytes(&self, pair: usize) -> &[u8] {
        assert!(
            self.layout == OffsetLayout::Interleaved,
            "layout is not interleaved"
        );
        assert!(pair < self.rows / 2, "pair {pair} out of range");
        &self.offsets[pair * self.segment_bytes..(pair + 1) * self.segment_bytes]
    }

    /// Unpacks the logical (de-duplicated, de-interleaved) offsets of a row.
    ///
    /// # Panics
    /// Panics if `row >= rows()`.
    pub fn row_offsets(&self, row: usize) -> Vec<u8> {
        assert!(row < self.rows, "row {row} out of range");
        let width = self.nm.offset_bits();
        let nz = self.nz_per_row();
        match self.layout {
            OffsetLayout::Plain => {
                let mut r = BitReader::new(self.row_offset_bytes(row));
                (0..nz).map(|_| r.next(width)).collect()
            }
            OffsetLayout::Duplicated => {
                let mut r = BitReader::new(self.row_offset_bytes(row));
                (0..nz)
                    .map(|_| {
                        let a = r.next(width);
                        let b = r.next(width);
                        debug_assert_eq!(a, b, "duplicated offsets must match");
                        a
                    })
                    .collect()
            }
            OffsetLayout::Interleaved => {
                let seg = self.pair_offset_bytes(row / 2);
                let lane = row % 2;
                let mut r = BitReader::new(seg);
                let mut out = Vec::with_capacity(nz);
                for _ in 0..nz {
                    let a = r.next(width);
                    let b = r.next(width);
                    out.push(if lane == 0 { a } else { b });
                }
                out
            }
        }
    }

    /// Reconstructs the dense row-major matrix.
    pub fn to_dense(&self) -> Vec<i8> {
        let mut dense = vec![0i8; self.rows * self.cols];
        let m = self.nm.m();
        let n = self.nm.n();
        for row in 0..self.rows {
            let vals = self.row_values(row);
            let offs = self.row_offsets(row);
            for (i, (&v, &o)) in vals.iter().zip(&offs).enumerate() {
                let block = i / n;
                // Padded zeros decode to zero regardless of offset.
                if v != 0 {
                    dense[row * self.cols + block * m + usize::from(o)] = v;
                }
            }
        }
        dense
    }

    /// Actual packed storage: values plus offsets including word padding.
    pub fn memory_bytes(&self) -> usize {
        self.values.len() + self.offsets.len()
    }

    /// Nominal storage in bits as the paper counts it
    /// (`nz * (8 + offset_bits * replication)`), without alignment padding.
    pub fn memory_bits_nominal(&self) -> usize {
        let per_nz = 8 + self.nm.offset_bits() * self.layout.replication();
        self.values.len() * per_nz
    }

    /// Dense int8 storage of the equivalent matrix.
    pub fn dense_bytes(&self) -> usize {
        self.rows * self.cols
    }

    /// Compression ratio versus dense int8 (`dense / packed`, nominal bits).
    pub fn compression_ratio(&self) -> f64 {
        (self.dense_bytes() * 8) as f64 / self.memory_bits_nominal() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_dense(rows: usize, cols: usize, nm: Nm, seed: u64) -> Vec<i8> {
        // Deterministic pseudo-random N:M-compliant matrix.
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut dense = vec![0i8; rows * cols];
        for block in dense.chunks_mut(nm.m()) {
            for _ in 0..nm.n() {
                let pos = (next() as usize) % block.len();
                let mut v = (next() % 255) as i64 - 127;
                if v == 0 {
                    v = 1;
                }
                block[pos] = v as i8;
            }
        }
        dense
    }

    #[test]
    fn round_trip_all_layouts_all_patterns() {
        for nm in Nm::KERNEL_PATTERNS {
            for layout in [
                OffsetLayout::Plain,
                OffsetLayout::Duplicated,
                OffsetLayout::Interleaved,
            ] {
                let (rows, cols) = (6, nm.m() * 5);
                let dense = sample_dense(rows, cols, nm, 42);
                let packed = NmMatrix::from_dense(&dense, rows, cols, nm, layout).unwrap();
                assert_eq!(packed.to_dense(), dense, "{nm} {layout:?}");
            }
        }
    }

    #[test]
    fn pattern_violation_is_rejected() {
        let mut dense = vec![0i8; 8];
        dense[0] = 1;
        dense[1] = 2; // two NZ in first 1:4 block
        let err = NmMatrix::from_dense(&dense, 1, 8, Nm::ONE_OF_FOUR, OffsetLayout::Plain);
        assert!(matches!(err, Err(Error::PatternViolation { .. })));
    }

    #[test]
    fn interleaved_needs_even_rows() {
        let dense = vec![0i8; 3 * 8];
        let err = NmMatrix::from_dense(&dense, 3, 8, Nm::ONE_OF_EIGHT, OffsetLayout::Interleaved);
        assert!(matches!(err, Err(Error::ShapeMismatch(_))));
    }

    #[test]
    fn values_are_row_major_and_offset_ordered() {
        let mut dense = vec![0i8; 16];
        dense[1] = 10; // row 0 block 0 offset 1
        dense[7] = 20; // row 0 block 1 offset 3
        dense[8] = 30; // row 1 block 0 offset 0
        dense[14] = 40; // row 1 block 1 offset 2
        let p = NmMatrix::from_dense(&dense, 2, 8, Nm::ONE_OF_FOUR, OffsetLayout::Plain).unwrap();
        assert_eq!(p.values(), &[10, 20, 30, 40]);
        assert_eq!(p.row_values(1), &[30, 40]);
        assert_eq!(p.row_offsets(0), vec![1, 3]);
        assert_eq!(p.row_offsets(1), vec![0, 2]);
    }

    #[test]
    fn under_full_blocks_pad_with_zero_values() {
        // An all-zero block still records N (zero) values so per-row
        // counts stay uniform — the property the kernels rely on.
        let dense = vec![0i8; 16];
        let p = NmMatrix::from_dense(&dense, 1, 16, Nm::ONE_OF_EIGHT, OffsetLayout::Plain).unwrap();
        assert_eq!(p.values(), &[0, 0]);
        assert_eq!(p.to_dense(), dense);
    }

    #[test]
    fn duplicated_layout_doubles_offset_bits() {
        let nm = Nm::ONE_OF_EIGHT;
        let dense = sample_dense(2, 32, nm, 7);
        let plain = NmMatrix::from_dense(&dense, 2, 32, nm, OffsetLayout::Plain).unwrap();
        let dup = NmMatrix::from_dense(&dense, 2, 32, nm, OffsetLayout::Duplicated).unwrap();
        assert_eq!(
            dup.memory_bits_nominal() - dup.values().len() * 8,
            2 * (plain.memory_bits_nominal() - plain.values().len() * 8)
        );
        assert_eq!(plain.row_offsets(1), dup.row_offsets(1));
    }

    #[test]
    fn interleaved_matches_figure6_order() {
        // Fig. 6: OFFSETS = o0_ch0, o0_ch1, o1_ch0, o1_ch1, ...
        let nm = Nm::ONE_OF_FOUR;
        let mut dense = vec![0i8; 2 * 8];
        dense[2] = 1; // ch0 block0 off2
        dense[5] = 2; // ch0 block1 off1
        dense[8 + 3] = 3; // ch1 block0 off3
        dense[8 + 4] = 4; // ch1 block1 off0
        let p = NmMatrix::from_dense(&dense, 2, 8, nm, OffsetLayout::Interleaved).unwrap();
        let seg = p.pair_offset_bytes(0);
        let mut r = BitReader::new(seg);
        assert_eq!(r.next(2), 2); // o0 ch0
        assert_eq!(r.next(2), 3); // o0 ch1
        assert_eq!(r.next(2), 1); // o1 ch0
        assert_eq!(r.next(2), 0); // o1 ch1
    }

    #[test]
    fn compression_ratios_match_paper() {
        let close = |a: f64, b: f64| (a - b).abs() < 1e-9;
        for (nm, expect_sw) in [
            (Nm::ONE_OF_FOUR, 8.0 * 4.0 / 10.0),
            (Nm::ONE_OF_EIGHT, 8.0 * 8.0 / 12.0),
            (Nm::ONE_OF_SIXTEEN, 8.0 * 16.0 / 12.0),
        ] {
            let dense = sample_dense(4, nm.m() * 8, nm, 3);
            let p = NmMatrix::from_dense(&dense, 4, nm.m() * 8, nm, OffsetLayout::Plain).unwrap();
            assert!(
                close(p.compression_ratio(), expect_sw),
                "{nm}: {}",
                p.compression_ratio()
            );
        }
    }

    #[test]
    fn segments_are_word_aligned() {
        for nm in Nm::KERNEL_PATTERNS {
            let dense = sample_dense(4, nm.m() * 3, nm, 11);
            let p = NmMatrix::from_dense(&dense, 4, nm.m() * 3, nm, OffsetLayout::Plain).unwrap();
            assert_eq!(p.segment_bytes() % 4, 0);
            assert_eq!(p.offsets_bytes().len(), p.segment_bytes() * 4);
        }
    }
}
