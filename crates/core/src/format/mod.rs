//! Compressed sparse matrix containers.
//!
//! The paper's N:M format ([`NmMatrix`]) stores only non-zero values plus
//! bit-packed intra-block offsets; [`CooMatrix`], [`CsrMatrix`] and
//! [`BlockwiseMatrix`] are the comparison formats discussed in Sec. 2.1 and
//! the related work (Scalpel-style SIMD-width block pruning).
//!
//! All formats hold int8 values of a `rows x cols` row-major dense matrix.
//! For weights, a "row" is one output channel's flattened filter
//! (`FY*FX*C` for convolutions, `C` for fully-connected layers), matching
//! the layout the kernels consume.

mod bitpack;
mod blockwise;
mod channel;
mod coo;
mod csr;
mod dcsr;
mod nm;

pub use bitpack::{read_bits, write_bits, BitReader, BitWriter};
pub use blockwise::BlockwiseMatrix;
pub use channel::ChannelNmMatrix;
pub use coo::CooMatrix;
pub use csr::CsrMatrix;
pub use dcsr::{DcsrMatrix, MAX_DELTA};
pub use nm::{NmMatrix, OffsetLayout};
