//! Scalpel-style blockwise (1 x SIMD-width) sparse format (Yu et al. 2017,
//! discussed in Sec. 3): weights are pruned in dense groups matching the
//! SIMD width so dot-product instructions stay usable, at the cost of a
//! coarser pattern and larger accuracy impact.

use crate::{Error, Result};

/// A blockwise sparse matrix: rows are split into `block` -wide groups;
/// a group is either kept whole (dense bytes) or dropped entirely.
/// Kept groups record a 16-bit group index.
///
/// # Example
/// ```
/// use nm_core::format::BlockwiseMatrix;
/// let dense = vec![1i8, 2, 3, 4, 0, 0, 0, 0];
/// let bw = BlockwiseMatrix::from_dense(&dense, 1, 8, 4)?;
/// assert_eq!(bw.kept_blocks(), 1);
/// assert_eq!(bw.to_dense(), dense);
/// # Ok::<(), nm_core::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockwiseMatrix {
    rows: usize,
    cols: usize,
    block: usize,
    values: Vec<i8>,
    block_idx: Vec<u16>,
    row_len: Vec<u16>,
}

impl BlockwiseMatrix {
    /// Builds a blockwise matrix, keeping every block that contains at
    /// least one non-zero.
    ///
    /// # Errors
    /// [`Error::ShapeMismatch`] if the buffer length is wrong, `cols` is
    /// not a multiple of `block`, or `block` is zero.
    pub fn from_dense(dense: &[i8], rows: usize, cols: usize, block: usize) -> Result<Self> {
        if dense.len() != rows * cols {
            return Err(Error::ShapeMismatch(format!(
                "buffer has {} elements, expected {rows}x{cols}",
                dense.len()
            )));
        }
        if block == 0 || !cols.is_multiple_of(block) {
            return Err(Error::ShapeMismatch(format!(
                "cols {cols} not a multiple of block {block}"
            )));
        }
        let mut m = BlockwiseMatrix {
            rows,
            cols,
            block,
            values: Vec::new(),
            block_idx: Vec::new(),
            row_len: Vec::new(),
        };
        for r in 0..rows {
            let mut kept: u16 = 0;
            for b in 0..cols / block {
                let start = r * cols + b * block;
                let grp = &dense[start..start + block];
                if grp.iter().any(|&v| v != 0) {
                    m.values.extend_from_slice(grp);
                    m.block_idx.push(b as u16);
                    kept += 1;
                }
            }
            m.row_len.push(kept);
        }
        Ok(m)
    }

    /// Magnitude-prunes to keep the `keep` largest-L1-norm blocks per row,
    /// then packs.
    ///
    /// # Errors
    /// Same as [`BlockwiseMatrix::from_dense`].
    pub fn prune_from_dense(
        dense: &[i8],
        rows: usize,
        cols: usize,
        block: usize,
        keep: usize,
    ) -> Result<Self> {
        if block == 0 || !cols.is_multiple_of(block) {
            return Err(Error::ShapeMismatch(format!(
                "cols {cols} not a multiple of block {block}"
            )));
        }
        let mut pruned = dense.to_vec();
        let blocks_per_row = cols / block;
        for r in 0..rows {
            let mut norms: Vec<(usize, i32)> = (0..blocks_per_row)
                .map(|b| {
                    let start = r * cols + b * block;
                    let norm = pruned[start..start + block]
                        .iter()
                        .map(|&v| (v as i32).abs())
                        .sum();
                    (b, norm)
                })
                .collect();
            norms.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
            for &(b, _) in norms.iter().skip(keep) {
                let start = r * cols + b * block;
                pruned[start..start + block].fill(0);
            }
        }
        Self::from_dense(&pruned, rows, cols, block)
    }

    /// Number of kept blocks.
    pub fn kept_blocks(&self) -> usize {
        self.block_idx.len()
    }

    /// The block width.
    pub fn block(&self) -> usize {
        self.block
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Kept blocks in one row.
    ///
    /// # Panics
    /// Panics if `row >= rows()`.
    pub fn row_blocks(&self, row: usize) -> usize {
        usize::from(self.row_len[row])
    }

    /// Kept blocks in one row as `(block_index, values)` pairs.
    ///
    /// # Panics
    /// Panics if `row >= rows`.
    pub fn row(&self, row: usize) -> impl Iterator<Item = (usize, &[i8])> + '_ {
        let start: usize = self.row_len[..row].iter().map(|&l| usize::from(l)).sum();
        let len = usize::from(self.row_len[row]);
        (start..start + len).map(move |i| {
            (
                usize::from(self.block_idx[i]),
                &self.values[i * self.block..(i + 1) * self.block],
            )
        })
    }

    /// Reconstructs the dense matrix.
    pub fn to_dense(&self) -> Vec<i8> {
        let mut dense = vec![0i8; self.rows * self.cols];
        for r in 0..self.rows {
            for (b, vals) in self.row(r) {
                let start = r * self.cols + b * self.block;
                dense[start..start + self.block].copy_from_slice(vals);
            }
        }
        dense
    }

    /// Storage: dense block bytes + 16-bit block indices + 16-bit row lengths.
    pub fn memory_bytes(&self) -> usize {
        self.values.len() + self.kept_blocks() * 2 + self.rows * 2
    }

    /// Effective sparsity after block pruning.
    pub fn sparsity(&self) -> f64 {
        1.0 - self.values.len() as f64 / (self.rows * self.cols) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let dense = vec![0i8, 0, 0, 0, 1, -2, 0, 4, 0, 0, 0, 0, 9, 9, 9, 9];
        let bw = BlockwiseMatrix::from_dense(&dense, 2, 8, 4).unwrap();
        assert_eq!(bw.kept_blocks(), 2);
        assert_eq!(bw.to_dense(), dense);
    }

    #[test]
    fn prune_keeps_highest_l1_blocks() {
        let dense = vec![1i8, 1, 1, 1, 9, 9, 9, 9, 2, 2, 2, 2];
        let bw = BlockwiseMatrix::prune_from_dense(&dense, 1, 12, 4, 1).unwrap();
        let rows: Vec<_> = bw.row(0).collect();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].0, 1);
        assert_eq!(rows[0].1, &[9, 9, 9, 9]);
        assert!((bw.sparsity() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_bad_block() {
        assert!(BlockwiseMatrix::from_dense(&[0i8; 8], 1, 8, 3).is_err());
        assert!(BlockwiseMatrix::from_dense(&[0i8; 8], 1, 8, 0).is_err());
    }

    #[test]
    fn memory_accounting() {
        let dense = vec![1i8, 0, 0, 0, 0, 0, 0, 0];
        let bw = BlockwiseMatrix::from_dense(&dense, 1, 8, 4).unwrap();
        // 4 value bytes + 2 index bytes + 2 row-length bytes.
        assert_eq!(bw.memory_bytes(), 8);
    }
}
