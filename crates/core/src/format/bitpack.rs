//! Little-endian bit packing for sub-byte offset streams.
//!
//! Offsets are packed LSB-first within each byte, and bytes are stored in
//! increasing address order, so a 32-bit little-endian word load followed by
//! `(word >> (i * width)) & mask` — exactly what the kernels and the
//! `xDecimate` hardware do — retrieves the `i`-th offset of that word.

/// Writes `width`-bit `value` at bit position `bitpos` into `buf`,
/// growing the buffer as needed. Bits beyond `width` in `value` are ignored.
///
/// # Panics
/// Panics if `width` is 0 or greater than 8.
pub fn write_bits(buf: &mut Vec<u8>, bitpos: usize, width: usize, value: u8) {
    assert!(width > 0 && width <= 8, "width must be in 1..=8");
    let needed = (bitpos + width).div_ceil(8);
    if buf.len() < needed {
        buf.resize(needed, 0);
    }
    let masked = u16::from(value) & ((1u16 << width) - 1);
    let byte = bitpos / 8;
    let bit = bitpos % 8;
    let span = masked << bit;
    buf[byte] |= (span & 0xFF) as u8;
    if bit + width > 8 {
        buf[byte + 1] |= (span >> 8) as u8;
    }
}

/// Reads a `width`-bit value at bit position `bitpos` from `buf`.
/// Out-of-range reads return 0 bits for the missing part.
///
/// # Panics
/// Panics if `width` is 0 or greater than 8.
pub fn read_bits(buf: &[u8], bitpos: usize, width: usize) -> u8 {
    assert!(width > 0 && width <= 8, "width must be in 1..=8");
    let byte = bitpos / 8;
    let bit = bitpos % 8;
    let lo = u16::from(*buf.get(byte).unwrap_or(&0));
    let hi = u16::from(*buf.get(byte + 1).unwrap_or(&0));
    let word = lo | (hi << 8);
    ((word >> bit) & ((1u16 << width) - 1)) as u8
}

/// Incremental bit writer over an owned byte buffer.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    buf: Vec<u8>,
    bitpos: usize,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a `width`-bit value.
    ///
    /// # Panics
    /// Panics if `width` is 0 or greater than 8.
    pub fn push(&mut self, width: usize, value: u8) {
        write_bits(&mut self.buf, self.bitpos, width, value);
        self.bitpos += width;
    }

    /// Pads with zero bits up to the next multiple of `bytes` bytes.
    pub fn align_to_bytes(&mut self, bytes: usize) {
        let bits = bytes * 8;
        let rem = self.bitpos % bits;
        if rem != 0 {
            self.bitpos += bits - rem;
            let needed = self.bitpos / 8;
            if self.buf.len() < needed {
                self.buf.resize(needed, 0);
            }
        }
    }

    /// Current length in bits.
    pub fn bit_len(&self) -> usize {
        self.bitpos
    }

    /// Finishes and returns the packed bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Incremental bit reader over a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    buf: &'a [u8],
    bitpos: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader positioned at bit 0.
    pub fn new(buf: &'a [u8]) -> Self {
        BitReader { buf, bitpos: 0 }
    }

    /// Creates a reader positioned at an arbitrary bit offset.
    pub fn at_bit(buf: &'a [u8], bitpos: usize) -> Self {
        BitReader { buf, bitpos }
    }

    /// Reads the next `width`-bit value.
    ///
    /// # Panics
    /// Panics if `width` is 0 or greater than 8.
    pub fn next(&mut self, width: usize) -> u8 {
        let v = read_bits(self.buf, self.bitpos, width);
        self.bitpos += width;
        v
    }

    /// Current bit position.
    pub fn bit_pos(&self) -> usize {
        self.bitpos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_2bit() {
        let mut buf = Vec::new();
        for (i, v) in [3u8, 0, 1, 2, 3, 3, 0, 1].iter().enumerate() {
            write_bits(&mut buf, i * 2, 2, *v);
        }
        assert_eq!(buf.len(), 2);
        for (i, v) in [3u8, 0, 1, 2, 3, 3, 0, 1].iter().enumerate() {
            assert_eq!(read_bits(&buf, i * 2, 2), *v);
        }
    }

    #[test]
    fn round_trip_4bit_matches_word_shift_semantics() {
        // Pack 8 nibbles, then check the hardware's view: a little-endian
        // u32 load + (word >> (i*4)) & 0xF must retrieve offset i.
        let offs = [7u8, 2, 15, 0, 9, 4, 1, 11];
        let mut w = BitWriter::new();
        for &o in &offs {
            w.push(4, o);
        }
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), 4);
        let word = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
        for (i, &o) in offs.iter().enumerate().take(8) {
            assert_eq!(((word >> (i * 4)) & 0xF) as u8, o);
        }
    }

    #[test]
    fn cross_byte_values() {
        // 3-bit values straddle byte boundaries.
        let vals = [5u8, 7, 1, 6, 2, 3, 4, 0];
        let mut w = BitWriter::new();
        for &v in &vals {
            w.push(3, v);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &v in &vals {
            assert_eq!(r.next(3), v);
        }
    }

    #[test]
    fn align_pads_with_zeros() {
        let mut w = BitWriter::new();
        w.push(4, 0xF);
        w.align_to_bytes(4);
        assert_eq!(w.bit_len(), 32);
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![0x0F, 0, 0, 0]);
    }

    #[test]
    fn value_wider_than_width_is_masked() {
        let mut buf = Vec::new();
        write_bits(&mut buf, 0, 2, 0xFF);
        assert_eq!(read_bits(&buf, 0, 2), 3);
        assert_eq!(read_bits(&buf, 2, 2), 0);
    }

    #[test]
    fn out_of_range_read_is_zero() {
        let buf = vec![0xFFu8];
        assert_eq!(read_bits(&buf, 8, 4), 0);
        assert_eq!(read_bits(&buf, 6, 4), 0b11); // 2 valid bits + 2 zeros
    }

    #[test]
    #[should_panic]
    fn zero_width_panics() {
        let mut buf = Vec::new();
        write_bits(&mut buf, 0, 0, 1);
    }
}
