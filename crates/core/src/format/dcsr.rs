//! Delta-compressed CSR (dCSR) — the memory-efficient unstructured
//! format of Trommer et al. 2021, implemented as an executable
//! comparator for the paper's related-work discussion (Sec. 3/Table 3).
//!
//! Column indices are stored as *deltas* between consecutive non-zeros
//! of a row, packed in 4-bit fields:
//!
//! * delta `d` in `1..=15` → one field holding `d`;
//! * larger deltas → an escape field `0` followed by two fields holding
//!   `d - 16` (little-endian nibbles), covering `d <= 271`.
//!
//! Rows start from an implicit column of `-1` (so a leading non-zero at
//! column 0 is delta 1). Compared to 16-bit CSR indices this roughly
//! quarters the index storage at DNN sparsities, in exchange for a
//! decode step per non-zero — exactly the trade the paper contrasts
//! against N:M's fixed-width offsets.

use super::bitpack::{BitReader, BitWriter};
use crate::{Error, Result};

/// Maximum encodable column delta (escape carries 8 extra bits).
pub const MAX_DELTA: usize = 271;

/// A dCSR matrix: non-zero values plus nibble-packed column deltas.
///
/// # Example
/// ```
/// use nm_core::format::DcsrMatrix;
/// # fn main() -> Result<(), nm_core::Error> {
/// let dense = vec![0, 5, 0, 0, -3, 0, 0, 0];
/// let m = DcsrMatrix::from_dense(&dense, 1, 8)?;
/// assert_eq!(m.to_dense(), dense);
/// assert_eq!(m.row_nnz(0), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DcsrMatrix {
    rows: usize,
    cols: usize,
    values: Vec<i8>,
    /// Nibble-packed delta stream, one byte-aligned segment per row.
    deltas: Vec<u8>,
    /// Per-row start into `values` (length `rows + 1`).
    value_starts: Vec<usize>,
    /// Per-row byte start into `deltas` (length `rows + 1`).
    delta_starts: Vec<usize>,
    /// Per-row escape count (deltas that needed the 3-field form).
    escapes: Vec<usize>,
}

impl DcsrMatrix {
    /// Encodes a dense row-major matrix.
    ///
    /// # Errors
    /// [`Error::ShapeMismatch`] if the buffer length is not
    /// `rows * cols`; [`Error::Unsupported`] if a gap between non-zeros
    /// exceeds [`MAX_DELTA`].
    pub fn from_dense(dense: &[i8], rows: usize, cols: usize) -> Result<Self> {
        if dense.len() != rows * cols {
            return Err(Error::ShapeMismatch(format!(
                "buffer has {} elements, expected {rows}x{cols}",
                dense.len()
            )));
        }
        let mut values = Vec::new();
        let mut writer = BitWriter::new();
        let mut value_starts = Vec::with_capacity(rows + 1);
        let mut delta_starts = Vec::with_capacity(rows + 1);
        let mut escapes = Vec::with_capacity(rows);
        for row in 0..rows {
            value_starts.push(values.len());
            delta_starts.push(writer.bit_len() / 8);
            let mut prev: isize = -1;
            let mut esc = 0;
            for (c, &v) in dense[row * cols..(row + 1) * cols].iter().enumerate() {
                if v == 0 {
                    continue;
                }
                let d = (c as isize - prev) as usize;
                prev = c as isize;
                values.push(v);
                if d <= 15 {
                    writer.push(4, d as u8);
                } else if d <= MAX_DELTA {
                    writer.push(4, 0);
                    writer.push(4, ((d - 16) & 0xF) as u8);
                    writer.push(4, ((d - 16) >> 4) as u8);
                    esc += 1;
                } else {
                    return Err(Error::Unsupported(format!(
                        "dCSR delta {d} exceeds {MAX_DELTA} (row {row}, col {c})"
                    )));
                }
            }
            writer.align_to_bytes(1);
            escapes.push(esc);
        }
        value_starts.push(values.len());
        delta_starts.push(writer.bit_len() / 8);
        Ok(DcsrMatrix {
            rows,
            cols,
            values,
            deltas: writer.into_bytes(),
            value_starts,
            delta_starts,
            escapes,
        })
    }

    /// Dense-equivalent row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Dense-equivalent column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// All non-zero values, row-major.
    pub fn values(&self) -> &[i8] {
        &self.values
    }

    /// The nibble-packed delta stream.
    pub fn deltas_bytes(&self) -> &[u8] {
        &self.deltas
    }

    /// Non-zeros in one row.
    ///
    /// # Panics
    /// Panics if `row >= rows()`.
    pub fn row_nnz(&self, row: usize) -> usize {
        assert!(row < self.rows, "row {row} out of range");
        self.value_starts[row + 1] - self.value_starts[row]
    }

    /// Escaped (3-field) deltas in one row.
    ///
    /// # Panics
    /// Panics if `row >= rows()`.
    pub fn row_escapes(&self, row: usize) -> usize {
        assert!(row < self.rows, "row {row} out of range");
        self.escapes[row]
    }

    /// Start of `row`'s values inside [`DcsrMatrix::values`].
    ///
    /// # Panics
    /// Panics if `row >= rows()`.
    pub fn value_start(&self, row: usize) -> usize {
        assert!(row < self.rows, "row {row} out of range");
        self.value_starts[row]
    }

    /// Byte start of `row`'s delta segment inside
    /// [`DcsrMatrix::deltas_bytes`].
    ///
    /// # Panics
    /// Panics if `row >= rows()`.
    pub fn delta_start(&self, row: usize) -> usize {
        assert!(row < self.rows, "row {row} out of range");
        self.delta_starts[row]
    }

    /// Iterates `(column, value)` pairs of one row, decoding deltas.
    ///
    /// # Panics
    /// Panics if `row >= rows()`.
    pub fn row(&self, row: usize) -> Vec<(usize, i8)> {
        let seg = &self.deltas[self.delta_starts[row]..self.delta_starts[row + 1]];
        let mut r = BitReader::new(seg);
        let mut col: isize = -1;
        (self.value_starts[row]..self.value_starts[row + 1])
            .map(|i| {
                let field = r.next(4);
                let d = if field == 0 {
                    let lo = r.next(4);
                    let hi = r.next(4);
                    16 + usize::from(lo) + (usize::from(hi) << 4)
                } else {
                    usize::from(field)
                };
                col += d as isize;
                (col as usize, self.values[i])
            })
            .collect()
    }

    /// Reconstructs the dense row-major matrix.
    pub fn to_dense(&self) -> Vec<i8> {
        let mut dense = vec![0i8; self.rows * self.cols];
        for row in 0..self.rows {
            for (c, v) in self.row(row) {
                dense[row * self.cols + c] = v;
            }
        }
        dense
    }

    /// Packed storage: values + delta stream + 16-bit row pointers.
    pub fn memory_bytes(&self) -> usize {
        self.values.len() + self.deltas.len() + 2 * (self.rows + 1)
    }

    /// Dense int8 storage of the equivalent matrix.
    pub fn dense_bytes(&self) -> usize {
        self.rows * self.cols
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::CsrMatrix;

    fn random_sparse(rows: usize, cols: usize, keep_every: usize, seed: u64) -> Vec<i8> {
        let mut state = seed | 1;
        (0..rows * cols)
            .map(|i| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                if i % keep_every == (state % keep_every as u64) as usize {
                    ((state % 253) as i8).max(1)
                } else {
                    0
                }
            })
            .collect()
    }

    #[test]
    fn round_trip_random_sparsities() {
        for keep in [2, 4, 10, 32] {
            let dense = random_sparse(8, 64, keep, 3);
            let m = DcsrMatrix::from_dense(&dense, 8, 64).unwrap();
            assert_eq!(m.to_dense(), dense, "keep_every={keep}");
        }
    }

    #[test]
    fn escape_path_round_trips() {
        // One non-zero at column 0, the next at column 200: delta 200
        // needs the escape form.
        let mut dense = vec![0i8; 256];
        dense[0] = 7;
        dense[200] = -9;
        let m = DcsrMatrix::from_dense(&dense, 1, 256).unwrap();
        assert_eq!(m.row(0), vec![(0, 7), (200, -9)]);
        assert_eq!(m.row_escapes(0), 1);
        assert_eq!(m.to_dense(), dense);
    }

    #[test]
    fn leading_gap_is_a_delta_from_minus_one() {
        let mut dense = vec![0i8; 32];
        dense[14] = 3; // delta 15: still the short form
        let m = DcsrMatrix::from_dense(&dense, 1, 32).unwrap();
        assert_eq!(m.row(0), vec![(14, 3)]);
        assert_eq!(m.row_escapes(0), 0);
        dense = vec![0i8; 32];
        dense[15] = 3; // delta 16: escape
        let m = DcsrMatrix::from_dense(&dense, 1, 32).unwrap();
        assert_eq!(m.row(0), vec![(15, 3)]);
        assert_eq!(m.row_escapes(0), 1);
    }

    #[test]
    fn oversized_delta_is_rejected() {
        let mut dense = vec![0i8; 400];
        dense[0] = 1;
        dense[399] = 1; // delta 399 > 271
        assert!(matches!(
            DcsrMatrix::from_dense(&dense, 1, 400),
            Err(Error::Unsupported(_))
        ));
    }

    #[test]
    fn empty_rows_are_fine() {
        let dense = vec![0i8; 3 * 16];
        let m = DcsrMatrix::from_dense(&dense, 3, 16).unwrap();
        assert_eq!(m.values().len(), 0);
        assert_eq!(m.to_dense(), dense);
        for r in 0..3 {
            assert_eq!(m.row_nnz(r), 0);
        }
    }

    #[test]
    fn beats_csr_memory_at_high_sparsity() {
        // ~90 % sparsity: dCSR's 4-bit deltas vs CSR's 16-bit indices.
        let dense = random_sparse(64, 512, 10, 9);
        let d = DcsrMatrix::from_dense(&dense, 64, 512).unwrap();
        let c = CsrMatrix::from_dense(&dense, 64, 512).unwrap();
        assert!(
            d.memory_bytes() < c.memory_bytes(),
            "dcsr {} vs csr {}",
            d.memory_bytes(),
            c.memory_bytes()
        );
        // And a real reduction vs dense (Trommer et al. report ~5x at 90%).
        assert!(d.dense_bytes() as f64 / d.memory_bytes() as f64 > 3.0);
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        assert!(DcsrMatrix::from_dense(&[0i8; 10], 2, 8).is_err());
    }
}
