//! The N:M semi-structured sparsity pattern and its memory arithmetic.
//!
//! In N:M pruning exactly N weights are non-zero in every group of M
//! consecutive weights (along the input-channel-major order of the weight
//! tensor). The paper's kernels support 1:4, 1:8 and 1:16; this type models
//! general N:M so pruning and formats can express other ratios, while the
//! kernel crates restrict themselves to the supported subset.

use crate::{Error, Result};

/// An N:M sparsity pattern: N non-zero elements per M-sized block.
///
/// `m` must be a power of two (the paper packs offsets into
/// `ceil(log2(M))` bits rounded up to a power-of-two width, and the
/// `xDecimate` hardware assumes power-of-two block strides).
///
/// # Example
/// ```
/// use nm_core::sparsity::Nm;
/// let nm = Nm::new(1, 8)?;
/// assert_eq!(nm.offset_bits(), 4);
/// assert_eq!(nm.density(), 0.125);
/// # Ok::<(), nm_core::Error>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Nm {
    n: u8,
    m: u8,
}

impl Nm {
    /// 1:4 sparsity (75 % of weights pruned).
    pub const ONE_OF_FOUR: Nm = Nm { n: 1, m: 4 };
    /// 1:8 sparsity (87.5 % of weights pruned).
    pub const ONE_OF_EIGHT: Nm = Nm { n: 1, m: 8 };
    /// 1:16 sparsity (93.75 % of weights pruned).
    pub const ONE_OF_SIXTEEN: Nm = Nm { n: 1, m: 16 };

    /// The three patterns implemented by the paper's kernel library.
    pub const KERNEL_PATTERNS: [Nm; 3] =
        [Self::ONE_OF_FOUR, Self::ONE_OF_EIGHT, Self::ONE_OF_SIXTEEN];

    /// Creates an N:M pattern.
    ///
    /// # Errors
    /// Returns [`Error::InvalidPattern`] unless `0 < n < m` and `m` is a
    /// power of two.
    pub fn new(n: u8, m: u8) -> Result<Self> {
        if n == 0 || m == 0 || n >= m || !m.is_power_of_two() {
            return Err(Error::InvalidPattern { n, m });
        }
        Ok(Nm { n, m })
    }

    /// Number of non-zero elements per block.
    pub fn n(&self) -> usize {
        self.n as usize
    }

    /// Block size.
    pub fn m(&self) -> usize {
        self.m as usize
    }

    /// Fraction of weights kept (N / M).
    pub fn density(&self) -> f64 {
        f64::from(self.n) / f64::from(self.m)
    }

    /// Fraction of weights pruned (1 - N/M).
    pub fn sparsity(&self) -> f64 {
        1.0 - self.density()
    }

    /// Bits used to store each intra-block offset.
    ///
    /// The paper stores offsets in `ceil(log2(M))` bits *rounded up to the
    /// nearest power of two*: 2 bits for M = 4, 4 bits for M = 8 and M = 16.
    pub fn offset_bits(&self) -> usize {
        let raw = (self.m as u32).trailing_zeros() as usize; // log2(m), m power of two
        raw.max(1).next_power_of_two()
    }

    /// Offsets packed per 32-bit word (16 for 1:4, 8 for 1:8/1:16).
    pub fn offsets_per_word(&self) -> usize {
        32 / self.offset_bits()
    }

    /// Whether the paper's kernel library implements this pattern.
    pub fn is_kernel_supported(&self) -> bool {
        Self::KERNEL_PATTERNS.contains(self)
    }

    /// Bits per non-zero value in the *software* kernel storage
    /// (8-bit value + one offset).
    pub fn sw_bits_per_nonzero(&self) -> usize {
        8 + self.offset_bits()
    }

    /// Bits per non-zero value in the *ISA-extended convolution* storage,
    /// where each offset is duplicated to serve the 1×2 unrolling of the
    /// `xDecimate` instruction (Sec. 4.1.3 of the paper).
    pub fn isa_conv_bits_per_nonzero(&self) -> usize {
        8 + 2 * self.offset_bits()
    }

    /// Weight-memory reduction of the software format relative to a dense
    /// int8 tensor, as a fraction in `[0, 1]`.
    ///
    /// Matches the paper's Sec. 4 figures: 68.75 % (1:4), 81.25 % (1:8),
    /// 90.62 % (1:16).
    pub fn sw_memory_reduction(&self) -> f64 {
        1.0 - (self.n() * self.sw_bits_per_nonzero()) as f64 / (self.m() * 8) as f64
    }

    /// Weight-memory reduction of the ISA-extended convolution format
    /// (duplicated offsets): 62.5 % (1:4), 75 % (1:8), 87.5 % (1:16).
    pub fn isa_memory_reduction(&self) -> f64 {
        1.0 - (self.n() * self.isa_conv_bits_per_nonzero()) as f64 / (self.m() * 8) as f64
    }
}

impl std::fmt::Display for Nm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.n, self.m)
    }
}

/// Checks that a dense row-major matrix satisfies an N:M pattern.
///
/// `cols` must be a multiple of `nm.m()`.
///
/// # Errors
/// [`Error::ShapeMismatch`] if `cols % m != 0` or the buffer length is not
/// `rows * cols`; [`Error::PatternViolation`] naming the first offending
/// block otherwise.
pub fn check_pattern(dense: &[i8], rows: usize, cols: usize, nm: Nm) -> Result<()> {
    if dense.len() != rows * cols {
        return Err(Error::ShapeMismatch(format!(
            "buffer has {} elements, expected {rows}x{cols}",
            dense.len()
        )));
    }
    if !cols.is_multiple_of(nm.m()) {
        return Err(Error::ShapeMismatch(format!(
            "cols {cols} not a multiple of M={}",
            nm.m()
        )));
    }
    for row in 0..rows {
        for block in 0..cols / nm.m() {
            let start = row * cols + block * nm.m();
            let found = dense[start..start + nm.m()]
                .iter()
                .filter(|&&v| v != 0)
                .count();
            if found > nm.n() {
                return Err(Error::PatternViolation {
                    row,
                    block,
                    found,
                    allowed: nm.n(),
                });
            }
        }
    }
    Ok(())
}

/// Magnitude-prunes a dense row-major matrix in place so it satisfies `nm`.
///
/// Within each M-block the N largest-magnitude elements are kept and the
/// rest zeroed (ties keep the earliest element, mirroring a stable sort).
///
/// # Errors
/// [`Error::ShapeMismatch`] under the same conditions as [`check_pattern`].
pub fn prune_magnitude(dense: &mut [i8], rows: usize, cols: usize, nm: Nm) -> Result<()> {
    if dense.len() != rows * cols {
        return Err(Error::ShapeMismatch(format!(
            "buffer has {} elements, expected {rows}x{cols}",
            dense.len()
        )));
    }
    if !cols.is_multiple_of(nm.m()) {
        return Err(Error::ShapeMismatch(format!(
            "cols {cols} not a multiple of M={}",
            nm.m()
        )));
    }
    let m = nm.m();
    let mut order: Vec<usize> = Vec::with_capacity(m);
    for block in dense.chunks_mut(m) {
        order.clear();
        order.extend(0..m);
        order.sort_by_key(|&i| std::cmp::Reverse((block[i] as i32).abs()));
        for &i in order.iter().skip(nm.n()) {
            block[i] = 0;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_bad_patterns() {
        assert!(Nm::new(0, 4).is_err());
        assert!(Nm::new(4, 4).is_err());
        assert!(Nm::new(5, 4).is_err());
        assert!(Nm::new(1, 6).is_err());
        assert!(Nm::new(1, 0).is_err());
        assert!(Nm::new(2, 4).is_ok());
    }

    #[test]
    fn offset_bits_match_paper() {
        assert_eq!(Nm::ONE_OF_FOUR.offset_bits(), 2);
        assert_eq!(Nm::ONE_OF_EIGHT.offset_bits(), 4);
        assert_eq!(Nm::ONE_OF_SIXTEEN.offset_bits(), 4);
        assert_eq!(Nm::new(1, 2).unwrap().offset_bits(), 1);
        assert_eq!(Nm::new(1, 32).unwrap().offset_bits(), 8);
    }

    #[test]
    fn offsets_per_word_match_kernel_assumptions() {
        assert_eq!(Nm::ONE_OF_FOUR.offsets_per_word(), 16);
        assert_eq!(Nm::ONE_OF_EIGHT.offsets_per_word(), 8);
        assert_eq!(Nm::ONE_OF_SIXTEEN.offsets_per_word(), 8);
    }

    #[test]
    fn memory_reductions_match_paper_section4() {
        let close = |a: f64, b: f64| (a - b).abs() < 1e-4;
        assert!(close(Nm::ONE_OF_FOUR.sw_memory_reduction(), 0.6875));
        assert!(close(Nm::ONE_OF_EIGHT.sw_memory_reduction(), 0.8125));
        assert!(close(Nm::ONE_OF_SIXTEEN.sw_memory_reduction(), 0.90625));
        assert!(close(Nm::ONE_OF_FOUR.isa_memory_reduction(), 0.625));
        assert!(close(Nm::ONE_OF_EIGHT.isa_memory_reduction(), 0.75));
        assert!(close(Nm::ONE_OF_SIXTEEN.isa_memory_reduction(), 0.875));
    }

    #[test]
    fn density_and_sparsity() {
        assert_eq!(Nm::ONE_OF_FOUR.density(), 0.25);
        assert_eq!(Nm::ONE_OF_SIXTEEN.sparsity(), 0.9375);
        assert_eq!(Nm::new(2, 4).unwrap().density(), 0.5);
    }

    #[test]
    fn nm_is_memory_efficient_even_at_low_sparsity() {
        // Paper Sec. 2.1: "this format enables memory-efficient storage
        // even at low sparsity ratios, such as 1:2" — unlike COO/CSR,
        // which need >= 75 % / > 50 % sparsity to break even on int8.
        for (n, m) in [(1u8, 2u8), (2, 4), (4, 8)] {
            let nm = Nm::new(n, m).unwrap(); // all 50 % sparse
            assert!(
                nm.sw_memory_reduction() > 0.0,
                "{nm}: reduction {}",
                nm.sw_memory_reduction()
            );
        }
        // 1:2 concretely: 8+1 bits per kept value vs 16 dense bits.
        let half = Nm::new(1, 2).unwrap();
        assert!((half.sw_memory_reduction() - (1.0 - 9.0 / 16.0)).abs() < 1e-9);
        // NVIDIA A100's 2:4: 8+2 bits x2 per 4 dense bytes -> 37.5 %.
        let a100 = Nm::new(2, 4).unwrap();
        assert!((a100.sw_memory_reduction() - 0.375).abs() < 1e-9);
    }

    #[test]
    fn check_pattern_accepts_valid() {
        // One NZ per 4-block.
        let dense = vec![0, 3, 0, 0, 0, 0, 0, -7];
        assert!(check_pattern(&dense, 1, 8, Nm::ONE_OF_FOUR).is_ok());
        assert!(check_pattern(&dense, 2, 4, Nm::ONE_OF_FOUR).is_ok());
    }

    #[test]
    fn check_pattern_rejects_violation_with_location() {
        let dense = vec![0, 3, 0, 0, 0, 5, 0, -7];
        let err = check_pattern(&dense, 1, 8, Nm::ONE_OF_FOUR).unwrap_err();
        assert_eq!(
            err,
            Error::PatternViolation {
                row: 0,
                block: 1,
                found: 2,
                allowed: 1
            }
        );
    }

    #[test]
    fn check_pattern_rejects_bad_shapes() {
        let dense = vec![0i8; 12];
        assert!(matches!(
            check_pattern(&dense, 1, 12, Nm::ONE_OF_EIGHT),
            Err(Error::ShapeMismatch(_))
        ));
        assert!(matches!(
            check_pattern(&dense, 2, 8, Nm::ONE_OF_FOUR),
            Err(Error::ShapeMismatch(_))
        ));
    }

    #[test]
    fn prune_magnitude_keeps_largest() {
        let mut dense = vec![1, -9, 3, 2, 0, 0, 0, 0];
        prune_magnitude(&mut dense, 1, 8, Nm::ONE_OF_FOUR).unwrap();
        assert_eq!(dense, vec![0, -9, 0, 0, 0, 0, 0, 0]);
        assert!(check_pattern(&dense, 1, 8, Nm::ONE_OF_FOUR).is_ok());
    }

    #[test]
    fn prune_magnitude_is_stable_on_ties() {
        let mut dense = vec![5, 5, 5, 5];
        prune_magnitude(&mut dense, 1, 4, Nm::ONE_OF_FOUR).unwrap();
        assert_eq!(dense, vec![5, 0, 0, 0]);
    }

    #[test]
    fn prune_magnitude_2_of_4() {
        let mut dense = vec![1, -9, 3, 2];
        prune_magnitude(&mut dense, 1, 4, Nm::new(2, 4).unwrap()).unwrap();
        assert_eq!(dense, vec![0, -9, 3, 0]);
    }

    #[test]
    fn display_format() {
        assert_eq!(Nm::ONE_OF_EIGHT.to_string(), "1:8");
    }
}
