//! Error type shared by the nm-* crates.

use std::fmt;

/// Errors produced while constructing or manipulating sparse formats,
/// geometries and quantization parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// An N:M pattern was requested with invalid parameters
    /// (`n == 0`, `m == 0`, `n >= m`, or `m` not a power of two).
    InvalidPattern {
        /// Number of non-zero elements per block.
        n: u8,
        /// Block size.
        m: u8,
    },
    /// A dense tensor does not satisfy the N:M constraint it was declared
    /// to follow (more than N non-zeros were found in some M-block).
    PatternViolation {
        /// Row of the offending block.
        row: usize,
        /// Index of the offending M-block within the row.
        block: usize,
        /// Non-zeros found in the block.
        found: usize,
        /// Non-zeros allowed per block.
        allowed: usize,
    },
    /// A matrix dimension is incompatible with the requested operation
    /// (e.g. the number of columns is not a multiple of M).
    ShapeMismatch(String),
    /// A layer geometry is degenerate (zero-sized dimension, stride of
    /// zero, or a filter larger than the padded input).
    InvalidGeometry(String),
    /// A quantization parameter is out of range (e.g. shift >= 32).
    InvalidQuantization(String),
    /// A buffer or allocation request does not fit in the target memory.
    OutOfMemory {
        /// Bytes requested.
        requested: usize,
        /// Bytes available.
        available: usize,
    },
    /// The requested operation is not supported for this configuration.
    Unsupported(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidPattern { n, m } => {
                write!(f, "invalid N:M pattern {n}:{m} (need 0 < n < m, m a power of two)")
            }
            Error::PatternViolation { row, block, found, allowed } => write!(
                f,
                "N:M pattern violated at row {row}, block {block}: {found} non-zeros, {allowed} allowed"
            ),
            Error::ShapeMismatch(msg) => write!(f, "shape mismatch: {msg}"),
            Error::InvalidGeometry(msg) => write!(f, "invalid geometry: {msg}"),
            Error::InvalidQuantization(msg) => write!(f, "invalid quantization: {msg}"),
            Error::OutOfMemory { requested, available } => {
                write!(f, "out of memory: requested {requested} bytes, {available} available")
            }
            Error::Unsupported(msg) => write!(f, "unsupported: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            Error::InvalidPattern { n: 2, m: 2 },
            Error::PatternViolation {
                row: 1,
                block: 2,
                found: 3,
                allowed: 1,
            },
            Error::ShapeMismatch("cols 10 not multiple of 8".into()),
            Error::InvalidGeometry("stride 0".into()),
            Error::InvalidQuantization("shift 40".into()),
            Error::OutOfMemory {
                requested: 10,
                available: 5,
            },
            Error::Unsupported("2:4 kernels".into()),
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            // Lowercase per C-GOOD-ERR, except messages leading with the
            // "N:M" proper noun.
            assert!(s.chars().next().unwrap().is_lowercase() || s.starts_with("N:M"));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
