//! A minimal dense tensor with the HWC activation layout used by PULP-NN.

use crate::{Error, Result};

/// A dense tensor stored row-major over its shape.
///
/// Activations on PULP platforms are HWC: shape `[H, W, C]` with C the
/// fastest-varying dimension, so a whole pixel's channels are contiguous —
/// the property the im2col step and the SIMD kernels rely on.
///
/// # Example
/// ```
/// use nm_core::tensor::Tensor;
/// let mut t = Tensor::<i8>::zeros(&[2, 2, 4]);
/// *t.at_mut(&[1, 0, 3]) = 7;
/// assert_eq!(*t.at(&[1, 0, 3]), 7);
/// assert_eq!(t.data()[1 * 2 * 4 + 3], 7);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tensor<T> {
    shape: Vec<usize>,
    data: Vec<T>,
}

impl<T: Copy + Default> Tensor<T> {
    /// Creates a tensor filled with `T::default()`.
    pub fn zeros(shape: &[usize]) -> Self {
        let len = shape.iter().product();
        Tensor {
            shape: shape.to_vec(),
            data: vec![T::default(); len],
        }
    }

    /// Wraps existing data in a tensor.
    ///
    /// # Errors
    /// [`Error::ShapeMismatch`] if `data.len()` differs from the shape's
    /// element count.
    pub fn from_vec(shape: &[usize], data: Vec<T>) -> Result<Self> {
        let len: usize = shape.iter().product();
        if data.len() != len {
            return Err(Error::ShapeMismatch(format!(
                "data length {} does not match shape {:?} ({} elements)",
                data.len(),
                shape,
                len
            )));
        }
        Ok(Tensor {
            shape: shape.to_vec(),
            data,
        })
    }

    /// The tensor shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The backing storage, row-major.
    pub fn data(&self) -> &[T] {
        &self.data
    }

    /// Mutable access to the backing storage.
    pub fn data_mut(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the tensor and returns its backing storage.
    pub fn into_data(self) -> Vec<T> {
        self.data
    }

    fn offset(&self, index: &[usize]) -> usize {
        debug_assert_eq!(index.len(), self.shape.len(), "index rank mismatch");
        let mut off = 0;
        for (i, (&ix, &dim)) in index.iter().zip(&self.shape).enumerate() {
            debug_assert!(
                ix < dim,
                "index {ix} out of bounds for dim {i} of size {dim}"
            );
            off = off * dim + ix;
        }
        off
    }

    /// Element access by multi-dimensional index.
    ///
    /// # Panics
    /// Panics (in debug builds) if the index rank or any coordinate is out
    /// of bounds; release builds may return the wrong element instead, as
    /// with slice indexing the access is still bounds-checked at the flat
    /// level.
    pub fn at(&self, index: &[usize]) -> &T {
        &self.data[self.offset(index)]
    }

    /// Mutable element access by multi-dimensional index.
    ///
    /// # Panics
    /// See [`Tensor::at`].
    pub fn at_mut(&mut self, index: &[usize]) -> &mut T {
        let off = self.offset(index);
        &mut self.data[off]
    }

    /// Reinterprets the tensor with a new shape of equal element count.
    ///
    /// # Errors
    /// [`Error::ShapeMismatch`] if the element counts differ.
    pub fn reshape(self, shape: &[usize]) -> Result<Self> {
        let len: usize = shape.iter().product();
        if len != self.data.len() {
            return Err(Error::ShapeMismatch(format!(
                "cannot reshape {} elements to {:?}",
                self.data.len(),
                shape
            )));
        }
        Ok(Tensor {
            shape: shape.to_vec(),
            data: self.data,
        })
    }
}

/// HWC helpers for 3-D int8 activation tensors.
impl Tensor<i8> {
    /// Reads pixel `(y, x)` channel `c` from an HWC tensor, returning 0 for
    /// out-of-bounds coordinates (implicit zero padding).
    pub fn hwc_get_padded(&self, y: isize, x: isize, c: usize) -> i8 {
        debug_assert_eq!(self.shape.len(), 3);
        let (h, w) = (self.shape[0] as isize, self.shape[1] as isize);
        if y < 0 || y >= h || x < 0 || x >= w {
            0
        } else {
            *self.at(&[y as usize, x as usize, c])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let t = Tensor::<i32>::zeros(&[3, 4]);
        assert_eq!(t.shape(), &[3, 4]);
        assert_eq!(t.len(), 12);
        assert!(!t.is_empty());
        assert!(t.data().iter().all(|&v| v == 0));
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Tensor::from_vec(&[2, 3], vec![0i8; 6]).is_ok());
        assert!(Tensor::from_vec(&[2, 3], vec![0i8; 5]).is_err());
    }

    #[test]
    fn indexing_is_row_major() {
        let t = Tensor::from_vec(&[2, 3], (0..6i32).collect()).unwrap();
        assert_eq!(*t.at(&[0, 0]), 0);
        assert_eq!(*t.at(&[0, 2]), 2);
        assert_eq!(*t.at(&[1, 0]), 3);
        assert_eq!(*t.at(&[1, 2]), 5);
    }

    #[test]
    fn hwc_layout_channel_minor() {
        let mut t = Tensor::<i8>::zeros(&[2, 2, 3]);
        *t.at_mut(&[0, 1, 2]) = 9;
        // offset = ((0*2)+1)*3 + 2 = 5
        assert_eq!(t.data()[5], 9);
    }

    #[test]
    fn padded_access_returns_zero_outside() {
        let mut t = Tensor::<i8>::zeros(&[2, 2, 1]);
        *t.at_mut(&[0, 0, 0]) = 3;
        assert_eq!(t.hwc_get_padded(0, 0, 0), 3);
        assert_eq!(t.hwc_get_padded(-1, 0, 0), 0);
        assert_eq!(t.hwc_get_padded(0, 2, 0), 0);
        assert_eq!(t.hwc_get_padded(2, -5, 0), 0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(&[2, 6], (0..12i32).collect()).unwrap();
        let r = t.reshape(&[3, 4]).unwrap();
        assert_eq!(r.shape(), &[3, 4]);
        assert_eq!(*r.at(&[2, 3]), 11);
        assert!(r.reshape(&[5, 5]).is_err());
    }
}
