//! Double-buffered tile pipeline timing.
//!
//! MATCH-generated code processes a layer as a sequence of L1-resident
//! tiles. With double buffering, tile `i+1`'s input DMA and tile `i-1`'s
//! output DMA overlap tile `i`'s compute, so the steady-state per-tile
//! latency is `max(compute, dma_in_next + dma_out_prev)`. The paper's
//! Sec. 5.2 explanation of FC behaviour ("for memory-bound FC layers ...
//! these transfers are one of the dominant components") falls out of this
//! schedule when `dma > compute`.

/// The DMA and compute cost of one tile, in cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TileCost {
    /// Cycles to DMA the tile's inputs (weights + activations) into L1.
    pub dma_in: u64,
    /// Cycles the cluster computes on the tile.
    pub compute: u64,
    /// Cycles to DMA the tile's outputs back to L2.
    pub dma_out: u64,
}

/// Total cycles to process `tiles` with double buffering.
///
/// The first input transfer and the last output transfer are exposed; in
/// between, each tile's compute overlaps the neighbouring transfers.
///
/// # Example
/// ```
/// use nm_platform::pipeline::{double_buffered_cycles, TileCost};
/// let t = TileCost { dma_in: 10, compute: 100, dma_out: 5 };
/// // 4 identical compute-bound tiles: 10 + 4*100 + 5.
/// assert_eq!(double_buffered_cycles(&[t; 4]), 10 + 400 + 5);
/// ```
pub fn double_buffered_cycles(tiles: &[TileCost]) -> u64 {
    let n = tiles.len();
    if n == 0 {
        return 0;
    }
    let mut total = tiles[0].dma_in;
    for i in 0..n {
        let next_in = if i + 1 < n { tiles[i + 1].dma_in } else { 0 };
        let prev_out = if i > 0 { tiles[i - 1].dma_out } else { 0 };
        total += tiles[i].compute.max(next_in + prev_out);
    }
    total + tiles[n - 1].dma_out
}

/// Total cycles without double buffering (serial DMA → compute → DMA),
/// used by the ablation benches.
pub fn serial_cycles(tiles: &[TileCost]) -> u64 {
    tiles.iter().map(|t| t.dma_in + t.compute + t.dma_out).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zero() {
        assert_eq!(double_buffered_cycles(&[]), 0);
        assert_eq!(serial_cycles(&[]), 0);
    }

    #[test]
    fn single_tile_is_serial() {
        let t = TileCost {
            dma_in: 7,
            compute: 20,
            dma_out: 3,
        };
        assert_eq!(double_buffered_cycles(&[t]), 30);
        assert_eq!(serial_cycles(&[t]), 30);
    }

    #[test]
    fn compute_bound_hides_dma() {
        let t = TileCost {
            dma_in: 10,
            compute: 100,
            dma_out: 10,
        };
        let tiles = vec![t; 8];
        assert_eq!(double_buffered_cycles(&tiles), 10 + 8 * 100 + 10);
        assert!(double_buffered_cycles(&tiles) < serial_cycles(&tiles));
    }

    #[test]
    fn memory_bound_is_dma_limited() {
        let t = TileCost {
            dma_in: 100,
            compute: 10,
            dma_out: 0,
        };
        let tiles = vec![t; 4];
        // 100 + (100+100+100+10) + 0: the last tile has no next input.
        assert_eq!(double_buffered_cycles(&tiles), 100 + 100 + 100 + 100 + 10);
    }

    #[test]
    fn double_buffering_never_slower_than_serial() {
        let tiles: Vec<TileCost> = (0..16)
            .map(|i| TileCost {
                dma_in: (i * 13) % 37,
                compute: (i * 7) % 53,
                dma_out: (i * 5) % 11,
            })
            .collect();
        assert!(double_buffered_cycles(&tiles) <= serial_cycles(&tiles));
    }

    #[test]
    fn double_buffering_not_faster_than_critical_paths() {
        let tiles: Vec<TileCost> = (0..9)
            .map(|i| TileCost {
                dma_in: 40 + i,
                compute: 60 - i,
                dma_out: 5,
            })
            .collect();
        let total = double_buffered_cycles(&tiles);
        let compute_sum: u64 = tiles.iter().map(|t| t.compute).sum();
        let dma_sum: u64 = tiles.iter().map(|t| t.dma_in + t.dma_out).sum();
        assert!(total >= compute_sum);
        assert!(total >= dma_sum.max(compute_sum));
    }
}
