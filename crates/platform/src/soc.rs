//! The Vega SoC: memory hierarchy + cluster + DMA in one bundle.

use crate::cluster::Cluster;
use crate::dma::Dma;
use crate::scratchpad::Scratchpad;
use nm_isa::CostModel;

/// Memory sizes of the Vega SoC (Rossi et al. 2021).
pub const L1_BYTES: usize = 128 * 1024;
/// L2 main memory size (the 1.6 MB interleaved SRAM; we do not model the
/// MRAM portion, which the paper also does not exploit).
pub const L2_BYTES: usize = 1600 * 1024;
/// External L3 HyperRAM size.
pub const L3_BYTES: usize = 16 * 1024 * 1024;
/// Compute cluster cores (8 of Vega's 10 cores; the fabric controller and
/// the DMA core orchestrate and are not compute resources).
pub const CLUSTER_CORES: usize = 8;

/// The simulated SoC: L1/L2/L3 scratchpads, the cluster DMA and the
/// compute cluster, all sharing one [`CostModel`].
#[derive(Debug, Clone)]
pub struct VegaSoc {
    /// The cycle-cost model shared by cores and DMA.
    pub costs: CostModel,
    /// 128 kB shared L1 TCDM.
    pub l1: Scratchpad,
    /// 1.6 MB L2.
    pub l2: Scratchpad,
    /// 16 MB external L3 (HyperRAM).
    pub l3: Scratchpad,
}

impl VegaSoc {
    /// Creates a Vega SoC with the default cost model.
    pub fn new() -> Self {
        Self::with_costs(CostModel::default())
    }

    /// Creates a Vega SoC with a custom cost model.
    pub fn with_costs(costs: CostModel) -> Self {
        VegaSoc {
            costs,
            l1: Scratchpad::new("L1", L1_BYTES),
            l2: Scratchpad::new("L2", L2_BYTES),
            l3: Scratchpad::new("L3", L3_BYTES),
        }
    }

    /// The compute cluster.
    pub fn cluster(&self) -> Cluster {
        Cluster::new(CLUSTER_CORES, self.costs)
    }

    /// The cluster DMA.
    pub fn dma(&self) -> Dma {
        Dma::new(self.costs)
    }
}

impl Default for VegaSoc {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nm_isa::Memory;

    #[test]
    fn sizes_match_vega() {
        let soc = VegaSoc::new();
        assert_eq!(soc.l1.size(), 128 * 1024);
        assert_eq!(soc.l2.size(), 1600 * 1024);
        assert_eq!(soc.l3.size(), 16 * 1024 * 1024);
        assert_eq!(soc.cluster().n_cores(), 8);
    }

    #[test]
    fn dma_roundtrip_through_hierarchy() {
        let mut soc = VegaSoc::new();
        let dma = soc.dma();
        soc.l3.write_bytes(100, &[1, 2, 3, 4, 5]);
        let c1 = dma.copy_l3(&soc.l3.clone(), 100, &mut soc.l2, 0, 5);
        let c2 = dma.copy(&soc.l2.clone(), 0, &mut soc.l1, 64, 5);
        assert_eq!(soc.l1.read_bytes(64, 5), vec![1, 2, 3, 4, 5]);
        assert!(c1 > c2);
    }
}
