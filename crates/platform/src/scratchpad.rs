//! Software-managed scratchpad memories and a bump allocator.

use nm_core::{Error, Result};
use nm_isa::{FlatMem, Memory};

/// A named scratchpad memory (L1 TCDM, L2, or L3).
///
/// Addresses are local to the scratchpad (0-based), matching how kernels
/// receive L1 buffer pointers from the tiling runtime.
#[derive(Debug, Clone)]
pub struct Scratchpad {
    name: &'static str,
    mem: FlatMem,
    alloc: BumpAllocator,
}

impl Scratchpad {
    /// Creates a zeroed scratchpad.
    pub fn new(name: &'static str, size: usize) -> Self {
        Scratchpad {
            name,
            mem: FlatMem::new(size),
            alloc: BumpAllocator::new(size),
        }
    }

    /// The scratchpad's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Allocates `bytes` with `align`-byte alignment, returning the base
    /// address.
    ///
    /// # Errors
    /// [`Error::OutOfMemory`] when the region does not fit.
    pub fn alloc(&mut self, bytes: usize, align: usize) -> Result<u32> {
        self.alloc.alloc(bytes, align)
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> usize {
        self.alloc.used()
    }

    /// Bytes still available.
    pub fn available(&self) -> usize {
        self.alloc.available()
    }

    /// Releases all allocations (the memory contents are kept).
    pub fn reset_alloc(&mut self) {
        self.alloc.reset();
    }

    /// Restores the scratchpad to its freshly-created state — all
    /// allocations released and the contents zeroed — without
    /// reallocating the backing store. The compiled executor's
    /// tile loop calls this between tiles instead of constructing a new
    /// scratchpad per tile, so kernels still observe exactly what a fresh
    /// [`Scratchpad::new`] would hand them.
    ///
    /// Only the allocator's high-water region is cleared (plus the word
    /// of alignment slack a 32-bit store at the end of the last buffer
    /// may have touched): every kernel write lands inside an allocated
    /// buffer, so bytes beyond that region are still zero from creation
    /// or the previous reset.
    pub fn reset(&mut self) {
        let end = (self.alloc.used() + 3).min(self.mem.size());
        self.mem.bytes_mut()[..end].fill(0);
        self.alloc.reset();
    }

    /// Direct view of the backing bytes (for test assertions).
    pub fn bytes(&self) -> &[u8] {
        self.mem.bytes()
    }

    /// Direct mutable view of the backing bytes — the bulk accessor the
    /// incremental im2col materializer batches its row copies and fills
    /// on (one borrow per patch instead of one trait dispatch per row).
    /// Out-of-range indexing through the returned slice panics exactly
    /// like the per-access bus errors of [`Memory`].
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        self.mem.bytes_mut()
    }
}

impl Memory for Scratchpad {
    #[inline]
    fn size(&self) -> usize {
        self.mem.size()
    }

    #[inline]
    fn load_u8(&self, addr: u32) -> u8 {
        self.mem.load_u8(addr)
    }

    #[inline]
    fn store_u8(&mut self, addr: u32, value: u8) {
        self.mem.store_u8(addr, value);
    }

    #[inline]
    fn load_u32(&self, addr: u32) -> u32 {
        self.mem.load_u32(addr)
    }

    #[inline]
    fn store_u32(&mut self, addr: u32, value: u32) {
        self.mem.store_u32(addr, value);
    }

    fn write_bytes(&mut self, addr: u32, bytes: &[u8]) {
        self.mem.write_bytes(addr, bytes);
    }

    fn read_bytes(&self, addr: u32, len: usize) -> Vec<u8> {
        self.mem.read_bytes(addr, len)
    }

    #[inline]
    fn slice(&self, addr: u32, len: usize) -> Option<&[u8]> {
        self.mem.slice(addr, len)
    }

    #[inline]
    fn slice_mut(&mut self, addr: u32, len: usize) -> Option<&mut [u8]> {
        self.mem.slice_mut(addr, len)
    }

    fn copy_within(&mut self, src: u32, dst: u32, len: usize) {
        self.mem.copy_within(src, dst, len);
    }
}

/// A monotonic (arena) allocator over a fixed-size region — the standard
/// allocation discipline for PULP L1 buffers, where a layer's buffers are
/// planned statically and freed all at once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BumpAllocator {
    size: usize,
    top: usize,
}

impl BumpAllocator {
    /// Creates an allocator over `size` bytes.
    pub fn new(size: usize) -> Self {
        BumpAllocator { size, top: 0 }
    }

    /// Allocates `bytes` with `align` alignment (power of two).
    ///
    /// # Errors
    /// [`Error::OutOfMemory`] when the request exceeds the remaining space.
    ///
    /// # Panics
    /// Panics if `align` is not a power of two.
    pub fn alloc(&mut self, bytes: usize, align: usize) -> Result<u32> {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let base = (self.top + align - 1) & !(align - 1);
        let end = base.checked_add(bytes).ok_or(Error::OutOfMemory {
            requested: bytes,
            available: self.size.saturating_sub(self.top),
        })?;
        if end > self.size {
            return Err(Error::OutOfMemory {
                requested: bytes,
                available: self.size - self.top,
            });
        }
        self.top = end;
        Ok(base as u32)
    }

    /// Bytes allocated (including alignment padding).
    pub fn used(&self) -> usize {
        self.top
    }

    /// Bytes remaining.
    pub fn available(&self) -> usize {
        self.size - self.top
    }

    /// Frees everything.
    pub fn reset(&mut self) {
        self.top = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_aligned_and_monotonic() {
        let mut a = BumpAllocator::new(64);
        let p0 = a.alloc(3, 1).unwrap();
        let p1 = a.alloc(4, 4).unwrap();
        assert_eq!(p0, 0);
        assert_eq!(p1, 4);
        assert_eq!(a.used(), 8);
        let p2 = a.alloc(1, 16).unwrap();
        assert_eq!(p2, 16);
    }

    #[test]
    fn alloc_fails_when_full() {
        let mut a = BumpAllocator::new(16);
        a.alloc(10, 1).unwrap();
        let err = a.alloc(10, 1).unwrap_err();
        assert_eq!(
            err,
            Error::OutOfMemory {
                requested: 10,
                available: 6
            }
        );
        a.reset();
        assert!(a.alloc(16, 1).is_ok());
    }

    #[test]
    fn scratchpad_allocates_and_stores() {
        let mut l1 = Scratchpad::new("l1", 1024);
        let buf = l1.alloc(64, 4).unwrap();
        l1.store_u32(buf, 0x1234_5678);
        assert_eq!(l1.load_u32(buf), 0x1234_5678);
        assert_eq!(l1.name(), "l1");
        assert_eq!(l1.available(), 1024 - 64);
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_alignment_panics() {
        let mut a = BumpAllocator::new(64);
        let _ = a.alloc(4, 3);
    }

    #[test]
    fn zero_copy_views_agree_with_per_byte_access() {
        let mut l1 = Scratchpad::new("l1", 64);
        for i in 0..64 {
            l1.store_u8(i, (7 * i + 1) as u8);
        }
        let per_byte: Vec<u8> = (0..16).map(|i| l1.load_u8(8 + i)).collect();
        assert_eq!(l1.slice(8, 16).unwrap(), per_byte.as_slice());
        assert_eq!(l1.read_bytes(8, 16), per_byte);

        let mut words = [0u32; 2];
        l1.load_u32_bulk(5, &mut words); // unaligned
        assert_eq!(words, [l1.load_u32(5), l1.load_u32(9)]);

        l1.slice_mut(0, 4).unwrap().fill(0xEE);
        assert_eq!(l1.load_u32(0), 0xEEEE_EEEE);
        l1.copy_within(0, 30, 4);
        assert_eq!(l1.load_u32(30), 0xEEEE_EEEE);
        l1.fill_bytes(30, 2, 0);
        assert_eq!(l1.load_u32(30), 0xEEEE_0000);
    }

    /// A reset scratchpad must be indistinguishable from a fresh one:
    /// same available space, and every byte the previous use dirtied
    /// reads back as zero.
    #[test]
    fn reset_restores_the_fresh_state() {
        let mut l1 = Scratchpad::new("l1", 256);
        let fresh = l1.clone();
        let a = l1.alloc(40, 4).unwrap();
        let b = l1.alloc(9, 4).unwrap();
        l1.slice_mut(a, 40).unwrap().fill(0xAB);
        // A word store at the end of the last buffer spills into the
        // alignment slack reset() must also clear.
        l1.store_u32(b + 8, 0xDEAD_BEEF);
        l1.reset();
        assert_eq!(l1.used(), 0);
        assert_eq!(l1.available(), 256);
        assert_eq!(l1.bytes(), fresh.bytes());
        // Allocation starts over from address 0.
        assert_eq!(l1.alloc(8, 4).unwrap(), 0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_view_is_a_bus_error() {
        let l1 = Scratchpad::new("l1", 16);
        let _ = l1.slice(10, 8);
    }
}
