//! Software-managed scratchpad memories and a bump allocator.

use nm_core::{Error, Result};
use nm_isa::{FlatMem, Memory};

/// A named scratchpad memory (L1 TCDM, L2, or L3).
///
/// Addresses are local to the scratchpad (0-based), matching how kernels
/// receive L1 buffer pointers from the tiling runtime.
#[derive(Debug, Clone)]
pub struct Scratchpad {
    name: &'static str,
    mem: FlatMem,
    alloc: BumpAllocator,
}

impl Scratchpad {
    /// Creates a zeroed scratchpad.
    pub fn new(name: &'static str, size: usize) -> Self {
        Scratchpad {
            name,
            mem: FlatMem::new(size),
            alloc: BumpAllocator::new(size),
        }
    }

    /// The scratchpad's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Allocates `bytes` with `align`-byte alignment, returning the base
    /// address.
    ///
    /// # Errors
    /// [`Error::OutOfMemory`] when the region does not fit.
    pub fn alloc(&mut self, bytes: usize, align: usize) -> Result<u32> {
        self.alloc.alloc(bytes, align)
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> usize {
        self.alloc.used()
    }

    /// Bytes still available.
    pub fn available(&self) -> usize {
        self.alloc.available()
    }

    /// Releases all allocations (the memory contents are kept).
    pub fn reset_alloc(&mut self) {
        self.alloc.reset();
    }

    /// Restores the scratchpad to its freshly-created state — all
    /// allocations released and the contents zeroed — without
    /// reallocating the backing store. The compiled executor's
    /// tile loop calls this between tiles instead of constructing a new
    /// scratchpad per tile, so kernels still observe exactly what a fresh
    /// [`Scratchpad::new`] would hand them.
    ///
    /// Only the allocator's high-water region is cleared (plus the word
    /// of alignment slack a 32-bit store at the end of the last buffer
    /// may have touched): every kernel write lands inside an allocated
    /// buffer, so bytes beyond that region are still zero from creation
    /// or the previous reset.
    pub fn reset(&mut self) {
        let end = (self.alloc.used() + 3).min(self.mem.size());
        self.mem.bytes_mut()[..end].fill(0);
        self.alloc.reset();
    }

    /// Direct view of the backing bytes (for test assertions).
    pub fn bytes(&self) -> &[u8] {
        self.mem.bytes()
    }

    /// Direct mutable view of the backing bytes — the bulk accessor the
    /// incremental im2col materializer batches its row copies and fills
    /// on (one borrow per patch instead of one trait dispatch per row).
    /// Out-of-range indexing through the returned slice panics exactly
    /// like the per-access bus errors of [`Memory`].
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        self.mem.bytes_mut()
    }
}

impl Memory for Scratchpad {
    #[inline]
    fn size(&self) -> usize {
        self.mem.size()
    }

    #[inline]
    fn load_u8(&self, addr: u32) -> u8 {
        self.mem.load_u8(addr)
    }

    #[inline]
    fn store_u8(&mut self, addr: u32, value: u8) {
        self.mem.store_u8(addr, value);
    }

    #[inline]
    fn load_u32(&self, addr: u32) -> u32 {
        self.mem.load_u32(addr)
    }

    #[inline]
    fn store_u32(&mut self, addr: u32, value: u32) {
        self.mem.store_u32(addr, value);
    }

    fn write_bytes(&mut self, addr: u32, bytes: &[u8]) {
        self.mem.write_bytes(addr, bytes);
    }

    fn read_bytes(&self, addr: u32, len: usize) -> Vec<u8> {
        self.mem.read_bytes(addr, len)
    }

    #[inline]
    fn slice(&self, addr: u32, len: usize) -> Option<&[u8]> {
        self.mem.slice(addr, len)
    }

    #[inline]
    fn slice_mut(&mut self, addr: u32, len: usize) -> Option<&mut [u8]> {
        self.mem.slice_mut(addr, len)
    }

    fn copy_within(&mut self, src: u32, dst: u32, len: usize) {
        self.mem.copy_within(src, dst, len);
    }
}

/// A thread-safe pool of same-sized scratchpads for concurrent workers
/// (the compiled executor's tile threads, the serving layer's worker
/// pool): [`checkout`] hands out a scratchpad guaranteed to be
/// indistinguishable from a freshly created one, [`checkin`] returns it
/// for reuse.
///
/// The fresh-state guarantee is the pool's contract: `checkin` runs
/// [`Scratchpad::reset`] (clearing the allocator *and* the high-water
/// region of the backing bytes), so a worker that dirtied its scratchpad
/// arbitrarily cannot leak state into the next checkout. Kernels
/// therefore observe exactly what a fresh [`Scratchpad::new`] would hand
/// them, regardless of which worker used the pad before — pinned by
/// `pooled_checkout_matches_fresh_scratchpad` below.
///
/// [`checkout`]: ScratchpadPool::checkout
/// [`checkin`]: ScratchpadPool::checkin
#[derive(Debug)]
pub struct ScratchpadPool {
    name: &'static str,
    size: usize,
    pads: std::sync::Mutex<Vec<Scratchpad>>,
}

impl ScratchpadPool {
    /// Creates an empty pool; scratchpads are allocated lazily on
    /// checkout and retained on checkin.
    pub fn new(name: &'static str, size: usize) -> Self {
        ScratchpadPool {
            name,
            size,
            pads: std::sync::Mutex::new(Vec::new()),
        }
    }

    /// The byte size of every scratchpad this pool hands out.
    pub fn pad_size(&self) -> usize {
        self.size
    }

    /// Takes a scratchpad from the pool (or creates one when the pool is
    /// empty). The returned pad is bit-identical to a fresh
    /// [`Scratchpad::new`]: zeroed contents, empty allocator.
    pub fn checkout(&self) -> Scratchpad {
        self.pads
            .lock()
            .expect("scratchpad pool poisoned")
            .pop()
            .unwrap_or_else(|| Scratchpad::new(self.name, self.size))
    }

    /// Returns a scratchpad to the pool for reuse, resetting it to the
    /// fresh state first (see the type docs for why the reset lives on
    /// this side: a dirty pad must never be observable through
    /// [`checkout`](Self::checkout)).
    pub fn checkin(&self, mut pad: Scratchpad) {
        pad.reset();
        self.pads
            .lock()
            .expect("scratchpad pool poisoned")
            .push(pad);
    }

    /// Scratchpads currently parked in the pool (not checked out).
    pub fn idle(&self) -> usize {
        self.pads.lock().expect("scratchpad pool poisoned").len()
    }
}

/// A monotonic (arena) allocator over a fixed-size region — the standard
/// allocation discipline for PULP L1 buffers, where a layer's buffers are
/// planned statically and freed all at once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BumpAllocator {
    size: usize,
    top: usize,
}

impl BumpAllocator {
    /// Creates an allocator over `size` bytes.
    pub fn new(size: usize) -> Self {
        BumpAllocator { size, top: 0 }
    }

    /// Allocates `bytes` with `align` alignment (power of two).
    ///
    /// # Errors
    /// [`Error::OutOfMemory`] when the request exceeds the remaining space.
    ///
    /// # Panics
    /// Panics if `align` is not a power of two.
    pub fn alloc(&mut self, bytes: usize, align: usize) -> Result<u32> {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let base = (self.top + align - 1) & !(align - 1);
        let end = base.checked_add(bytes).ok_or(Error::OutOfMemory {
            requested: bytes,
            available: self.size.saturating_sub(self.top),
        })?;
        if end > self.size {
            return Err(Error::OutOfMemory {
                requested: bytes,
                available: self.size - self.top,
            });
        }
        self.top = end;
        Ok(base as u32)
    }

    /// Bytes allocated (including alignment padding).
    pub fn used(&self) -> usize {
        self.top
    }

    /// Bytes remaining.
    pub fn available(&self) -> usize {
        self.size - self.top
    }

    /// Frees everything.
    pub fn reset(&mut self) {
        self.top = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_aligned_and_monotonic() {
        let mut a = BumpAllocator::new(64);
        let p0 = a.alloc(3, 1).unwrap();
        let p1 = a.alloc(4, 4).unwrap();
        assert_eq!(p0, 0);
        assert_eq!(p1, 4);
        assert_eq!(a.used(), 8);
        let p2 = a.alloc(1, 16).unwrap();
        assert_eq!(p2, 16);
    }

    #[test]
    fn alloc_fails_when_full() {
        let mut a = BumpAllocator::new(16);
        a.alloc(10, 1).unwrap();
        let err = a.alloc(10, 1).unwrap_err();
        assert_eq!(
            err,
            Error::OutOfMemory {
                requested: 10,
                available: 6
            }
        );
        a.reset();
        assert!(a.alloc(16, 1).is_ok());
    }

    #[test]
    fn scratchpad_allocates_and_stores() {
        let mut l1 = Scratchpad::new("l1", 1024);
        let buf = l1.alloc(64, 4).unwrap();
        l1.store_u32(buf, 0x1234_5678);
        assert_eq!(l1.load_u32(buf), 0x1234_5678);
        assert_eq!(l1.name(), "l1");
        assert_eq!(l1.available(), 1024 - 64);
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_alignment_panics() {
        let mut a = BumpAllocator::new(64);
        let _ = a.alloc(4, 3);
    }

    #[test]
    fn zero_copy_views_agree_with_per_byte_access() {
        let mut l1 = Scratchpad::new("l1", 64);
        for i in 0..64 {
            l1.store_u8(i, (7 * i + 1) as u8);
        }
        let per_byte: Vec<u8> = (0..16).map(|i| l1.load_u8(8 + i)).collect();
        assert_eq!(l1.slice(8, 16).unwrap(), per_byte.as_slice());
        assert_eq!(l1.read_bytes(8, 16), per_byte);

        let mut words = [0u32; 2];
        l1.load_u32_bulk(5, &mut words); // unaligned
        assert_eq!(words, [l1.load_u32(5), l1.load_u32(9)]);

        l1.slice_mut(0, 4).unwrap().fill(0xEE);
        assert_eq!(l1.load_u32(0), 0xEEEE_EEEE);
        l1.copy_within(0, 30, 4);
        assert_eq!(l1.load_u32(30), 0xEEEE_EEEE);
        l1.fill_bytes(30, 2, 0);
        assert_eq!(l1.load_u32(30), 0xEEEE_0000);
    }

    /// A reset scratchpad must be indistinguishable from a fresh one:
    /// same available space, and every byte the previous use dirtied
    /// reads back as zero.
    #[test]
    fn reset_restores_the_fresh_state() {
        let mut l1 = Scratchpad::new("l1", 256);
        let fresh = l1.clone();
        let a = l1.alloc(40, 4).unwrap();
        let b = l1.alloc(9, 4).unwrap();
        l1.slice_mut(a, 40).unwrap().fill(0xAB);
        // A word store at the end of the last buffer spills into the
        // alignment slack reset() must also clear.
        l1.store_u32(b + 8, 0xDEAD_BEEF);
        l1.reset();
        assert_eq!(l1.used(), 0);
        assert_eq!(l1.available(), 256);
        assert_eq!(l1.bytes(), fresh.bytes());
        // Allocation starts over from address 0.
        assert_eq!(l1.alloc(8, 4).unwrap(), 0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_view_is_a_bus_error() {
        let l1 = Scratchpad::new("l1", 16);
        let _ = l1.slice(10, 8);
    }

    /// The pooled path of the reset contract: checkout → dirty →
    /// checkin → checkout must observe the same bytes as a fresh
    /// scratchpad, including the allocator high-water region (and the
    /// word of alignment slack a trailing 32-bit store may have
    /// touched).
    #[test]
    fn pooled_checkout_matches_fresh_scratchpad() {
        let pool = ScratchpadPool::new("l1", 256);
        let fresh = Scratchpad::new("l1", 256);

        let mut pad = pool.checkout();
        assert_eq!(pad.bytes(), fresh.bytes(), "first checkout is fresh");
        let a = pad.alloc(40, 4).unwrap();
        let b = pad.alloc(9, 4).unwrap();
        pad.slice_mut(a, 40).unwrap().fill(0xAB);
        // Dirty the high-water region's alignment slack too: a word
        // store at the end of the last buffer spills past `used()`.
        pad.store_u32(b + 8, 0xDEAD_BEEF);
        pool.checkin(pad);
        assert_eq!(pool.idle(), 1);

        let again = pool.checkout();
        assert_eq!(pool.idle(), 0, "the dirtied pad itself was reused");
        assert_eq!(again.bytes(), fresh.bytes(), "reused pad reads fresh");
        assert_eq!(again.used(), 0);
        assert_eq!(again.available(), 256);
        assert_eq!(again.name(), "l1");
    }

    /// An empty pool mints pads on demand; checkin grows the idle set.
    #[test]
    fn pool_mints_and_retains_pads() {
        let pool = ScratchpadPool::new("l1", 64);
        assert_eq!(pool.idle(), 0);
        assert_eq!(pool.pad_size(), 64);
        let p0 = pool.checkout();
        let p1 = pool.checkout();
        assert_eq!(p0.size(), 64);
        assert_eq!(p1.size(), 64);
        pool.checkin(p0);
        pool.checkin(p1);
        assert_eq!(pool.idle(), 2);
    }

    /// Concurrent workers hammering the pool never observe a dirty pad.
    #[test]
    fn pool_is_safe_and_fresh_under_concurrency() {
        let pool = ScratchpadPool::new("l1", 128);
        let fresh = Scratchpad::new("l1", 128);
        std::thread::scope(|scope| {
            for t in 0..4u8 {
                let (pool, fresh) = (&pool, &fresh);
                scope.spawn(move || {
                    for i in 0..50u32 {
                        let mut pad = pool.checkout();
                        assert_eq!(pad.bytes(), fresh.bytes());
                        let base = pad.alloc(32, 4).unwrap();
                        pad.slice_mut(base, 32)
                            .unwrap()
                            .fill(t.wrapping_add(i as u8) | 1);
                        pool.checkin(pad);
                    }
                });
            }
        });
        assert!(pool.idle() >= 1);
    }
}
