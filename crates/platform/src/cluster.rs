//! The 8-core PULP compute cluster.
//!
//! Kernels are data-parallel: each core computes a disjoint slice of the
//! output (rows of OY for convolutions, output channels for FC). The
//! cluster model runs the per-core closure sequentially — the slices are
//! disjoint by construction, so sequential simulation is observationally
//! identical to parallel hardware — and reports the slowest core plus one
//! barrier as the cluster latency, as GVSoC would measure.

use nm_isa::{Core, CoreStats, CostModel};

/// Aggregate statistics of one cluster-wide kernel invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterStats {
    /// Latency: slowest core + barrier.
    pub cycles: u64,
    /// The slowest core's cycles, without the barrier.
    pub max_core_cycles: u64,
    /// Per-core statistics.
    pub per_core: Vec<CoreStats>,
}

impl ClusterStats {
    /// Builds cluster statistics from externally simulated cores
    /// (kernels drive their own per-core loop so they can share the L1
    /// scratchpad mutably).
    pub fn from_cores(per_core: Vec<CoreStats>, barrier_cycles: u64) -> Self {
        let max_core_cycles = per_core.iter().map(|s| s.cycles).max().unwrap_or(0);
        ClusterStats {
            cycles: max_core_cycles + barrier_cycles,
            max_core_cycles,
            per_core,
        }
    }

    /// Total instructions retired across cores.
    pub fn total_instret(&self) -> u64 {
        self.per_core.iter().map(|s| s.instret).sum()
    }

    /// Total effective MACs across cores.
    pub fn total_macs(&self) -> u64 {
        self.per_core.iter().map(|s| s.macs).sum()
    }

    /// Dense-equivalent MACs/cycle given the layer's dense MAC count.
    pub fn macs_per_cycle(&self, dense_macs: u64) -> f64 {
        dense_macs as f64 / self.cycles as f64
    }
}

/// The compute cluster: `n_cores` RI5CY cores sharing the L1 TCDM.
#[derive(Debug, Clone, Copy)]
pub struct Cluster {
    n_cores: usize,
    costs: CostModel,
}

impl Cluster {
    /// Creates a cluster of `n_cores` cores.
    ///
    /// # Panics
    /// Panics if `n_cores` is zero.
    pub fn new(n_cores: usize, costs: CostModel) -> Self {
        assert!(n_cores > 0, "cluster needs at least one core");
        Cluster { n_cores, costs }
    }

    /// Number of cores.
    pub fn n_cores(&self) -> usize {
        self.n_cores
    }

    /// The cost model cores are created with.
    pub fn costs(&self) -> CostModel {
        self.costs
    }

    /// Runs `body(core_id, core)` once per core and aggregates latency as
    /// `max(core cycles) + barrier`.
    pub fn run<F>(&self, mut body: F) -> ClusterStats
    where
        F: FnMut(usize, &mut Core),
    {
        let mut per_core = Vec::with_capacity(self.n_cores);
        for core_id in 0..self.n_cores {
            let mut core = Core::new(self.costs);
            body(core_id, &mut core);
            per_core.push(core.stats());
        }
        let max_core_cycles = per_core.iter().map(|s| s.cycles).max().unwrap_or(0);
        ClusterStats {
            cycles: max_core_cycles + self.costs.barrier_cycles,
            max_core_cycles,
            per_core,
        }
    }
}

/// Splits `total` work items into `n` contiguous balanced chunks and
/// returns chunk `i` as a `start..end` range (earlier chunks get the
/// remainder, matching PULP-NN's core assignment).
///
/// # Example
/// ```
/// use nm_platform::cluster::chunk_range;
/// assert_eq!(chunk_range(10, 4, 0), 0..3);
/// assert_eq!(chunk_range(10, 4, 1), 3..6);
/// assert_eq!(chunk_range(10, 4, 2), 6..8);
/// assert_eq!(chunk_range(10, 4, 3), 8..10);
/// ```
pub fn chunk_range(total: usize, n: usize, i: usize) -> std::ops::Range<usize> {
    assert!(i < n, "chunk index out of range");
    let base = total / n;
    let rem = total % n;
    let start = i * base + i.min(rem);
    let len = base + usize::from(i < rem);
    start..start + len
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_partition_exactly() {
        for total in [0usize, 1, 7, 8, 9, 63, 64, 65, 1000] {
            for n in [1usize, 2, 3, 8] {
                let mut covered = 0;
                let mut prev_end = 0;
                for i in 0..n {
                    let r = chunk_range(total, n, i);
                    assert_eq!(r.start, prev_end);
                    prev_end = r.end;
                    covered += r.len();
                }
                assert_eq!(covered, total);
                assert_eq!(prev_end, total);
            }
        }
    }

    #[test]
    fn chunks_are_balanced() {
        for total in [17usize, 256, 999] {
            let n = 8;
            let sizes: Vec<usize> = (0..n).map(|i| chunk_range(total, n, i).len()).collect();
            let min = sizes.iter().min().unwrap();
            let max = sizes.iter().max().unwrap();
            assert!(max - min <= 1, "{sizes:?}");
        }
    }

    #[test]
    fn cluster_latency_is_slowest_core_plus_barrier() {
        let costs = CostModel::default();
        let cluster = Cluster::new(4, costs);
        let stats = cluster.run(|id, core| core.alu_n((id as u64 + 1) * 10));
        assert_eq!(stats.max_core_cycles, 40);
        assert_eq!(stats.cycles, 40 + costs.barrier_cycles);
        assert_eq!(stats.total_instret(), 10 + 20 + 30 + 40);
    }

    #[test]
    fn macs_per_cycle_uses_dense_equivalents() {
        let cluster = Cluster::new(1, CostModel::default());
        let stats = cluster.run(|_, core| {
            for _ in 0..25 {
                core.sdotp(0, 0, 0);
            }
        });
        // 100 effective MACs; at 1:8 sparsity these stand for 800 dense.
        assert_eq!(stats.total_macs(), 100);
        let mpc = stats.macs_per_cycle(800);
        assert!(mpc > 0.0);
    }

    #[test]
    #[should_panic]
    fn zero_cores_panics() {
        let _ = Cluster::new(0, CostModel::default());
    }
}
