//! # nm-platform
//!
//! A behavioural model of the Vega PULP SoC (Rossi et al. 2021) — the
//! paper's deployment target — substituting for the GVSoC virtual
//! platform:
//!
//! * [`scratchpad::Scratchpad`] — software-managed L1 (128 kB TCDM),
//!   L2 (1.6 MB) and L3 (16 MB HyperRAM) byte memories with a bump
//!   allocator ([`scratchpad::BumpAllocator`]); there are **no caches**,
//!   exactly as on the real part.
//! * [`dma`] — the cluster DMA: cycle-costed 1-D copies between levels.
//! * [`pipeline`] — the double-buffering schedule used by MATCH-generated
//!   code: per-tile `max(compute, dma)` overlap (Sec. 5.2 relies on this
//!   to explain why conv layers hide weight transfers but memory-bound FC
//!   layers do not).
//! * [`cluster::Cluster`] — the 8-core compute cluster: runs a data-parallel
//!   kernel closure once per core (deterministically, on disjoint output
//!   ranges), takes the slowest core plus a barrier as the cluster latency.
//!
//! # Example
//!
//! ```
//! use nm_platform::{Cluster, VegaSoc};
//!
//! let soc = VegaSoc::default();
//! let cluster = Cluster::new(8, soc.costs);
//! let stats = cluster.run(|core_id, core| {
//!     // each core retires a different amount of work
//!     core.alu_n(10 + core_id as u64);
//! });
//! assert_eq!(stats.max_core_cycles, 17);
//! assert_eq!(stats.cycles, 17 + soc.costs.barrier_cycles);
//! ```

pub mod cluster;
pub mod dma;
pub mod pipeline;
pub mod scratchpad;
pub mod soc;
pub mod trace;

pub use cluster::{chunk_range, Cluster, ClusterStats};
pub use dma::Dma;
pub use pipeline::{double_buffered_cycles, TileCost};
pub use scratchpad::{BumpAllocator, Scratchpad, ScratchpadPool};
pub use soc::VegaSoc;
pub use trace::{Lane, Span, Trace};
