//! The cluster DMA engine: cycle-costed copies between memory levels.

use crate::scratchpad::Scratchpad;
use nm_isa::{CostModel, Memory};

/// The cluster DMA. Transfers are modeled as
/// `setup + ceil(bytes / bandwidth)` cycles (plus an L3 latency adder for
/// HyperRAM transfers); the copy itself is performed eagerly so simulated
/// kernels read real data.
#[derive(Debug, Clone, Copy)]
pub struct Dma {
    costs: CostModel,
}

impl Dma {
    /// Creates a DMA engine with the given cost model.
    pub fn new(costs: CostModel) -> Self {
        Dma { costs }
    }

    /// Copies `len` bytes from `src` at `src_addr` to `dst` at `dst_addr`
    /// and returns the transfer cycles (L2 ↔ L1 class transfer).
    pub fn copy(
        &self,
        src: &Scratchpad,
        src_addr: u32,
        dst: &mut Scratchpad,
        dst_addr: u32,
        len: usize,
    ) -> u64 {
        let bytes = src.read_bytes(src_addr, len);
        dst.write_bytes(dst_addr, &bytes);
        self.costs.dma_cycles(len)
    }

    /// Copies involving the external L3 (adds the HyperRAM latency).
    pub fn copy_l3(
        &self,
        src: &Scratchpad,
        src_addr: u32,
        dst: &mut Scratchpad,
        dst_addr: u32,
        len: usize,
    ) -> u64 {
        let bytes = src.read_bytes(src_addr, len);
        dst.write_bytes(dst_addr, &bytes);
        self.costs.dma_l3_cycles(len)
    }

    /// Cycles a transfer of `len` bytes would take, without performing it
    /// (used by the analytic planner).
    pub fn cycles(&self, len: usize) -> u64 {
        self.costs.dma_cycles(len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copy_moves_data_and_costs_cycles() {
        let costs = CostModel::default();
        let dma = Dma::new(costs);
        let mut l2 = Scratchpad::new("l2", 256);
        let mut l1 = Scratchpad::new("l1", 256);
        l2.write_bytes(16, &[9, 8, 7, 6]);
        let cycles = dma.copy(&l2, 16, &mut l1, 0, 4);
        assert_eq!(l1.read_bytes(0, 4), vec![9, 8, 7, 6]);
        assert_eq!(cycles, costs.dma_cycles(4));
    }

    #[test]
    fn l3_transfer_is_slower() {
        let costs = CostModel::default();
        let dma = Dma::new(costs);
        let l3 = Scratchpad::new("l3", 64);
        let mut l2 = Scratchpad::new("l2", 64);
        let fast = dma.copy(&l3, 0, &mut l2, 0, 32);
        let slow = dma.copy_l3(&l3, 0, &mut l2, 0, 32);
        assert!(slow > fast);
    }

    #[test]
    fn zero_length_transfer_is_free() {
        let dma = Dma::new(CostModel::default());
        assert_eq!(dma.cycles(0), 0);
    }
}
