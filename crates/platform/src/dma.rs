//! The cluster DMA engine: cycle-costed copies between memory levels.

use crate::scratchpad::Scratchpad;
use nm_isa::{CostModel, Memory};

/// The cluster DMA. Transfers are modeled as
/// `setup + ceil(bytes / bandwidth)` cycles (plus an L3 latency adder for
/// HyperRAM transfers); the copy itself is performed eagerly so simulated
/// kernels read real data.
#[derive(Debug, Clone, Copy)]
pub struct Dma {
    costs: CostModel,
}

impl Dma {
    /// Creates a DMA engine with the given cost model.
    pub fn new(costs: CostModel) -> Self {
        Dma { costs }
    }

    /// Copies `len` bytes from `src` at `src_addr` to `dst` at `dst_addr`
    /// and returns the transfer cycles (L2 ↔ L1 class transfer).
    pub fn copy(
        &self,
        src: &Scratchpad,
        src_addr: u32,
        dst: &mut Scratchpad,
        dst_addr: u32,
        len: usize,
    ) -> u64 {
        transfer(src, src_addr, dst, dst_addr, len);
        self.costs.dma_cycles(len)
    }

    /// Copies involving the external L3 (adds the HyperRAM latency; a
    /// zero-length transfer costs zero cycles — the latency adder only
    /// applies to transfers that actually move bytes, matching
    /// [`CostModel::dma_l3_cycles`]).
    pub fn copy_l3(
        &self,
        src: &Scratchpad,
        src_addr: u32,
        dst: &mut Scratchpad,
        dst_addr: u32,
        len: usize,
    ) -> u64 {
        transfer(src, src_addr, dst, dst_addr, len);
        self.costs.dma_l3_cycles(len)
    }

    /// Cycles a transfer of `len` bytes would take, without performing it
    /// (used by the analytic planner).
    pub fn cycles(&self, len: usize) -> u64 {
        self.costs.dma_cycles(len)
    }
}

/// Moves the payload between two scratchpads through the zero-copy slice
/// views — no temporary `Vec` per transfer. The `read_bytes` fallback
/// only runs when a backing store cannot expose a view (none of the
/// platform scratchpads today), preserving behavior for exotic backends.
fn transfer(src: &Scratchpad, src_addr: u32, dst: &mut Scratchpad, dst_addr: u32, len: usize) {
    match src.slice(src_addr, len) {
        Some(bytes) => dst.write_bytes(dst_addr, bytes),
        None => {
            let bytes = src.read_bytes(src_addr, len);
            dst.write_bytes(dst_addr, &bytes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copy_moves_data_and_costs_cycles() {
        let costs = CostModel::default();
        let dma = Dma::new(costs);
        let mut l2 = Scratchpad::new("l2", 256);
        let mut l1 = Scratchpad::new("l1", 256);
        l2.write_bytes(16, &[9, 8, 7, 6]);
        let cycles = dma.copy(&l2, 16, &mut l1, 0, 4);
        assert_eq!(l1.read_bytes(0, 4), vec![9, 8, 7, 6]);
        assert_eq!(cycles, costs.dma_cycles(4));
    }

    #[test]
    fn l3_transfer_is_slower() {
        let costs = CostModel::default();
        let dma = Dma::new(costs);
        let l3 = Scratchpad::new("l3", 64);
        let mut l2 = Scratchpad::new("l2", 64);
        let fast = dma.copy(&l3, 0, &mut l2, 0, 32);
        let slow = dma.copy_l3(&l3, 0, &mut l2, 0, 32);
        assert!(slow > fast);
    }

    #[test]
    fn zero_length_transfer_is_free() {
        let dma = Dma::new(CostModel::default());
        assert_eq!(dma.cycles(0), 0);
        // The L3 latency adder must not apply to transfers that move no
        // bytes: a 0-byte copy_l3 costs exactly 0 cycles, like copy.
        let l3 = Scratchpad::new("l3", 16);
        let mut l2 = Scratchpad::new("l2", 16);
        assert_eq!(dma.copy(&l3, 0, &mut l2, 0, 0), 0);
        assert_eq!(dma.copy_l3(&l3, 0, &mut l2, 0, 0), 0);
    }

    #[test]
    fn zero_copy_transfer_matches_buffered_fallback() {
        // The slice fast path must move exactly what the old
        // read_bytes/write_bytes pair moved, including full-scratchpad
        // and tail-of-region transfers.
        let costs = CostModel::default();
        let dma = Dma::new(costs);
        let mut src = Scratchpad::new("l2", 64);
        for i in 0..64 {
            src.store_u8(i, (5 * i + 3) as u8);
        }
        let mut fast = Scratchpad::new("l1", 64);
        let cycles = dma.copy(&src, 8, &mut fast, 16, 40);
        assert_eq!(cycles, costs.dma_cycles(40));
        assert_eq!(fast.read_bytes(16, 40), src.read_bytes(8, 40));
        // Whole-memory transfer (offset 0, full size).
        let mut whole = Scratchpad::new("l1", 64);
        dma.copy_l3(&src, 0, &mut whole, 0, 64);
        assert_eq!(whole.bytes(), src.bytes());
    }

    #[test]
    #[should_panic]
    fn out_of_range_transfer_is_a_bus_error() {
        let dma = Dma::new(CostModel::default());
        let src = Scratchpad::new("l2", 16);
        let mut dst = Scratchpad::new("l1", 16);
        let _ = dma.copy(&src, 10, &mut dst, 0, 8);
    }
}
