//! Tile-level execution traces — a GVSoC-style timeline view of the
//! double-buffered schedule.
//!
//! [`Trace::from_tiles`] replays the exact schedule that
//! [`crate::pipeline::double_buffered_cycles`] prices, emitting one span
//! per DMA transfer and per tile compute. The trace's end time equals
//! the pipeline's cycle count by construction (pinned by tests), so the
//! timeline is a faithful *explanation* of the latency, not a second
//! model: compute-bound layers show a packed compute lane with short DMA
//! bursts hidden under it; memory-bound FC layers show the opposite —
//! the picture behind the paper's Sec. 5.2 discussion.
//!
//! [`Trace::render`] draws the three lanes (DMA-in, compute, DMA-out) as
//! an ASCII Gantt chart for examples and reports.

use crate::pipeline::TileCost;

/// Which resource a span occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lane {
    /// L2 → L1 input transfers (weights + activations).
    DmaIn,
    /// Cluster compute.
    Compute,
    /// L1 → L2 output transfers.
    DmaOut,
}

impl Lane {
    /// All lanes, display order.
    pub const ALL: [Lane; 3] = [Lane::DmaIn, Lane::Compute, Lane::DmaOut];

    /// Display name (fixed width).
    pub fn name(self) -> &'static str {
        match self {
            Lane::DmaIn => "dma-in ",
            Lane::Compute => "compute",
            Lane::DmaOut => "dma-out",
        }
    }
}

/// One occupied interval on a lane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// The occupied resource.
    pub lane: Lane,
    /// Human-readable label (`"tile 3"`, `"in 4"`, …).
    pub label: String,
    /// Start cycle (inclusive).
    pub start: u64,
    /// End cycle (exclusive).
    pub end: u64,
}

/// A tile-schedule timeline.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    spans: Vec<Span>,
    end: u64,
}

impl Trace {
    /// Replays the double-buffered schedule of `tiles`.
    ///
    /// Tile `i`'s compute overlaps tile `i+1`'s input DMA and tile
    /// `i-1`'s output DMA (which share the one DMA engine and run
    /// back-to-back); the first input and last output are exposed.
    /// The resulting end time equals
    /// [`crate::pipeline::double_buffered_cycles`].
    ///
    /// # Example
    /// ```
    /// use nm_platform::pipeline::{double_buffered_cycles, TileCost};
    /// use nm_platform::{Lane, Trace};
    /// let tiles = [TileCost { dma_in: 10, compute: 100, dma_out: 5 }; 4];
    /// let trace = Trace::from_tiles(&tiles);
    /// assert_eq!(trace.end(), double_buffered_cycles(&tiles));
    /// assert!(trace.utilization(Lane::Compute) > 0.9); // compute-bound
    /// ```
    pub fn from_tiles(tiles: &[TileCost]) -> Self {
        let n = tiles.len();
        let mut spans = Vec::new();
        if n == 0 {
            return Trace::default();
        }
        let mut t = 0u64;
        if tiles[0].dma_in > 0 {
            spans.push(Span {
                lane: Lane::DmaIn,
                label: "in 0".into(),
                start: 0,
                end: tiles[0].dma_in,
            });
        }
        t += tiles[0].dma_in;
        for i in 0..n {
            let compute = tiles[i].compute;
            let next_in = if i + 1 < n { tiles[i + 1].dma_in } else { 0 };
            let prev_out = if i > 0 { tiles[i - 1].dma_out } else { 0 };
            if compute > 0 {
                spans.push(Span {
                    lane: Lane::Compute,
                    label: format!("tile {i}"),
                    start: t,
                    end: t + compute,
                });
            }
            if next_in > 0 {
                spans.push(Span {
                    lane: Lane::DmaIn,
                    label: format!("in {}", i + 1),
                    start: t,
                    end: t + next_in,
                });
            }
            if prev_out > 0 {
                spans.push(Span {
                    lane: Lane::DmaOut,
                    label: format!("out {}", i - 1),
                    start: t + next_in,
                    end: t + next_in + prev_out,
                });
            }
            t += compute.max(next_in + prev_out);
        }
        if tiles[n - 1].dma_out > 0 {
            spans.push(Span {
                lane: Lane::DmaOut,
                label: format!("out {}", n - 1),
                start: t,
                end: t + tiles[n - 1].dma_out,
            });
        }
        t += tiles[n - 1].dma_out;
        Trace { spans, end: t }
    }

    /// End of the schedule in cycles (equals the pipeline model's total).
    pub fn end(&self) -> u64 {
        self.end
    }

    /// All spans in emission order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Busy cycles on one lane.
    pub fn lane_busy(&self, lane: Lane) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.lane == lane)
            .map(|s| s.end - s.start)
            .sum()
    }

    /// Busy fraction of one lane over the whole schedule.
    pub fn utilization(&self, lane: Lane) -> f64 {
        if self.end == 0 {
            0.0
        } else {
            self.lane_busy(lane) as f64 / self.end as f64
        }
    }

    /// Renders a three-lane ASCII Gantt chart, `width` columns wide.
    /// Each column covers `end / width` cycles; a lane cell is filled
    /// (`#`) when any span overlaps it. Lane utilization is appended.
    pub fn render(&self, width: usize) -> String {
        let width = width.max(1);
        let mut out = String::new();
        if self.end == 0 {
            return "(empty trace)\n".into();
        }
        for lane in Lane::ALL {
            let mut row: Vec<char> = vec!['.'; width];
            for s in self.spans.iter().filter(|s| s.lane == lane) {
                let from = (s.start as u128 * width as u128 / self.end as u128) as usize;
                let to = (s.end as u128 * width as u128).div_ceil(self.end as u128) as usize;
                for c in row.iter_mut().take(to.min(width)).skip(from) {
                    *c = '#';
                }
            }
            let line: String = row.into_iter().collect();
            out.push_str(&format!(
                "{} |{}| {:5.1}%\n",
                lane.name(),
                line,
                100.0 * self.utilization(lane)
            ));
        }
        out.push_str(&format!(
            "{} cycles, {} tiles-spans\n",
            self.end,
            self.spans.len()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::double_buffered_cycles;

    fn tiles(specs: &[(u64, u64, u64)]) -> Vec<TileCost> {
        specs
            .iter()
            .map(|&(dma_in, compute, dma_out)| TileCost {
                dma_in,
                compute,
                dma_out,
            })
            .collect()
    }

    #[test]
    fn empty_trace() {
        let t = Trace::from_tiles(&[]);
        assert_eq!(t.end(), 0);
        assert!(t.spans().is_empty());
        assert_eq!(t.render(40), "(empty trace)\n");
    }

    #[test]
    fn end_matches_pipeline_model() {
        let cases = [
            tiles(&[(10, 100, 5); 4]),
            tiles(&[(100, 10, 20); 3]),
            tiles(&[(7, 20, 3)]),
            tiles(&[(3, 0, 0), (0, 50, 9), (12, 12, 12)]),
        ];
        for c in cases {
            let t = Trace::from_tiles(&c);
            assert_eq!(t.end(), double_buffered_cycles(&c), "{c:?}");
        }
    }

    #[test]
    fn spans_do_not_overlap_within_a_lane() {
        let c = tiles(&[(10, 30, 8), (12, 25, 7), (9, 40, 6), (11, 5, 10)]);
        let t = Trace::from_tiles(&c);
        for lane in Lane::ALL {
            let mut spans: Vec<&Span> = t.spans().iter().filter(|s| s.lane == lane).collect();
            spans.sort_by_key(|s| s.start);
            for pair in spans.windows(2) {
                assert!(pair[0].end <= pair[1].start, "{lane:?}: {pair:?}");
            }
        }
    }

    #[test]
    fn compute_bound_compute_lane_is_saturated() {
        let c = tiles(&[(10, 100, 10); 5]);
        let t = Trace::from_tiles(&c);
        // All compute back-to-back: busy == 5*100 out of 10 + 500 + 10.
        assert_eq!(t.lane_busy(Lane::Compute), 500);
        assert!(t.utilization(Lane::Compute) > 0.95);
        assert!(t.utilization(Lane::DmaIn) < 0.15);
    }

    #[test]
    fn memory_bound_dma_lane_dominates() {
        let c = tiles(&[(100, 10, 0); 4]);
        let t = Trace::from_tiles(&c);
        assert!(t.utilization(Lane::DmaIn) > 0.9);
        assert!(t.utilization(Lane::Compute) < 0.2);
    }

    #[test]
    fn lane_busy_sums_every_transfer() {
        let c = tiles(&[(10, 30, 8), (12, 25, 7)]);
        let t = Trace::from_tiles(&c);
        assert_eq!(t.lane_busy(Lane::DmaIn), 22);
        assert_eq!(t.lane_busy(Lane::DmaOut), 15);
        assert_eq!(t.lane_busy(Lane::Compute), 55);
    }

    #[test]
    fn render_shows_three_lanes() {
        let c = tiles(&[(10, 100, 5); 3]);
        let text = Trace::from_tiles(&c).render(40);
        assert_eq!(text.lines().count(), 4);
        assert!(text.contains("compute |"));
        assert!(text.contains('#'));
        assert!(text.contains('%'));
    }

    #[test]
    fn render_width_is_respected() {
        let c = tiles(&[(1, 1000, 1)]);
        let text = Trace::from_tiles(&c).render(20);
        let line = text.lines().next().unwrap();
        let bar = line.split('|').nth(1).unwrap();
        assert_eq!(bar.chars().count(), 20);
    }

    #[test]
    fn zero_cost_tiles_produce_no_spans() {
        let c = tiles(&[(0, 0, 0); 3]);
        let t = Trace::from_tiles(&c);
        assert_eq!(t.end(), 0);
        assert!(t.spans().is_empty());
    }
}
