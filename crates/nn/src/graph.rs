//! The DNN graph: a builder-constructed DAG with shape inference.

use crate::layer::{AttentionLayer, ConvLayer, LinearLayer};
use nm_core::{Error, Result};

/// Identifies a node in a [`Graph`].
pub type NodeId = usize;

/// The operator set needed by the paper's benchmark networks (ResNet18,
/// ViT-Small) plus the related-work models (LeNet, DS-CNN).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpKind {
    /// The graph input placeholder (node 0).
    Input,
    /// 2-D convolution over an HWC tensor.
    Conv2d(ConvLayer),
    /// Linear layer applied to `[C]` or row-wise to `[T, C]`.
    Linear(LinearLayer),
    /// Multi-head self-attention over `[T, D]`.
    Attention(AttentionLayer),
    /// Elementwise ReLU.
    Relu,
    /// Elementwise GELU (int8 LUT).
    Gelu,
    /// Row-wise LayerNorm over the last axis.
    LayerNorm,
    /// Max pooling.
    MaxPool {
        /// Window size.
        k: usize,
        /// Stride.
        s: usize,
    },
    /// Average pooling.
    AvgPool {
        /// Window size.
        k: usize,
        /// Stride.
        s: usize,
    },
    /// Global average pooling HWC → C.
    GlobalAvgPool,
    /// Saturating elementwise add (residual connections).
    Add,
    /// Flatten to 1-D.
    Flatten,
    /// Reshape an HWC feature map into a token sequence `[H*W, C]`
    /// (ViT patch embedding).
    Tokens,
}

impl OpKind {
    /// A short operator name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            OpKind::Input => "input",
            OpKind::Conv2d(_) => "conv2d",
            OpKind::Linear(_) => "linear",
            OpKind::Attention(_) => "attention",
            OpKind::Relu => "relu",
            OpKind::Gelu => "gelu",
            OpKind::LayerNorm => "layernorm",
            OpKind::MaxPool { .. } => "maxpool",
            OpKind::AvgPool { .. } => "avgpool",
            OpKind::GlobalAvgPool => "gap",
            OpKind::Add => "add",
            OpKind::Flatten => "flatten",
            OpKind::Tokens => "tokens",
        }
    }

    /// Parameter count (weights only).
    pub fn params(&self) -> usize {
        match self {
            OpKind::Conv2d(l) => l.weights.len(),
            OpKind::Linear(l) => l.weights.len(),
            OpKind::Attention(a) => a.qkv.weights.len() + a.proj.weights.len(),
            _ => 0,
        }
    }
}

/// One graph node: operator + input edges + inferred output shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// The operator.
    pub op: OpKind,
    /// Producer nodes (all with smaller ids — the builder enforces
    /// topological order).
    pub inputs: Vec<NodeId>,
    /// Inferred output shape.
    pub out_shape: Vec<usize>,
}

/// A topologically ordered DNN graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    nodes: Vec<Node>,
    output: NodeId,
}

impl Graph {
    /// All nodes in topological (construction) order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// One node.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id]
    }

    /// Mutable node access (used by the pruner).
    pub(crate) fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id]
    }

    /// The output node id.
    pub fn output(&self) -> NodeId {
        self.output
    }

    /// The input shape (node 0's output shape).
    pub fn input_shape(&self) -> &[usize] {
        &self.nodes[0].out_shape
    }

    /// Total parameter count.
    pub fn params(&self) -> usize {
        self.nodes.iter().map(|n| n.op.params()).sum()
    }

    /// Total dense MACs of one inference.
    pub fn dense_macs(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| match &n.op {
                OpKind::Conv2d(l) => l.geom.macs(),
                OpKind::Linear(l) => {
                    let t = if n.out_shape.len() == 2 {
                        n.out_shape[0]
                    } else {
                        1
                    };
                    t * l.geom.macs()
                }
                OpKind::Attention(a) => a.macs(n.out_shape[0]),
                _ => 0,
            })
            .sum()
    }
}

/// Incrementally builds a [`Graph`] with shape checking at every step.
///
/// # Example
/// ```
/// use nm_nn::graph::GraphBuilder;
/// use nm_nn::layer::ConvLayer;
/// use nm_core::{ConvGeom, quant::Requant};
///
/// # fn main() -> Result<(), nm_core::Error> {
/// let mut b = GraphBuilder::new(&[8, 8, 4]);
/// let geom = ConvGeom::square(4, 8, 8, 3, 1, 1)?;
/// let conv = ConvLayer::new(geom, vec![0; geom.weight_elems()], Requant::IDENTITY)?;
/// let x = b.conv(b.input(), conv)?;
/// let x = b.relu(x)?;
/// let g = b.finish(x)?;
/// assert_eq!(g.node(g.output()).out_shape, vec![8, 8, 8]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    nodes: Vec<Node>,
}

impl GraphBuilder {
    /// Starts a graph with the given input shape.
    pub fn new(input_shape: &[usize]) -> Self {
        GraphBuilder {
            nodes: vec![Node {
                op: OpKind::Input,
                inputs: vec![],
                out_shape: input_shape.to_vec(),
            }],
        }
    }

    /// The input node id (always 0).
    pub fn input(&self) -> NodeId {
        0
    }

    fn shape(&self, id: NodeId) -> Result<&[usize]> {
        self.nodes
            .get(id)
            .map(|n| n.out_shape.as_slice())
            .ok_or_else(|| Error::ShapeMismatch(format!("unknown node {id}")))
    }

    fn push(&mut self, op: OpKind, inputs: Vec<NodeId>, out_shape: Vec<usize>) -> NodeId {
        self.nodes.push(Node {
            op,
            inputs,
            out_shape,
        });
        self.nodes.len() - 1
    }

    /// Adds a convolution.
    ///
    /// # Errors
    /// [`Error::ShapeMismatch`] if the input is not HWC with the layer's
    /// `IY x IX x C`.
    pub fn conv(&mut self, x: NodeId, layer: ConvLayer) -> Result<NodeId> {
        let s = self.shape(x)?;
        let g = layer.geom;
        if s != [g.iy, g.ix, g.c] {
            return Err(Error::ShapeMismatch(format!(
                "conv expects [{}, {}, {}], got {s:?}",
                g.iy, g.ix, g.c
            )));
        }
        let out = vec![g.oy(), g.ox(), g.k];
        Ok(self.push(OpKind::Conv2d(layer), vec![x], out))
    }

    /// Adds a linear layer over `[C]` or `[T, C]`.
    ///
    /// # Errors
    /// [`Error::ShapeMismatch`] if the last axis is not `C`.
    pub fn linear(&mut self, x: NodeId, layer: LinearLayer) -> Result<NodeId> {
        let s = self.shape(x)?.to_vec();
        let out = match s.as_slice() {
            [c] if *c == layer.geom.c => vec![layer.geom.k],
            [t, c] if *c == layer.geom.c => vec![*t, layer.geom.k],
            _ => {
                return Err(Error::ShapeMismatch(format!(
                    "linear expects [..., {}], got {s:?}",
                    layer.geom.c
                )))
            }
        };
        Ok(self.push(OpKind::Linear(layer), vec![x], out))
    }

    /// Adds a multi-head attention block over `[T, D]`.
    ///
    /// # Errors
    /// [`Error::ShapeMismatch`] if the input is not `[T, D]`.
    pub fn attention(&mut self, x: NodeId, layer: AttentionLayer) -> Result<NodeId> {
        let s = self.shape(x)?.to_vec();
        if s.len() != 2 || s[1] != layer.dim {
            return Err(Error::ShapeMismatch(format!(
                "attention expects [T, {}], got {s:?}",
                layer.dim
            )));
        }
        Ok(self.push(OpKind::Attention(layer), vec![x], s))
    }

    /// Adds an elementwise/unary op preserving the shape.
    fn unary(&mut self, x: NodeId, op: OpKind) -> Result<NodeId> {
        let s = self.shape(x)?.to_vec();
        Ok(self.push(op, vec![x], s))
    }

    /// Adds a ReLU.
    ///
    /// # Errors
    /// [`Error::ShapeMismatch`] if `x` is unknown.
    pub fn relu(&mut self, x: NodeId) -> Result<NodeId> {
        self.unary(x, OpKind::Relu)
    }

    /// Adds a GELU.
    ///
    /// # Errors
    /// [`Error::ShapeMismatch`] if `x` is unknown.
    pub fn gelu(&mut self, x: NodeId) -> Result<NodeId> {
        self.unary(x, OpKind::Gelu)
    }

    /// Adds a LayerNorm over the last axis.
    ///
    /// # Errors
    /// [`Error::ShapeMismatch`] if `x` is unknown.
    pub fn layer_norm(&mut self, x: NodeId) -> Result<NodeId> {
        self.unary(x, OpKind::LayerNorm)
    }

    fn pool(&mut self, x: NodeId, k: usize, s: usize, max: bool) -> Result<NodeId> {
        let shape = self.shape(x)?.to_vec();
        if shape.len() != 3 || shape[0] < k || shape[1] < k {
            return Err(Error::ShapeMismatch(format!("pool {k}x{k} over {shape:?}")));
        }
        let out = vec![(shape[0] - k) / s + 1, (shape[1] - k) / s + 1, shape[2]];
        let op = if max {
            OpKind::MaxPool { k, s }
        } else {
            OpKind::AvgPool { k, s }
        };
        Ok(self.push(op, vec![x], out))
    }

    /// Adds max pooling.
    ///
    /// # Errors
    /// [`Error::ShapeMismatch`] if the input is not HWC or too small.
    pub fn max_pool(&mut self, x: NodeId, k: usize, s: usize) -> Result<NodeId> {
        self.pool(x, k, s, true)
    }

    /// Adds average pooling.
    ///
    /// # Errors
    /// [`Error::ShapeMismatch`] if the input is not HWC or too small.
    pub fn avg_pool(&mut self, x: NodeId, k: usize, s: usize) -> Result<NodeId> {
        self.pool(x, k, s, false)
    }

    /// Adds global average pooling (HWC → C).
    ///
    /// # Errors
    /// [`Error::ShapeMismatch`] if the input is not 3-D.
    pub fn global_avg_pool(&mut self, x: NodeId) -> Result<NodeId> {
        let s = self.shape(x)?.to_vec();
        if s.len() != 3 {
            return Err(Error::ShapeMismatch(format!("global pool over {s:?}")));
        }
        Ok(self.push(OpKind::GlobalAvgPool, vec![x], vec![s[2]]))
    }

    /// Adds a residual add.
    ///
    /// # Errors
    /// [`Error::ShapeMismatch`] if the operand shapes differ.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> Result<NodeId> {
        let sa = self.shape(a)?.to_vec();
        let sb = self.shape(b)?.to_vec();
        if sa != sb {
            return Err(Error::ShapeMismatch(format!("add of {sa:?} and {sb:?}")));
        }
        Ok(self.push(OpKind::Add, vec![a, b], sa))
    }

    /// Adds a flatten to 1-D.
    ///
    /// # Errors
    /// [`Error::ShapeMismatch`] if `x` is unknown.
    pub fn flatten(&mut self, x: NodeId) -> Result<NodeId> {
        let s = self.shape(x)?;
        let len = s.iter().product();
        Ok(self.push(OpKind::Flatten, vec![x], vec![len]))
    }

    /// Reshapes an HWC map into tokens `[H*W, C]`.
    ///
    /// # Errors
    /// [`Error::ShapeMismatch`] if the input is not 3-D.
    pub fn tokens(&mut self, x: NodeId) -> Result<NodeId> {
        let s = self.shape(x)?.to_vec();
        if s.len() != 3 {
            return Err(Error::ShapeMismatch(format!("tokens over {s:?}")));
        }
        Ok(self.push(OpKind::Tokens, vec![x], vec![s[0] * s[1], s[2]]))
    }

    /// Finishes the graph with `output` as the result node.
    ///
    /// # Errors
    /// [`Error::ShapeMismatch`] if `output` is unknown.
    pub fn finish(self, output: NodeId) -> Result<Graph> {
        if output >= self.nodes.len() {
            return Err(Error::ShapeMismatch(format!(
                "unknown output node {output}"
            )));
        }
        Ok(Graph {
            nodes: self.nodes,
            output,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nm_core::quant::Requant;
    use nm_core::{ConvGeom, FcGeom};

    fn conv_layer(c: usize, k: usize, i: usize) -> ConvLayer {
        let geom = ConvGeom::square(c, k, i, 3, 1, 1).unwrap();
        ConvLayer::new(geom, vec![1; geom.weight_elems()], Requant::IDENTITY).unwrap()
    }

    #[test]
    fn residual_block_shapes() {
        let mut b = GraphBuilder::new(&[8, 8, 4]);
        let x = b.input();
        let c1 = b.conv(x, conv_layer(4, 4, 8)).unwrap();
        let r1 = b.relu(c1).unwrap();
        let c2 = b.conv(r1, conv_layer(4, 4, 8)).unwrap();
        let s = b.add(c2, x).unwrap();
        let g = b.finish(s).unwrap();
        assert_eq!(g.node(g.output()).out_shape, vec![8, 8, 4]);
        assert_eq!(g.params(), 2 * 4 * 4 * 9);
        assert_eq!(g.dense_macs(), 2 * 64 * 4 * 36);
    }

    #[test]
    fn linear_over_tokens() {
        let mut b = GraphBuilder::new(&[5, 16]);
        let l =
            LinearLayer::new(FcGeom::new(16, 8).unwrap(), vec![0; 128], Requant::IDENTITY).unwrap();
        let y = b.linear(b.input(), l).unwrap();
        let g = b.finish(y).unwrap();
        assert_eq!(g.node(y).out_shape, vec![5, 8]);
        assert_eq!(g.dense_macs(), 5 * 128);
    }

    #[test]
    fn shape_mismatches_are_rejected() {
        let mut b = GraphBuilder::new(&[8, 8, 3]);
        assert!(b.conv(b.input(), conv_layer(4, 4, 8)).is_err()); // C mismatch
        let x = b.input();
        assert!(b.add(x, x).is_ok());
        let mut b2 = GraphBuilder::new(&[4]);
        assert!(b2.global_avg_pool(b2.input()).is_err());
        assert!(b2.clone().finish(99).is_err());
    }

    #[test]
    fn pooling_and_flatten_shapes() {
        let mut b = GraphBuilder::new(&[6, 6, 2]);
        let p = b.max_pool(b.input(), 2, 2).unwrap();
        let f = b.flatten(p).unwrap();
        let g = b.finish(f).unwrap();
        assert_eq!(g.node(p).out_shape, vec![3, 3, 2]);
        assert_eq!(g.node(f).out_shape, vec![18]);
    }
}
