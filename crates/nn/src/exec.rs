//! The int8 reference executor.
//!
//! Executes a [`Graph`] node by node, producing deterministic int8
//! tensors. This is the golden model against which compiled (tiled,
//! sparse-packed) execution is verified bit-exactly.

use crate::graph::{Graph, OpKind};
use crate::layer::{AttentionLayer, ConvLayer, LinearLayer};
use crate::ops;
use nm_core::{Error, Result, Tensor};

/// Runs the graph on `input`, returning the output tensor.
///
/// # Errors
/// [`Error::ShapeMismatch`] if the input shape disagrees with the graph.
pub fn execute(graph: &Graph, input: &Tensor<i8>) -> Result<Tensor<i8>> {
    if input.shape() != graph.input_shape() {
        return Err(Error::ShapeMismatch(format!(
            "input shape {:?} != graph input {:?}",
            input.shape(),
            graph.input_shape()
        )));
    }
    let mut values: Vec<Option<Tensor<i8>>> = vec![None; graph.nodes().len()];
    values[0] = Some(input.clone());
    for (id, node) in graph.nodes().iter().enumerate().skip(1) {
        let get = |i: usize| values[node.inputs[i]].as_ref().expect("topological order");
        let out = match &node.op {
            OpKind::Input => unreachable!("input is node 0"),
            OpKind::Conv2d(l) => conv2d(get(0), l),
            OpKind::Linear(l) => linear(get(0), l),
            OpKind::Attention(a) => attention(get(0), a),
            OpKind::Relu => ops::relu(get(0)),
            OpKind::Gelu => ops::gelu(get(0)),
            OpKind::LayerNorm => ops::layer_norm(get(0)),
            OpKind::MaxPool { k, s } => ops::max_pool(get(0), *k, *s),
            OpKind::AvgPool { k, s } => ops::avg_pool(get(0), *k, *s),
            OpKind::GlobalAvgPool => ops::global_avg_pool(get(0)),
            OpKind::Add => ops::add(get(0), values[node.inputs[1]].as_ref().unwrap()),
            OpKind::Flatten => {
                let t = get(0).clone();
                let len = t.len();
                t.reshape(&[len])?
            }
            OpKind::Tokens => {
                let t = get(0).clone();
                let shape = node.out_shape.clone();
                t.reshape(&shape)?
            }
        };
        debug_assert_eq!(out.shape(), node.out_shape.as_slice(), "node {id} shape");
        values[id] = Some(out);
    }
    Ok(values[graph.output()].take().expect("output computed"))
}

/// Direct HWC convolution with the layer's requantization.
pub fn conv2d(x: &Tensor<i8>, l: &ConvLayer) -> Tensor<i8> {
    let g = &l.geom;
    let mut out = Tensor::<i8>::zeros(&[g.oy(), g.ox(), g.k]);
    for y in 0..g.oy() {
        for xo in 0..g.ox() {
            for k in 0..g.k {
                let mut acc = 0i32;
                for ky in 0..g.fy {
                    for kx in 0..g.fx {
                        let iy = (y * g.stride + ky) as isize - g.pad as isize;
                        let ix = (xo * g.stride + kx) as isize - g.pad as isize;
                        for c in 0..g.c {
                            let a = x.hwc_get_padded(iy, ix, c);
                            let w = l.weights[k * g.patch_len() + (ky * g.fx + kx) * g.c + c];
                            acc = acc.wrapping_add(i32::from(a) * i32::from(w));
                        }
                    }
                }
                *out.at_mut(&[y, xo, k]) = l.requant.apply(acc);
            }
        }
    }
    out
}

/// Linear layer over `[C]` or row-wise over `[T, C]`.
pub fn linear(x: &Tensor<i8>, l: &LinearLayer) -> Tensor<i8> {
    let (t, c) = match x.shape() {
        [c] => (1, *c),
        [t, c] => (*t, *c),
        s => panic!("linear over unsupported shape {s:?}"),
    };
    assert_eq!(c, l.geom.c);
    let mut data = vec![0i8; t * l.geom.k];
    for row in 0..t {
        let xrow = &x.data()[row * c..(row + 1) * c];
        for k in 0..l.geom.k {
            let mut acc = 0i32;
            for i in 0..c {
                acc = acc.wrapping_add(i32::from(l.weights[k * c + i]) * i32::from(xrow[i]));
            }
            data[row * l.geom.k + k] = l.requant.apply(acc);
        }
    }
    let shape: Vec<usize> = if x.shape().len() == 1 {
        vec![l.geom.k]
    } else {
        vec![t, l.geom.k]
    };
    Tensor::from_vec(&shape, data).expect("shape consistent")
}

/// Multi-head self-attention over `[T, D]`.
pub fn attention(x: &Tensor<i8>, a: &AttentionLayer) -> Tensor<i8> {
    let t = x.shape()[0];
    let d = a.dim;
    let hd = a.head_dim();
    let qkv = linear(x, &a.qkv); // [T, 3D]
    let mut context = vec![0i8; t * d];
    for h in 0..a.heads {
        // Extract per-head Q, K, V as row-major [T, hd].
        let col0 = |part: usize| part * d + h * hd;
        let slice = |part: usize| -> Vec<i8> {
            let base = col0(part);
            let mut out = Vec::with_capacity(t * hd);
            for row in 0..t {
                let r = &qkv.data()[row * 3 * d + base..row * 3 * d + base + hd];
                out.extend_from_slice(r);
            }
            out
        };
        let q = slice(0);
        let k = slice(1);
        let v = slice(2);
        // Kᵀ as [hd, T].
        let mut kt = vec![0i8; hd * t];
        for row in 0..t {
            for j in 0..hd {
                kt[j * t + row] = k[row * hd + j];
            }
        }
        let scores = ops::matmul(&q, &kt, t, hd, t, a.score_requant); // [T, T]
        let probs = ops::softmax(&Tensor::from_vec(&[t, t], scores).expect("t x t"));
        let ctx = ops::matmul(probs.data(), &v, t, t, hd, a.context_requant); // [T, hd]
        for row in 0..t {
            for j in 0..hd {
                context[row * d + h * hd + j] = ctx[row * hd + j];
            }
        }
    }
    let ctx_t = Tensor::from_vec(&[t, d], context).expect("t x d");
    linear(&ctx_t, &a.proj)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::rng::XorShift;
    use nm_core::quant::Requant;
    use nm_core::{ConvGeom, FcGeom};

    #[test]
    fn chain_executes_and_matches_shapes() {
        let mut rng = XorShift::new(5);
        let geom = ConvGeom::square(3, 8, 6, 3, 1, 1).unwrap();
        let conv = ConvLayer::new(
            geom,
            rng.fill_weights(geom.weight_elems(), 20),
            Requant::new(0, 6).unwrap(),
        )
        .unwrap();
        let fc = LinearLayer::new(
            FcGeom::new(8, 4).unwrap(),
            rng.fill_weights(32, 20),
            Requant::new(0, 4).unwrap(),
        )
        .unwrap();
        let mut b = GraphBuilder::new(&[6, 6, 3]);
        let x = b.conv(b.input(), conv).unwrap();
        let x = b.relu(x).unwrap();
        let x = b.global_avg_pool(x).unwrap();
        let x = b.linear(x, fc).unwrap();
        let g = b.finish(x).unwrap();

        let input = Tensor::from_vec(&[6, 6, 3], rng.fill_weights(108, 40)).unwrap();
        let out = execute(&g, &input).unwrap();
        assert_eq!(out.shape(), &[4]);
    }

    #[test]
    fn execute_rejects_wrong_input_shape() {
        let b = GraphBuilder::new(&[4, 4, 1]);
        let g = b.finish(0).unwrap();
        let input = Tensor::<i8>::zeros(&[4, 4, 2]);
        assert!(execute(&g, &input).is_err());
    }

    #[test]
    fn residual_add_identity() {
        // conv with zero weights + residual add returns the input.
        let geom = ConvGeom::square(2, 2, 4, 3, 1, 1).unwrap();
        let conv = ConvLayer::new(geom, vec![0; geom.weight_elems()], Requant::IDENTITY).unwrap();
        let mut b = GraphBuilder::new(&[4, 4, 2]);
        let x = b.input();
        let c = b.conv(x, conv).unwrap();
        let s = b.add(c, x).unwrap();
        let g = b.finish(s).unwrap();
        let mut rng = XorShift::new(8);
        let input = Tensor::from_vec(&[4, 4, 2], rng.fill_weights(32, 30)).unwrap();
        let out = execute(&g, &input).unwrap();
        assert_eq!(out, input);
    }

    #[test]
    fn attention_executes_with_plausible_output() {
        let d = 8;
        let t = 5;
        let mut rng = XorShift::new(11);
        let qkv = LinearLayer::new(
            FcGeom::new(d, 3 * d).unwrap(),
            rng.fill_weights(3 * d * d, 15),
            Requant::new(0, 5).unwrap(),
        )
        .unwrap();
        let proj = LinearLayer::new(
            FcGeom::new(d, d).unwrap(),
            rng.fill_weights(d * d, 15),
            Requant::new(0, 5).unwrap(),
        )
        .unwrap();
        let att = AttentionLayer::new(
            d,
            2,
            qkv,
            proj,
            Requant::new(0, 6).unwrap(),
            Requant::new(0, 7).unwrap(),
        )
        .unwrap();
        let x = Tensor::from_vec(&[t, d], rng.fill_weights(t * d, 40)).unwrap();
        let out = attention(&x, &att);
        assert_eq!(out.shape(), &[t, d]);
        // Deterministic:
        assert_eq!(out, attention(&x, &att));
        assert!(out.data().iter().any(|&v| v != 0));
    }

    #[test]
    fn uniform_attention_averages_values() {
        // With zero Q/K, scores are uniform, so the context is the mean
        // of V rows; with identity-ish proj the op is a row-mean mixer.
        let d = 4;
        let t = 3;
        let mut qkv_w = vec![0i8; 3 * d * d];
        // V part = identity (rows 2d..3d of the weight matrix).
        for i in 0..d {
            qkv_w[(2 * d + i) * d + i] = 1;
        }
        let qkv =
            LinearLayer::new(FcGeom::new(d, 3 * d).unwrap(), qkv_w, Requant::IDENTITY).unwrap();
        let mut proj_w = vec![0i8; d * d];
        for i in 0..d {
            proj_w[i * d + i] = 1;
        }
        let proj = LinearLayer::new(FcGeom::new(d, d).unwrap(), proj_w, Requant::IDENTITY).unwrap();
        let att = AttentionLayer::new(
            d,
            1,
            qkv,
            proj,
            Requant::IDENTITY,
            Requant::new(0, 7).unwrap(),
        )
        .unwrap();
        let x = Tensor::from_vec(
            &[t, d],
            vec![
                100, 0, 0, 0, //
                0, 100, 0, 0, //
                0, 0, 100, 0,
            ],
        )
        .unwrap();
        let out = attention(&x, &att);
        // Each context row ≈ mean of V rows scaled by softmax(127/3)·
        // requant shift; just check rows are identical and non-trivial.
        let rows: Vec<&[i8]> = out.data().chunks(d).collect();
        assert_eq!(rows[0], rows[1]);
        assert_eq!(rows[1], rows[2]);
    }
}
