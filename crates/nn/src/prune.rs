//! Magnitude N:M pruning over graph layers.
//!
//! The paper's deployment policies (Sec. 5.1):
//!
//! * **ResNet18** — prune all 3×3 convolutions, keep pointwise (1×1)
//!   convolutions and the classifier dense;
//! * **ViT** — prune only the feed-forward linear layers of each
//!   transformer block (attention projections and the classifier head
//!   stay dense).
//!
//! Training-time schemes (SR-STE) live in `nm-train`; this module applies
//! post-training magnitude pruning, which preserves the exact layout and
//! latency behaviour the kernels see.

use crate::graph::{Graph, NodeId, OpKind};
use nm_core::sparsity::{prune_magnitude, Nm};
use nm_core::Result;

/// Prunes every layer selected by `select` to the `nm` pattern in place,
/// returning the pruned node ids.
///
/// # Errors
/// Propagates shape errors when a selected layer's inner dimension is not
/// a multiple of M — selectors should avoid such layers (see
/// [`resnet_policy`] / [`vit_ff_policy`]).
pub fn prune_graph<F>(graph: &mut Graph, nm: Nm, mut select: F) -> Result<Vec<NodeId>>
where
    F: FnMut(NodeId, &OpKind) -> bool,
{
    let ids: Vec<NodeId> = (0..graph.nodes().len())
        .filter(|&id| select(id, &graph.node(id).op))
        .collect();
    for &id in &ids {
        let node = graph.node_mut(id);
        match &mut node.op {
            OpKind::Conv2d(l) => {
                let (rows, cols) = (l.geom.k, l.geom.patch_len());
                prune_magnitude(&mut l.weights, rows, cols, nm)?;
            }
            OpKind::Linear(l) => {
                let (rows, cols) = (l.geom.k, l.geom.c);
                prune_magnitude(&mut l.weights, rows, cols, nm)?;
            }
            _ => {}
        }
    }
    Ok(ids)
}

/// The paper's ResNet policy: prune non-pointwise convolutions whose
/// channel count divides the pattern (the 3-channel stem stays dense).
pub fn resnet_policy(nm: Nm) -> impl FnMut(NodeId, &OpKind) -> bool {
    move |_, op| match op {
        OpKind::Conv2d(l) => !l.geom.is_pointwise() && l.geom.patch_len() % nm.m() == 0,
        _ => false,
    }
}

/// The paper's ViT policy: prune feed-forward linear layers (identified
/// as Linear nodes whose input dimension divides M and whose output
/// width is even — the classifier head's small K is excluded by the
/// `k_min` threshold).
pub fn vit_ff_policy(nm: Nm, k_min: usize) -> impl FnMut(NodeId, &OpKind) -> bool {
    move |_, op| match op {
        OpKind::Linear(l) => l.geom.c % nm.m() == 0 && l.geom.k % 2 == 0 && l.geom.k >= k_min,
        _ => false,
    }
}

/// The default per-channel sparsity ladder, dense first.
pub const CHANNEL_LADDER: [Option<Nm>; 4] = [
    None,
    Some(Nm::ONE_OF_FOUR),
    Some(Nm::ONE_OF_EIGHT),
    Some(Nm::ONE_OF_SIXTEEN),
];

/// Assigns one pattern per row (= output channel) of a dense weight
/// matrix so the overall kept density drops to `target_density` while
/// losing as little L1 weight mass as possible — the accuracy proxy for
/// the paper's per-channel future-work study (training is out of scope;
/// magnitude mass is the standard saliency stand-in).
///
/// Greedy: repeatedly take the (row, next-ladder-level) step with the
/// least mass lost per additionally dropped weight until the target is
/// reached or no step remains. Ladder levels whose M does not divide
/// `cols` are skipped.
///
/// # Errors
/// [`nm_core::Error::ShapeMismatch`] if the buffer length is not
/// `rows * cols`.
///
/// # Example
/// ```
/// use nm_nn::prune::assign_channel_patterns;
/// # fn main() -> Result<(), nm_core::Error> {
/// // Channel 0 carries most of the mass; channels 1-3 are near-zero.
/// let mut dense = vec![1i8; 4 * 32];
/// for v in &mut dense[..32] { *v = 90; }
/// let patterns = assign_channel_patterns(&dense, 4, 32, 0.5)?;
/// assert_eq!(patterns[0], None); // high-mass channel stays dense
/// assert!(patterns[1..].iter().all(|p| p.is_some()));
/// # Ok(())
/// # }
/// ```
pub fn assign_channel_patterns(
    dense: &[i8],
    rows: usize,
    cols: usize,
    target_density: f64,
) -> Result<Vec<Option<Nm>>> {
    if dense.len() != rows * cols {
        return Err(nm_core::Error::ShapeMismatch(format!(
            "buffer has {} elements, expected {rows}x{cols}",
            dense.len()
        )));
    }
    // Feasible ladder levels for this column count.
    let ladder: Vec<Option<Nm>> = CHANNEL_LADDER
        .iter()
        .copied()
        .filter(|p| p.is_none_or(|nm| cols.is_multiple_of(nm.m())))
        .collect();
    // Per row and level: kept mass (sum of |top-n per block|) and density.
    let mut mass = vec![vec![0.0f64; ladder.len()]; rows];
    for (row, mr) in mass.iter_mut().enumerate() {
        let r = &dense[row * cols..(row + 1) * cols];
        for (lvl, &pattern) in ladder.iter().enumerate() {
            mr[lvl] = match pattern {
                None => r.iter().map(|&v| f64::from((i32::from(v)).abs())).sum(),
                Some(nm) => r
                    .chunks(nm.m())
                    .map(|block| {
                        let mut mags: Vec<i32> =
                            block.iter().map(|&v| i32::from(v).abs()).collect();
                        mags.sort_unstable_by(|a, b| b.cmp(a));
                        mags.iter().take(nm.n()).map(|&m| f64::from(m)).sum::<f64>()
                    })
                    .sum(),
            };
        }
    }
    let density_of = |p: Option<Nm>| p.map_or(1.0, |nm| nm.density());
    let mut levels = vec![0usize; rows];
    let mut kept_rows: f64 = rows as f64; // in units of rows (each row weighs cols)
    while kept_rows / rows as f64 > target_density {
        // Cheapest next step in mass lost per dropped weight.
        let mut best: Option<(usize, f64)> = None;
        for row in 0..rows {
            let next = levels[row] + 1;
            if next >= ladder.len() {
                continue;
            }
            let dropped = density_of(ladder[levels[row]]) - density_of(ladder[next]);
            let lost = mass[row][levels[row]] - mass[row][next];
            let cost = lost / (dropped * cols as f64).max(1.0);
            if best.is_none_or(|(_, c)| cost < c) {
                best = Some((row, cost));
            }
        }
        let Some((row, _)) = best else { break };
        kept_rows -= density_of(ladder[levels[row]]) - density_of(ladder[levels[row] + 1]);
        levels[row] += 1;
    }
    Ok(levels.iter().map(|&l| ladder[l]).collect())
}

/// Kept fraction of a per-channel assignment (dense rows count fully).
pub fn channel_density(patterns: &[Option<Nm>]) -> f64 {
    if patterns.is_empty() {
        return 1.0;
    }
    patterns
        .iter()
        .map(|p| p.map_or(1.0, |nm| nm.density()))
        .sum::<f64>()
        / patterns.len() as f64
}

/// Fraction of zero weights across all Conv/Linear layers (attention
/// projections included via their inner layers).
pub fn weight_sparsity(graph: &Graph) -> f64 {
    let mut zeros = 0usize;
    let mut total = 0usize;
    for node in graph.nodes() {
        let ws: Vec<&[i8]> = match &node.op {
            OpKind::Conv2d(l) => vec![&l.weights],
            OpKind::Linear(l) => vec![&l.weights],
            OpKind::Attention(a) => vec![&a.qkv.weights, &a.proj.weights],
            _ => vec![],
        };
        for w in ws {
            zeros += w.iter().filter(|&&v| v == 0).count();
            total += w.len();
        }
    }
    if total == 0 {
        0.0
    } else {
        zeros as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::layer::{ConvLayer, LinearLayer};
    use crate::rng::XorShift;
    use nm_core::quant::Requant;
    use nm_core::{ConvGeom, FcGeom};

    fn toy_graph() -> Graph {
        let mut rng = XorShift::new(3);
        let mut b = GraphBuilder::new(&[4, 4, 16]);
        let g3 = ConvGeom::square(16, 16, 4, 3, 1, 1).unwrap();
        let c3 = ConvLayer::new(
            g3,
            rng.fill_weights(g3.weight_elems(), 30),
            Requant::IDENTITY,
        )
        .unwrap();
        let g1 = ConvGeom::square(16, 16, 4, 1, 1, 0).unwrap();
        let c1 = ConvLayer::new(
            g1,
            rng.fill_weights(g1.weight_elems(), 30),
            Requant::IDENTITY,
        )
        .unwrap();
        let fc = LinearLayer::new(
            FcGeom::new(16, 10).unwrap(),
            rng.fill_weights(160, 30),
            Requant::IDENTITY,
        )
        .unwrap();
        let x = b.conv(b.input(), c3).unwrap();
        let x = b.conv(x, c1).unwrap();
        let x = b.global_avg_pool(x).unwrap();
        let x = b.linear(x, fc).unwrap();
        b.finish(x).unwrap()
    }

    #[test]
    fn resnet_policy_prunes_only_3x3() {
        let mut g = toy_graph();
        let nm = Nm::ONE_OF_EIGHT;
        let pruned = prune_graph(&mut g, nm, resnet_policy(nm)).unwrap();
        assert_eq!(pruned.len(), 1);
        // The 3x3 conv satisfies the pattern now.
        if let OpKind::Conv2d(l) = &g.node(pruned[0]).op {
            assert_eq!(l.detect_sparsity(), Some(nm));
            assert!(!l.geom.is_pointwise());
        } else {
            panic!("expected conv");
        }
        // The pointwise conv is untouched (dense).
        let pw = g
            .nodes()
            .iter()
            .find_map(|n| match &n.op {
                OpKind::Conv2d(l) if l.geom.is_pointwise() => Some(l),
                _ => None,
            })
            .unwrap();
        assert_eq!(pw.detect_sparsity(), None);
    }

    #[test]
    fn vit_policy_excludes_small_head() {
        let mut rng = XorShift::new(4);
        let mut b = GraphBuilder::new(&[2, 16]);
        let ff = LinearLayer::new(
            FcGeom::new(16, 64).unwrap(),
            rng.fill_weights(1024, 30),
            Requant::IDENTITY,
        )
        .unwrap();
        let head = LinearLayer::new(
            FcGeom::new(64, 10).unwrap(),
            rng.fill_weights(640, 30),
            Requant::IDENTITY,
        )
        .unwrap();
        let x = b.linear(b.input(), ff).unwrap();
        let x = b.linear(x, head).unwrap();
        let mut g = b.finish(x).unwrap();
        let nm = Nm::ONE_OF_FOUR;
        let pruned = prune_graph(&mut g, nm, vit_ff_policy(nm, 32)).unwrap();
        assert_eq!(pruned.len(), 1);
    }

    #[test]
    fn channel_assignment_hits_density_target() {
        let mut rng = XorShift::new(11);
        let dense = rng.fill_weights(16 * 64, 40);
        for target in [1.0, 0.5, 0.25, 0.1, 1.0 / 16.0] {
            let p = assign_channel_patterns(&dense, 16, 64, target).unwrap();
            let d = channel_density(&p);
            assert!(
                d <= target + 1e-9 || target < 1.0 / 16.0,
                "target {target} got {d}"
            );
            // Never sparser than one ladder step below the target.
            assert!(d >= target / 4.0 - 1e-9, "target {target} got {d}");
        }
    }

    #[test]
    fn channel_assignment_protects_high_mass_rows() {
        // Row 0: large weights everywhere; rows 1-3: tiny weights.
        let mut dense = vec![1i8; 4 * 32];
        for v in &mut dense[..32] {
            *v = 90;
        }
        let p = assign_channel_patterns(&dense, 4, 32, 0.5).unwrap();
        assert_eq!(p[0], None, "high-mass row should stay dense: {p:?}");
        assert!(p[1..].iter().all(|x| x.is_some()));
    }

    #[test]
    fn channel_assignment_skips_indivisible_levels() {
        // cols = 12: only 1:4 is feasible.
        let dense = vec![1i8; 2 * 12];
        let p = assign_channel_patterns(&dense, 2, 12, 0.0).unwrap();
        assert!(p.iter().all(|&x| x == Some(Nm::ONE_OF_FOUR)), "{p:?}");
    }

    #[test]
    fn channel_assignment_rejects_bad_shape() {
        assert!(assign_channel_patterns(&[0i8; 10], 2, 8, 0.5).is_err());
    }

    #[test]
    fn channel_density_of_uniform_ladder() {
        assert_eq!(channel_density(&[]), 1.0);
        assert_eq!(channel_density(&[None, None]), 1.0);
        let p = [Some(Nm::ONE_OF_FOUR), None];
        assert!((channel_density(&p) - 0.625).abs() < 1e-12);
    }

    #[test]
    fn sparsity_metric_moves_with_pruning() {
        let mut g = toy_graph();
        let before = weight_sparsity(&g);
        let nm = Nm::ONE_OF_SIXTEEN;
        prune_graph(&mut g, nm, resnet_policy(nm)).unwrap();
        let after = weight_sparsity(&g);
        assert!(after > before);
        // 3x3 conv dominates this toy graph's weights; random weights
        // already contain some zeros, so check the delta is a large
        // fraction of the 15/16 * (3x3 share) upper bound.
        let share = (16 * 16 * 9) as f64 / g.params() as f64;
        assert!(
            after - before > 0.6 * 0.9375 * share,
            "delta {}",
            after - before
        );
    }
}
