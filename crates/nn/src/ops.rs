//! Int8 implementations of the non-matmul operators.
//!
//! These layers are outside the paper's contribution (its kernels cover
//! convolutions and FC layers); they exist so complete networks execute
//! deterministically. Numerical conventions follow common int8 inference
//! practice (Deeploy-style): integer accumulation, shift-based rescaling,
//! lookup tables for GELU.

use nm_core::quant::{clip_i8, Requant};
use nm_core::Tensor;

/// Elementwise ReLU.
pub fn relu(x: &Tensor<i8>) -> Tensor<i8> {
    let data = x.data().iter().map(|&v| v.max(0)).collect();
    Tensor::from_vec(x.shape(), data).expect("shape preserved")
}

/// Elementwise saturating add of two same-shape tensors (residual
/// connections; both inputs assumed to share a scale).
///
/// # Panics
/// Panics if shapes differ.
pub fn add(a: &Tensor<i8>, b: &Tensor<i8>) -> Tensor<i8> {
    assert_eq!(a.shape(), b.shape(), "residual add needs matching shapes");
    let data = a
        .data()
        .iter()
        .zip(b.data())
        .map(|(&x, &y)| clip_i8(i32::from(x) + i32::from(y)))
        .collect();
    Tensor::from_vec(a.shape(), data).expect("shape preserved")
}

/// `k x k` max pooling with stride `s` over an HWC tensor.
///
/// # Panics
/// Panics if the input is not 3-D or smaller than the window.
pub fn max_pool(x: &Tensor<i8>, k: usize, s: usize) -> Tensor<i8> {
    pool(x, k, s, |vals| vals.iter().copied().max().unwrap_or(0))
}

/// `k x k` average pooling with stride `s` (integer mean, round to
/// nearest).
///
/// # Panics
/// Panics if the input is not 3-D or smaller than the window.
pub fn avg_pool(x: &Tensor<i8>, k: usize, s: usize) -> Tensor<i8> {
    let n = (k * k) as i32;
    pool(x, k, s, move |vals| {
        let sum: i32 = vals.iter().map(|&v| i32::from(v)).sum();
        clip_i8((sum + n / 2).div_euclid(n))
    })
}

fn pool(x: &Tensor<i8>, k: usize, s: usize, f: impl Fn(&[i8]) -> i8) -> Tensor<i8> {
    let shape = x.shape();
    assert_eq!(shape.len(), 3, "pooling expects HWC");
    let (h, w, c) = (shape[0], shape[1], shape[2]);
    assert!(h >= k && w >= k, "input smaller than pooling window");
    let (oh, ow) = ((h - k) / s + 1, (w - k) / s + 1);
    let mut out = Tensor::<i8>::zeros(&[oh, ow, c]);
    let mut vals = Vec::with_capacity(k * k);
    for y in 0..oh {
        for xo in 0..ow {
            for ch in 0..c {
                vals.clear();
                for ky in 0..k {
                    for kx in 0..k {
                        vals.push(*x.at(&[y * s + ky, xo * s + kx, ch]));
                    }
                }
                *out.at_mut(&[y, xo, ch]) = f(&vals);
            }
        }
    }
    out
}

/// Global average pooling: HWC → C (integer mean).
///
/// # Panics
/// Panics if the input is not 3-D.
pub fn global_avg_pool(x: &Tensor<i8>) -> Tensor<i8> {
    let shape = x.shape();
    assert_eq!(shape.len(), 3, "global pooling expects HWC");
    let (h, w, c) = (shape[0], shape[1], shape[2]);
    let n = (h * w) as i32;
    let mut out = Tensor::<i8>::zeros(&[c]);
    for ch in 0..c {
        let mut sum = 0i32;
        for y in 0..h {
            for xo in 0..w {
                sum += i32::from(*x.at(&[y, xo, ch]));
            }
        }
        out.data_mut()[ch] = clip_i8((sum + n / 2).div_euclid(n));
    }
    out
}

/// Row-wise integer LayerNorm over the last axis: subtract the mean,
/// scale by the quantized reciprocal standard deviation (computed in
/// f32, applied in fixed point — the hybrid Deeploy uses).
pub fn layer_norm(x: &Tensor<i8>) -> Tensor<i8> {
    let shape = x.shape().to_vec();
    let d = *shape.last().expect("layernorm needs at least 1-D");
    let rows = x.len() / d;
    let mut out = vec![0i8; x.len()];
    for r in 0..rows {
        let row = &x.data()[r * d..(r + 1) * d];
        let mean: i32 = {
            let s: i32 = row.iter().map(|&v| i32::from(v)).sum();
            (s + (d as i32) / 2).div_euclid(d as i32)
        };
        let var: f64 = row
            .iter()
            .map(|&v| {
                let diff = f64::from(i32::from(v) - mean);
                diff * diff
            })
            .sum::<f64>()
            / d as f64;
        // Fixed-point reciprocal std scaled to map one sigma to ~32.
        let inv_std_q = (32.0 / (var.sqrt() + 1e-3)).min(127.0);
        let mult = (inv_std_q * 256.0) as i32;
        for (i, &v) in row.iter().enumerate() {
            out[r * d + i] = clip_i8(((i32::from(v) - mean) * mult) >> 8);
        }
    }
    Tensor::from_vec(&shape, out).expect("shape preserved")
}

/// Row-wise int8 softmax over the last axis: subtract the max, exponential
/// via a 256-entry LUT in Q16, normalize so outputs sum to ≈127.
pub fn softmax(x: &Tensor<i8>) -> Tensor<i8> {
    let shape = x.shape().to_vec();
    let d = *shape.last().expect("softmax needs at least 1-D");
    let rows = x.len() / d;
    let mut out = vec![0i8; x.len()];
    // LUT over the shifted value (v - max) in [-255, 0]: exp(v/16) in Q16.
    for r in 0..rows {
        let row = &x.data()[r * d..(r + 1) * d];
        let max = row.iter().copied().max().unwrap_or(0);
        let exps: Vec<i64> = row
            .iter()
            .map(|&v| exp_q16(i32::from(v) - i32::from(max)))
            .collect();
        let sum: i64 = exps.iter().sum::<i64>().max(1);
        for (i, &e) in exps.iter().enumerate() {
            out[r * d + i] = clip_i8(((e * 127 + sum / 2) / sum) as i32);
        }
    }
    Tensor::from_vec(&shape, out).expect("shape preserved")
}

/// `exp(v / 16)` in Q16 for `v <= 0` (clamped below -128).
fn exp_q16(v: i32) -> i64 {
    let v = v.max(-128);
    let x = f64::from(v) / 16.0;
    (x.exp() * 65536.0) as i64
}

/// Elementwise int8 GELU with an implicit input scale of 1/16
/// (a 256-entry LUT on real deployments).
pub fn gelu(x: &Tensor<i8>) -> Tensor<i8> {
    let data = x.data().iter().map(|&v| gelu_lut(v)).collect();
    Tensor::from_vec(x.shape(), data).expect("shape preserved")
}

fn gelu_lut(v: i8) -> i8 {
    let x = f64::from(v) / 16.0;
    let g = 0.5 * x * (1.0 + (x * 0.797_884_560_8 * (1.0 + 0.044_715 * x * x)).tanh());
    clip_i8((g * 16.0).round() as i32)
}

/// Int8 matrix multiply `A (m x k) · B (k x n)` with requantization.
pub fn matmul(a: &[i8], b: &[i8], m: usize, k: usize, n: usize, rq: Requant) -> Vec<i8> {
    assert_eq!(a.len(), m * k);
    assert_eq!(b.len(), k * n);
    let mut out = vec![0i8; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0i32;
            for p in 0..k {
                acc = acc.wrapping_add(i32::from(a[i * k + p]) * i32::from(b[p * n + j]));
            }
            out[i * n + j] = rq.apply(acc);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_zeroes_negatives() {
        let t = Tensor::from_vec(&[4], vec![-3i8, 0, 5, -128]).unwrap();
        assert_eq!(relu(&t).data(), &[0, 0, 5, 0]);
    }

    #[test]
    fn add_saturates() {
        let a = Tensor::from_vec(&[2], vec![100i8, -100]).unwrap();
        let b = Tensor::from_vec(&[2], vec![100i8, -100]).unwrap();
        assert_eq!(add(&a, &b).data(), &[127, -128]);
    }

    #[test]
    fn max_pool_2x2() {
        let t = Tensor::from_vec(&[2, 2, 1], vec![1i8, 5, 3, -2]).unwrap();
        let p = max_pool(&t, 2, 2);
        assert_eq!(p.shape(), &[1, 1, 1]);
        assert_eq!(p.data(), &[5]);
    }

    #[test]
    fn avg_pool_rounds_to_nearest() {
        let t = Tensor::from_vec(&[2, 2, 1], vec![1i8, 2, 3, 4]).unwrap();
        assert_eq!(avg_pool(&t, 2, 2).data(), &[3]); // 10/4 = 2.5 -> 3
    }

    #[test]
    fn global_avg_pool_per_channel() {
        let t = Tensor::from_vec(&[1, 2, 2], vec![10i8, -4, 20, -8]).unwrap();
        assert_eq!(global_avg_pool(&t).data(), &[15, -6]);
    }

    #[test]
    fn layer_norm_centers_rows() {
        let t = Tensor::from_vec(&[2, 4], vec![10i8, 10, 10, 10, 0, 20, 40, 60]).unwrap();
        let n = layer_norm(&t);
        // Constant row -> all zeros; varying row -> centered, monotone.
        assert_eq!(&n.data()[..4], &[0, 0, 0, 0]);
        let row = &n.data()[4..];
        assert!(row[0] < row[1] && row[1] < row[2] && row[2] < row[3]);
        let sum: i32 = row.iter().map(|&v| i32::from(v)).sum();
        assert!(sum.abs() <= 4, "row roughly centered, sum={sum}");
    }

    #[test]
    fn softmax_rows_sum_to_127ish_and_order_preserved() {
        let t = Tensor::from_vec(&[1, 4], vec![0i8, 16, 32, 48]).unwrap();
        let s = softmax(&t);
        let sum: i32 = s.data().iter().map(|&v| i32::from(v)).sum();
        assert!((120..=134).contains(&sum), "sum {sum}");
        assert!(s.data()[0] < s.data()[3]);
    }

    #[test]
    fn softmax_uniform_is_uniform() {
        let t = Tensor::from_vec(&[1, 4], vec![5i8; 4]).unwrap();
        let s = softmax(&t);
        assert!(s.data().windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn gelu_fixes_zero_and_is_monotone_above() {
        let t = Tensor::from_vec(&[3], vec![0i8, 16, 32]).unwrap();
        let g = gelu(&t);
        assert_eq!(g.data()[0], 0);
        assert!(g.data()[1] < g.data()[2]);
        // gelu(1.0) ~ 0.841 -> ~13 at scale 16
        assert!((12..=14).contains(&g.data()[1]));
    }

    #[test]
    fn matmul_small_identity() {
        let a = vec![1i8, 2, 3, 4]; // 2x2
        let id = vec![1i8, 0, 0, 1];
        assert_eq!(matmul(&a, &id, 2, 2, 2, Requant::IDENTITY), a);
    }
}
