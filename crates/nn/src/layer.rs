//! Parameterized layers: weights + geometry + requantization.

use nm_core::quant::Requant;
use nm_core::sparsity::{check_pattern, Nm};
use nm_core::{ConvGeom, Error, FcGeom, Result};

/// A convolution layer with int8 weights in `(K, FY*FX*C)` row-major
/// order (each row one filter, channel-minor — im2col order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConvLayer {
    /// Geometry.
    pub geom: ConvGeom,
    /// Dense (possibly N:M-compliant) weights.
    pub weights: Vec<i8>,
    /// Output requantization.
    pub requant: Requant,
}

impl ConvLayer {
    /// Creates a conv layer, validating the weight length.
    ///
    /// # Errors
    /// [`Error::ShapeMismatch`] if `weights.len() != K * FY*FX*C`.
    pub fn new(geom: ConvGeom, weights: Vec<i8>, requant: Requant) -> Result<Self> {
        if weights.len() != geom.weight_elems() {
            return Err(Error::ShapeMismatch(format!(
                "conv weights {} != {}",
                weights.len(),
                geom.weight_elems()
            )));
        }
        Ok(ConvLayer {
            geom,
            weights,
            requant,
        })
    }

    /// Detects the strongest supported N:M pattern the weights satisfy
    /// (the MATCH pattern-recognition rule: Sec. 4.4(1)); `None` if dense.
    pub fn detect_sparsity(&self) -> Option<Nm> {
        detect(&self.weights, self.geom.k, self.geom.patch_len())
    }
}

/// A linear (fully-connected) layer with `(K, C)` row-major weights.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinearLayer {
    /// Geometry.
    pub geom: FcGeom,
    /// Dense (possibly N:M-compliant) weights.
    pub weights: Vec<i8>,
    /// Output requantization.
    pub requant: Requant,
}

impl LinearLayer {
    /// Creates a linear layer, validating the weight length.
    ///
    /// # Errors
    /// [`Error::ShapeMismatch`] if `weights.len() != K * C`.
    pub fn new(geom: FcGeom, weights: Vec<i8>, requant: Requant) -> Result<Self> {
        if weights.len() != geom.weight_elems() {
            return Err(Error::ShapeMismatch(format!(
                "linear weights {} != {}",
                weights.len(),
                geom.weight_elems()
            )));
        }
        Ok(LinearLayer {
            geom,
            weights,
            requant,
        })
    }

    /// Detects the strongest supported N:M pattern; `None` if dense.
    pub fn detect_sparsity(&self) -> Option<Nm> {
        detect(&self.weights, self.geom.k, self.geom.c)
    }
}

/// Finds the sparsest kernel-supported pattern (1:16 ≻ 1:8 ≻ 1:4) that
/// the matrix satisfies.
fn detect(weights: &[i8], rows: usize, cols: usize) -> Option<Nm> {
    [Nm::ONE_OF_SIXTEEN, Nm::ONE_OF_EIGHT, Nm::ONE_OF_FOUR]
        .into_iter()
        .find(|&nm| cols.is_multiple_of(nm.m()) && check_pattern(weights, rows, cols, nm).is_ok())
}

/// Multi-head self-attention (paper Sec. 5.1 runs these layers through
/// Deeploy and leaves them dense; we model them as one composite op).
///
/// Holds a fused QKV projection (`D -> 3D`) and the output projection
/// (`D -> D`). Head dimension is `D / heads`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttentionLayer {
    /// Embedding dimension D.
    pub dim: usize,
    /// Number of heads (must divide D).
    pub heads: usize,
    /// Fused QKV projection.
    pub qkv: LinearLayer,
    /// Output projection.
    pub proj: LinearLayer,
    /// Requantization of the attention-score matmul (Q·Kᵀ).
    pub score_requant: Requant,
    /// Requantization of the context matmul (P·V).
    pub context_requant: Requant,
}

impl AttentionLayer {
    /// Creates an attention layer, validating projection shapes.
    ///
    /// # Errors
    /// [`Error::ShapeMismatch`] if `heads` does not divide `dim` or the
    /// projections are not `D -> 3D` and `D -> D`.
    pub fn new(
        dim: usize,
        heads: usize,
        qkv: LinearLayer,
        proj: LinearLayer,
        score_requant: Requant,
        context_requant: Requant,
    ) -> Result<Self> {
        if heads == 0 || !dim.is_multiple_of(heads) {
            return Err(Error::ShapeMismatch(format!(
                "heads {heads} must divide dim {dim}"
            )));
        }
        if qkv.geom.c != dim || qkv.geom.k != 3 * dim {
            return Err(Error::ShapeMismatch(format!(
                "qkv projection is {}x{}, expected {dim}x{}",
                qkv.geom.c,
                qkv.geom.k,
                3 * dim
            )));
        }
        if proj.geom.c != dim || proj.geom.k != dim {
            return Err(Error::ShapeMismatch(format!(
                "output projection is {}x{}, expected {dim}x{dim}",
                proj.geom.c, proj.geom.k
            )));
        }
        Ok(AttentionLayer {
            dim,
            heads,
            qkv,
            proj,
            score_requant,
            context_requant,
        })
    }

    /// Head dimension `D / heads`.
    pub fn head_dim(&self) -> usize {
        self.dim / self.heads
    }

    /// Dense MACs for a sequence of `t` tokens: QKV + scores + context +
    /// projection.
    pub fn macs(&self, t: usize) -> usize {
        let d = self.dim;
        t * d * 3 * d          // QKV
            + self.heads * t * t * self.head_dim()   // Q·Kᵀ
            + self.heads * t * t * self.head_dim()   // P·V
            + t * d * d // proj
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nm_core::sparsity::prune_magnitude;

    #[test]
    fn conv_layer_validates_weight_count() {
        let geom = ConvGeom::square(4, 2, 4, 3, 1, 1).unwrap();
        assert!(ConvLayer::new(geom, vec![0; 10], Requant::IDENTITY).is_err());
        assert!(ConvLayer::new(geom, vec![0; geom.weight_elems()], Requant::IDENTITY).is_ok());
    }

    #[test]
    fn detect_prefers_sparsest_pattern() {
        let geom = FcGeom::new(32, 2).unwrap();
        let mut w = vec![0i8; 64];
        w[0] = 1;
        w[16] = 2;
        w[32] = 3;
        w[48] = 4; // satisfies 1:16 (and so 1:8, 1:4)
        let layer = LinearLayer::new(geom, w.clone(), Requant::IDENTITY).unwrap();
        assert_eq!(layer.detect_sparsity(), Some(Nm::ONE_OF_SIXTEEN));

        let mut w8 = vec![0i8; 64];
        prune_magnitude(&mut w8, 2, 32, Nm::ONE_OF_EIGHT).unwrap();
        // all-zero satisfies 1:16 too; make it a genuine 1:8.
        w8[0] = 1;
        w8[8] = 2;
        let layer = LinearLayer::new(geom, w8, Requant::IDENTITY).unwrap();
        assert_eq!(layer.detect_sparsity(), Some(Nm::ONE_OF_EIGHT));
    }

    #[test]
    fn dense_weights_detect_none() {
        let geom = FcGeom::new(16, 2).unwrap();
        let w: Vec<i8> = (1..=32).map(|i| i as i8).collect();
        let layer = LinearLayer::new(geom, w, Requant::IDENTITY).unwrap();
        assert_eq!(layer.detect_sparsity(), None);
    }

    #[test]
    fn attention_shape_checks() {
        let d = 8;
        let qkv = LinearLayer::new(
            FcGeom::new(d, 3 * d).unwrap(),
            vec![0; d * 3 * d],
            Requant::IDENTITY,
        )
        .unwrap();
        let proj = LinearLayer::new(
            FcGeom::new(d, d).unwrap(),
            vec![0; d * d],
            Requant::IDENTITY,
        )
        .unwrap();
        let att = AttentionLayer::new(
            d,
            2,
            qkv.clone(),
            proj.clone(),
            Requant::IDENTITY,
            Requant::IDENTITY,
        )
        .unwrap();
        assert_eq!(att.head_dim(), 4);
        assert!(
            AttentionLayer::new(d, 3, qkv, proj, Requant::IDENTITY, Requant::IDENTITY).is_err()
        );
    }

    #[test]
    fn attention_macs_formula() {
        let d = 4;
        let qkv = LinearLayer::new(
            FcGeom::new(d, 3 * d).unwrap(),
            vec![0; 3 * d * d],
            Requant::IDENTITY,
        )
        .unwrap();
        let proj = LinearLayer::new(
            FcGeom::new(d, d).unwrap(),
            vec![0; d * d],
            Requant::IDENTITY,
        )
        .unwrap();
        let att =
            AttentionLayer::new(d, 1, qkv, proj, Requant::IDENTITY, Requant::IDENTITY).unwrap();
        let t = 3;
        assert_eq!(att.macs(t), t * d * 3 * d + 2 * t * t * d + t * d * d);
    }
}
