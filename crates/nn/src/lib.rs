//! # nm-nn
//!
//! A small DNN graph representation with an int8 reference executor and
//! N:M pruning, substituting for the PyTorch + Brevitas flow the paper
//! uses to produce its quantized, pruned ResNet18 and ViT models.
//!
//! * [`layer`] — parameterized layers (convolution, linear, attention)
//!   holding int8 weights and PULP-NN style requantization.
//! * [`graph`] — a builder-constructed DAG of [`graph::OpKind`] nodes
//!   with shape inference.
//! * [`exec`] — the reference executor: deterministic int8 inference,
//!   used to verify that compiled/sparse execution is bit-identical to
//!   dense execution of the same (masked) weights.
//! * [`prune`] — magnitude N:M pruning over selected layers (the paper
//!   prunes 3×3 convolutions in ResNet18 and the feed-forward linear
//!   layers in the ViT).
//! * [`rng`] — a deterministic xorshift generator for synthetic weights
//!   (the substitution for trained checkpoints; see DESIGN.md).

// Indexed loops in this crate deliberately mirror the register-level
// structure of the kernels / math notation of the paper.
#![allow(clippy::needless_range_loop)]

pub mod exec;
pub mod graph;
pub mod layer;
pub mod ops;
pub mod prune;
pub mod rng;

pub use exec::execute;
pub use graph::{Graph, GraphBuilder, NodeId, OpKind};
pub use layer::{AttentionLayer, ConvLayer, LinearLayer};
