//! Deterministic xorshift64* generator for synthetic weights and inputs.
//!
//! The paper's models are trained on CIFAR; we substitute synthetic
//! weights of identical geometry (see DESIGN.md). A tiny local generator
//! keeps the workspace's results reproducible without threading `rand`
//! through every crate.

/// A deterministic xorshift64* stream.
#[derive(Debug, Clone)]
pub struct XorShift {
    state: u64,
}

impl XorShift {
    /// Creates a generator; `seed` 0 is mapped to a fixed constant.
    pub fn new(seed: u64) -> Self {
        XorShift {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform int8 in `[-range, range]`.
    ///
    /// # Panics
    /// Panics if `range > 127` (the result would not fit in `i8`).
    pub fn next_i8(&mut self, range: u8) -> i8 {
        assert!(range <= 127, "range {range} exceeds i8");
        let span = 2 * u64::from(range) + 1;
        ((self.next_u64() % span) as i64 - i64::from(range)) as i8
    }

    /// Fills a weight buffer with small signed values (int8-quantized
    /// "Gaussian-ish" via sum of three uniforms).
    pub fn fill_weights(&mut self, n: usize, range: u8) -> Vec<i8> {
        (0..n)
            .map(|_| {
                let s = i32::from(self.next_i8(range)) + i32::from(self.next_i8(range))
                    - i32::from(self.next_i8(range));
                s.clamp(-127, 127) as i8
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = XorShift::new(42);
        let mut b = XorShift::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn i8_stays_in_range() {
        let mut r = XorShift::new(7);
        for _ in 0..1000 {
            let v = r.next_i8(20);
            assert!((-20..=20).contains(&v));
        }
        // Wide ranges must not overflow (regression: span > 127 used to
        // wrap through i8 in release and panic in debug).
        for _ in 0..1000 {
            let v = r.next_i8(127);
            assert!((-127..=127).contains(&v));
        }
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut r = XorShift::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn weights_are_not_all_zero() {
        let mut r = XorShift::new(3);
        let w = r.fill_weights(256, 30);
        assert!(w.iter().any(|&v| v != 0));
        assert!(w.iter().all(|&v| (-90..=90).contains(&v)));
    }
}
