//! SR-STE N:M sparse training (Zhou et al. 2021).
//!
//! Every step: recompute the N:M magnitude mask of the dense weights,
//! run forward/backward through the *masked* weights, and update the
//! dense weights with the straight-through gradient plus the
//! sparse-refinement term `λ · (1 − mask) ⊙ W`, which pushes pruned
//! weights toward zero so the mask stabilizes over training.

use crate::data::Dataset;
use crate::mlp::Mlp;
use nm_core::sparsity::Nm;

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Hidden width.
    pub hidden: usize,
    /// Epochs.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f32,
    /// SR-STE refinement strength λ.
    pub lambda: f32,
    /// Pattern (None = dense training).
    pub nm: Option<Nm>,
    /// Seed for init.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            hidden: 64,
            epochs: 30,
            lr: 0.02,
            lambda: 2e-4,
            nm: None,
            seed: 1,
        }
    }
}

/// The outcome of a training run.
#[derive(Debug, Clone)]
pub struct TrainResult {
    /// Test accuracy in `[0, 1]` (evaluated with masked weights).
    pub test_accuracy: f64,
    /// Final train loss.
    pub train_loss: f64,
    /// Effective sparsity of the first layer's masked weights.
    pub sparsity: f64,
}

/// N:M magnitude mask over a row-major matrix (1.0 keep, 0.0 prune).
fn nm_mask(w: &[f32], cols: usize, nm: Nm) -> Vec<f32> {
    let mut mask = vec![1.0f32; w.len()];
    let m = nm.m();
    debug_assert_eq!(cols % m, 0);
    for (bi, block) in w.chunks(m).enumerate() {
        let mut order: Vec<usize> = (0..m).collect();
        order.sort_by(|&a, &b| block[b].abs().partial_cmp(&block[a].abs()).unwrap());
        for &i in order.iter().skip(nm.n()) {
            mask[bi * m + i] = 0.0;
        }
    }
    mask
}

fn masked(w: &[f32], mask: &[f32]) -> Vec<f32> {
    w.iter().zip(mask).map(|(&a, &m)| a * m).collect()
}

/// Trains an MLP on `train`, evaluates on `test`.
///
/// With `cfg.nm == None` this is plain SGD; otherwise SR-STE with the
/// pattern applied to both weight matrices (the classifier head is small
/// but divisible in the proxy setup).
pub fn train(train_set: &Dataset, test_set: &Dataset, cfg: &TrainConfig) -> TrainResult {
    let mut mlp = Mlp::new(train_set.dim, cfg.hidden, train_set.classes, cfg.seed);
    let n = train_set.len();
    let mut last_loss = 0.0f64;
    for _epoch in 0..cfg.epochs {
        let mut loss_sum = 0.0f64;
        let mut grads = mlp.zero_grads();
        let batch = 16usize;
        for (i, start) in (0..n).step_by(batch).enumerate() {
            let end = (start + batch).min(n);
            // Recompute masks per step (SR-STE).
            let (m1, m2) = match cfg.nm {
                Some(nm) => (
                    nm_mask(&mlp.w1, mlp.dim, nm),
                    nm_mask(&mlp.w2, mlp.hidden, nm),
                ),
                None => (vec![1.0; mlp.w1.len()], vec![1.0; mlp.w2.len()]),
            };
            let w1 = masked(&mlp.w1, &m1);
            let w2 = masked(&mlp.w2, &m2);
            grads.w1.fill(0.0);
            grads.b1.fill(0.0);
            grads.w2.fill(0.0);
            grads.b2.fill(0.0);
            for s in start..end {
                let x = train_set.row(s);
                let (h, logits) = mlp.forward_with(&w1, &w2, x);
                let probs = Mlp::softmax(&logits);
                loss_sum += -f64::from(probs[train_set.y[s]].max(1e-9)).ln();
                mlp.backward_with(&w2, x, &h, &probs, train_set.y[s], &mut grads);
            }
            let scale = cfg.lr / (end - start) as f32;
            for (j, g) in grads.w1.iter().enumerate() {
                let refine = cfg.lambda * (1.0 - m1[j]) * mlp.w1[j];
                mlp.w1[j] -= scale * g + refine;
            }
            for (j, g) in grads.w2.iter().enumerate() {
                let refine = cfg.lambda * (1.0 - m2[j]) * mlp.w2[j];
                mlp.w2[j] -= scale * g + refine;
            }
            for (j, g) in grads.b1.iter().enumerate() {
                mlp.b1[j] -= scale * g;
            }
            for (j, g) in grads.b2.iter().enumerate() {
                mlp.b2[j] -= scale * g;
            }
            let _ = i;
        }
        last_loss = loss_sum / n as f64;
    }
    // Final masked evaluation (what gets deployed).
    let (m1, m2) = match cfg.nm {
        Some(nm) => (
            nm_mask(&mlp.w1, mlp.dim, nm),
            nm_mask(&mlp.w2, mlp.hidden, nm),
        ),
        None => (vec![1.0; mlp.w1.len()], vec![1.0; mlp.w2.len()]),
    };
    let w1 = masked(&mlp.w1, &m1);
    let w2 = masked(&mlp.w2, &m2);
    let mut correct = 0usize;
    for s in 0..test_set.len() {
        let (_, logits) = mlp.forward_with(&w1, &w2, test_set.row(s));
        let pred = logits
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap();
        if pred == test_set.y[s] {
            correct += 1;
        }
    }
    let sparsity = 1.0 - m1.iter().map(|&v| f64::from(v)).sum::<f64>() / m1.len() as f64;
    TrainResult {
        test_accuracy: correct as f64 / test_set.len() as f64,
        train_loss: last_loss,
        sparsity,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn datasets() -> (Dataset, Dataset) {
        Dataset::synthetic(600, 32, 4, 11).split(0.8)
    }

    #[test]
    fn dense_training_learns() {
        let (tr, te) = datasets();
        let r = train(
            &tr,
            &te,
            &TrainConfig {
                epochs: 20,
                ..Default::default()
            },
        );
        assert!(r.test_accuracy > 0.7, "accuracy {}", r.test_accuracy);
        assert_eq!(r.sparsity, 0.0);
    }

    #[test]
    fn srste_mask_has_exact_pattern() {
        let w: Vec<f32> = (0..32).map(|i| (i as f32 - 16.0) / 7.0).collect();
        let mask = nm_mask(&w, 32, Nm::ONE_OF_EIGHT);
        for block in mask.chunks(8) {
            assert_eq!(block.iter().filter(|&&v| v == 1.0).count(), 1);
        }
    }

    #[test]
    fn sparse_training_stays_close_to_dense() {
        let (tr, te) = datasets();
        let dense = train(
            &tr,
            &te,
            &TrainConfig {
                epochs: 20,
                ..Default::default()
            },
        );
        let sparse = train(
            &tr,
            &te,
            &TrainConfig {
                epochs: 20,
                nm: Some(Nm::ONE_OF_FOUR),
                ..Default::default()
            },
        );
        assert!((sparse.sparsity - 0.75).abs() < 1e-9);
        assert!(
            sparse.test_accuracy > dense.test_accuracy - 0.1,
            "dense {} sparse {}",
            dense.test_accuracy,
            sparse.test_accuracy
        );
    }

    #[test]
    fn loss_decreases_with_training() {
        let (tr, te) = datasets();
        let short = train(
            &tr,
            &te,
            &TrainConfig {
                epochs: 2,
                ..Default::default()
            },
        );
        let long = train(
            &tr,
            &te,
            &TrainConfig {
                epochs: 25,
                ..Default::default()
            },
        );
        assert!(long.train_loss < short.train_loss);
    }
}
