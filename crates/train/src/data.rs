//! Synthetic Gaussian-cluster classification data.

use nm_nn::rng::XorShift;

/// A labelled dataset: `n` rows of `dim` features.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Feature dimension.
    pub dim: usize,
    /// Flattened features, row-major.
    pub x: Vec<f32>,
    /// Class labels.
    pub y: Vec<usize>,
    /// Number of classes.
    pub classes: usize,
}

impl Dataset {
    /// Generates `n` samples from `classes` anisotropic Gaussian clusters
    /// with partially overlapping means (so the task is non-trivial but
    /// learnable — dense accuracy lands around 85–95 %).
    pub fn synthetic(n: usize, dim: usize, classes: usize, seed: u64) -> Self {
        let mut rng = XorShift::new(seed);
        // Cluster means on a noisy simplex.
        let means: Vec<Vec<f32>> = (0..classes)
            .map(|c| {
                (0..dim)
                    .map(|j| {
                        let base = if j % classes == c { 1.6 } else { 0.0 };
                        base + gaussian(&mut rng) * 0.3
                    })
                    .collect()
            })
            .collect();
        let mut x = Vec::with_capacity(n * dim);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let c = i % classes;
            y.push(c);
            for j in 0..dim {
                x.push(means[c][j] + gaussian(&mut rng));
            }
        }
        Dataset { dim, x, y, classes }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// One sample's features.
    pub fn row(&self, i: usize) -> &[f32] {
        &self.x[i * self.dim..(i + 1) * self.dim]
    }

    /// Splits into (train, test) at `ratio`.
    pub fn split(&self, ratio: f64) -> (Dataset, Dataset) {
        let n_train = (self.len() as f64 * ratio) as usize;
        let take = |range: std::ops::Range<usize>| Dataset {
            dim: self.dim,
            x: self.x[range.start * self.dim..range.end * self.dim].to_vec(),
            y: self.y[range.clone()].to_vec(),
            classes: self.classes,
        };
        (take(0..n_train), take(n_train..self.len()))
    }
}

/// Box–Muller standard normal.
fn gaussian(rng: &mut XorShift) -> f32 {
    let u1 = ((rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64).max(1e-12);
    let u2 = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
    ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_balanced() {
        let a = Dataset::synthetic(100, 8, 4, 42);
        let b = Dataset::synthetic(100, 8, 4, 42);
        assert_eq!(a.x, b.x);
        for c in 0..4 {
            assert_eq!(a.y.iter().filter(|&&y| y == c).count(), 25);
        }
    }

    #[test]
    fn split_partitions() {
        let d = Dataset::synthetic(100, 4, 2, 1);
        let (tr, te) = d.split(0.8);
        assert_eq!(tr.len(), 80);
        assert_eq!(te.len(), 20);
        assert_eq!(tr.row(0), d.row(0));
    }

    #[test]
    fn clusters_are_separable_on_average() {
        let d = Dataset::synthetic(400, 16, 4, 7);
        // Mean feature j%4==c should be larger for class c.
        let mut per_class_mean = [0f32; 4];
        for i in 0..d.len() {
            let c = d.y[i];
            let m: f32 = (0..d.dim)
                .filter(|j| j % 4 == c)
                .map(|j| d.row(i)[j])
                .sum::<f32>()
                / 4.0;
            per_class_mean[c] += m;
        }
        for c in 0..4 {
            assert!(per_class_mean[c] / 100.0 > 0.5, "class {c}");
        }
    }
}
