//! # nm-train
//!
//! A pure-Rust reproduction of the *training side* of the paper's
//! pipeline at proxy scale: the combined training-and-pruning scheme of
//! Zhou et al. 2021 (**SR-STE** — sparse-refined straight-through
//! estimator) applied to a small MLP on a synthetic classification task.
//!
//! The paper trains ResNet18/CIFAR-100 and ViT-S/CIFAR-10 for 200 GPU
//! epochs; that is substituted here (see DESIGN.md) by a task small
//! enough to train in seconds while exhibiting the paper's qualitative
//! accuracy result: **1:4 and 1:8 match the dense baseline, 1:16 loses
//! about a point**. EXPERIMENTS.md records our proxy numbers next to the
//! paper's Table 2 accuracies.

// Indexed loops in this crate deliberately mirror the register-level
// structure of the kernels / math notation of the paper.
#![allow(clippy::needless_range_loop)]

pub mod data;
pub mod mlp;
pub mod srste;

pub use data::Dataset;
pub use mlp::Mlp;
pub use srste::{train, TrainConfig, TrainResult};
