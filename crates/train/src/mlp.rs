//! A two-layer MLP with manual backpropagation (f32).

use nm_nn::rng::XorShift;

/// `dim → hidden (ReLU) → classes` with softmax cross-entropy.
#[derive(Debug, Clone)]
pub struct Mlp {
    /// Input dimension.
    pub dim: usize,
    /// Hidden width.
    pub hidden: usize,
    /// Output classes.
    pub classes: usize,
    /// First layer weights, `hidden x dim` row-major.
    pub w1: Vec<f32>,
    /// First layer bias.
    pub b1: Vec<f32>,
    /// Second layer weights, `classes x hidden`.
    pub w2: Vec<f32>,
    /// Second layer bias.
    pub b2: Vec<f32>,
}

/// Gradients matching [`Mlp`]'s parameters.
#[derive(Debug, Clone)]
pub struct Grads {
    /// d/dw1.
    pub w1: Vec<f32>,
    /// d/db1.
    pub b1: Vec<f32>,
    /// d/dw2.
    pub w2: Vec<f32>,
    /// d/db2.
    pub b2: Vec<f32>,
}

impl Mlp {
    /// He-style random initialization.
    pub fn new(dim: usize, hidden: usize, classes: usize, seed: u64) -> Self {
        let mut rng = XorShift::new(seed);
        let mut init = |n: usize, fan_in: usize| -> Vec<f32> {
            let scale = (2.0 / fan_in as f32).sqrt();
            (0..n)
                .map(|_| {
                    let u = (rng.next_u64() >> 11) as f32 / (1u64 << 53) as f32 - 0.5;
                    u * 2.0 * scale
                })
                .collect()
        };
        Mlp {
            dim,
            hidden,
            classes,
            w1: init(hidden * dim, dim),
            b1: vec![0.0; hidden],
            w2: init(classes * hidden, hidden),
            b2: vec![0.0; classes],
        }
    }

    /// Forward pass with explicit effective weights (the SR-STE trainer
    /// passes masked weights here). Returns (hidden activations, logits).
    pub fn forward_with(&self, w1: &[f32], w2: &[f32], x: &[f32]) -> (Vec<f32>, Vec<f32>) {
        let mut h = vec![0.0f32; self.hidden];
        for (i, hi) in h.iter_mut().enumerate() {
            let mut acc = self.b1[i];
            for j in 0..self.dim {
                acc += w1[i * self.dim + j] * x[j];
            }
            *hi = acc.max(0.0);
        }
        let mut logits = vec![0.0f32; self.classes];
        for (k, l) in logits.iter_mut().enumerate() {
            let mut acc = self.b2[k];
            for (i, &hi) in h.iter().enumerate() {
                acc += w2[k * self.hidden + i] * hi;
            }
            *l = acc;
        }
        (h, logits)
    }

    /// Softmax probabilities.
    pub fn softmax(logits: &[f32]) -> Vec<f32> {
        let max = logits.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
        let exps: Vec<f32> = logits.iter().map(|&l| (l - max).exp()).collect();
        let sum: f32 = exps.iter().sum();
        exps.iter().map(|&e| e / sum).collect()
    }

    /// Backward pass for one sample: cross-entropy gradient w.r.t. the
    /// *effective* weights (straight-through to the dense ones).
    pub fn backward_with(
        &self,
        w2: &[f32],
        x: &[f32],
        h: &[f32],
        probs: &[f32],
        label: usize,
        grads: &mut Grads,
    ) {
        let mut dlogits = probs.to_vec();
        dlogits[label] -= 1.0;
        let mut dh = vec![0.0f32; self.hidden];
        for k in 0..self.classes {
            grads.b2[k] += dlogits[k];
            for i in 0..self.hidden {
                grads.w2[k * self.hidden + i] += dlogits[k] * h[i];
                dh[i] += dlogits[k] * w2[k * self.hidden + i];
            }
        }
        for i in 0..self.hidden {
            if h[i] <= 0.0 {
                continue; // ReLU gate
            }
            grads.b1[i] += dh[i];
            for j in 0..self.dim {
                grads.w1[i * self.dim + j] += dh[i] * x[j];
            }
        }
    }

    /// Zeroed gradients.
    pub fn zero_grads(&self) -> Grads {
        Grads {
            w1: vec![0.0; self.w1.len()],
            b1: vec![0.0; self.b1.len()],
            w2: vec![0.0; self.w2.len()],
            b2: vec![0.0; self.b2.len()],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_is_a_distribution() {
        let p = Mlp::softmax(&[1.0, 2.0, 3.0]);
        let sum: f32 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let mlp = Mlp::new(3, 4, 2, 7);
        let x = [0.5f32, -1.0, 2.0];
        let label = 1;
        let loss = |m: &Mlp| {
            let (_, logits) = m.forward_with(&m.w1, &m.w2, &x);
            let p = Mlp::softmax(&logits);
            -p[label].ln()
        };
        let mut grads = mlp.zero_grads();
        let (h, logits) = mlp.forward_with(&mlp.w1, &mlp.w2, &x);
        let probs = Mlp::softmax(&logits);
        mlp.backward_with(&mlp.w2, &x, &h, &probs, label, &mut grads);
        // Check a few coordinates of w1 and w2 by central differences.
        let eps = 1e-3;
        for &idx in &[0usize, 5, 7] {
            let mut plus = mlp.clone();
            plus.w1[idx] += eps;
            let mut minus = mlp.clone();
            minus.w1[idx] -= eps;
            let fd = (loss(&plus) - loss(&minus)) / (2.0 * eps);
            assert!(
                (fd - grads.w1[idx]).abs() < 1e-2,
                "w1[{idx}]: fd {fd} vs {}",
                grads.w1[idx]
            );
        }
        for &idx in &[0usize, 3] {
            let mut plus = mlp.clone();
            plus.w2[idx] += eps;
            let mut minus = mlp.clone();
            minus.w2[idx] -= eps;
            let fd = (loss(&plus) - loss(&minus)) / (2.0 * eps);
            assert!((fd - grads.w2[idx]).abs() < 1e-2, "w2[{idx}]");
        }
    }
}
