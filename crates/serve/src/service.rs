//! The batched inference service: model registration, request
//! submission with backpressure and deadlines, a coalescing worker pool
//! with per-batch panic isolation, and the drain/shutdown protocol. See
//! the crate docs for the determinism contract and the failure model.

use crate::cache::ModelCache;
use crate::fault::{FaultAction, FaultPlan, FaultPoint};
use crate::queue::{BoundedQueue, Popped, PushError};
use crate::supervisor::Supervisor;
use nm_compiler::{BatchPlan, ExecTier, Options, PreparedGraph};
use nm_core::{Error, Tensor};
use nm_nn::graph::Graph;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError, RwLock};
use std::time::{Duration, Instant};

/// Handle to a registered model (an index into the service's model
/// table; stable for the service's lifetime).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ModelId(pub usize);

/// Service sizing and fault-tolerance knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Bound of the submission queue; a submit against a full queue is
    /// shed ([`SubmitError::Shed`]), never buffered without limit.
    pub queue_capacity: usize,
    /// Maximum requests coalesced into one batch (same model,
    /// consecutive in the queue). `1` disables coalescing.
    pub max_batch: usize,
    /// Worker threads executing batches.
    pub workers: usize,
    /// The [`ExecTier`] every model in this service executes on. It is
    /// authoritative: [`Service::register`] overrides `Options::tier`
    /// with this value, so the cache key, the prepared artifact and
    /// every result of one service agree on a single tier. On
    /// [`ExecTier::Reference`]/[`ExecTier::Bulk`] results carry
    /// simulated cycles ([`InferenceResult::sim_cycles`] is `Some`); on
    /// [`ExecTier::Native`] cycles are not simulated and `sim_cycles`
    /// is `None`.
    pub tier: ExecTier,
    /// Worker respawns allowed over the service lifetime. Per-batch
    /// panics are contained without touching this budget; it is spent
    /// only when a worker *thread* dies (a panic escaping the batch
    /// isolation). Exhausting it poisons the service (admissions close,
    /// queued requests cancel) — see `crates/serve`'s failure model.
    pub restart_budget: u32,
    /// Base delay before a respawned worker starts; doubled per
    /// consecutive restart, capped at 32×. Kept small by default so
    /// tests stay fast — a production deployment facing real crash
    /// loops wants tens of milliseconds or more.
    pub restart_backoff: Duration,
    /// Deterministic fault injection plan ([`crate::fault`]); `None`
    /// (the default) costs nothing and injects nothing.
    pub fault_plan: Option<Arc<FaultPlan>>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            queue_capacity: 64,
            max_batch: 8,
            workers: 2,
            tier: ExecTier::Bulk,
            restart_budget: 8,
            restart_backoff: Duration::from_millis(1),
            fault_plan: None,
        }
    }
}

/// Why a submission was rejected. Every rejection is reported to the
/// caller — the service never accepts a request it will not answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is full; the request was shed (backpressure).
    /// Counted in [`ServiceStats::shed`] (the `full` shed class).
    Shed {
        /// The queue bound that was hit.
        capacity: usize,
    },
    /// The service is shutting down (or was poisoned by restart-budget
    /// exhaustion) and admits no new work.
    Closed,
    /// The input does not match the model's input shape.
    InvalidInput(String),
    /// No model is registered under this id.
    UnknownModel(ModelId),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Shed { capacity } => {
                write!(f, "request shed: queue at capacity {capacity}")
            }
            SubmitError::Closed => write!(f, "service closed"),
            SubmitError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            SubmitError::UnknownModel(id) => write!(f, "unknown model {id:?}"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why an accepted request did not produce a result. Every accepted
/// request resolves to exactly one of a result or one of these — never
/// a hang (enforced by the chaos suite, `tests/tests/serve_chaos.rs`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The emulated execution failed (staging/kernel error).
    Run(Error),
    /// The request was canceled after acceptance: its worker died with
    /// the batch in hand, or the service shut down / was poisoned
    /// before executing it. Counted in [`ServiceStats::shed_canceled`].
    Canceled,
    /// Execution of *this request* panicked — both the coalesced batch
    /// pass and the request's individual isolation re-run. Carries the
    /// re-run's panic message. Other requests of the same batch are
    /// unaffected (re-run individually, bit+cycle identical results).
    WorkerPanic(String),
    /// The request's deadline expired before dispatch (shed at the
    /// queue, counted in [`ServiceStats::shed_expired`]) — or, from
    /// [`Ticket::wait_timeout`], the caller's wait bound elapsed first.
    DeadlineExceeded,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Run(e) => write!(f, "execution failed: {e}"),
            ServeError::Canceled => write!(f, "request canceled before execution"),
            ServeError::WorkerPanic(msg) => write!(f, "execution panicked: {msg}"),
            ServeError::DeadlineExceeded => write!(f, "deadline exceeded"),
        }
    }
}

impl std::error::Error for ServeError {}

/// One fulfilled request.
#[derive(Debug, Clone)]
pub struct InferenceResult {
    /// The request id ([`Ticket::id`]).
    pub id: u64,
    /// The model that served it.
    pub model: ModelId,
    /// The network output — bit-identical to a sequential
    /// [`PreparedGraph::run`] of the same input.
    pub output: Tensor<i8>,
    /// Deterministic per-request simulated compute cycles — identical
    /// to a sequential run's, whatever batch the request rode in.
    /// `Some` on the cycle-accurate tiers ([`ExecTier::Reference`],
    /// [`ExecTier::Bulk`]); `None` on [`ExecTier::Native`], where
    /// cycles are not simulated (wall-clock [`InferenceResult::latency`]
    /// is the only timing quantity there).
    pub sim_cycles: Option<u64>,
    /// Requests that rode in the batch that served this one
    /// (informational; `1` when the request was re-run individually
    /// after a batch-level panic). A batch size above one does **not**
    /// by itself mean any work was shared — `mode` is the authority on
    /// that.
    pub batch_size: usize,
    /// The [`BatchPlan`] the batch actually executed under:
    /// [`BatchPlan::Sequential`] (with the reason) when the requests
    /// ran one by one, the sharing plan otherwise.
    pub mode: BatchPlan,
    /// Wall-clock submit-to-completion latency (informational,
    /// host-dependent — the deterministic quantity is `sim_cycles`).
    pub latency: Duration,
}

#[derive(Debug, Default)]
struct TicketSlot {
    result: Mutex<Option<Result<InferenceResult, ServeError>>>,
    done: Condvar,
}

/// The caller's handle to an accepted request; [`wait`](Ticket::wait)
/// blocks until a worker fulfills it, [`wait_timeout`](Ticket::wait_timeout)
/// bounds the wait.
#[derive(Debug)]
pub struct Ticket {
    id: u64,
    model: ModelId,
    slot: Arc<TicketSlot>,
}

impl Ticket {
    /// The service-assigned request id (unique per service instance).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The model the request targets.
    pub fn model(&self) -> ModelId {
        self.model
    }

    /// Blocks until the request completes.
    ///
    /// A poisoned slot lock (the fulfilling side panicked at exactly
    /// the wrong instant) is recovered, not propagated: fulfillment is
    /// a single `Option` store, so the recovered state is always either
    /// "not yet" or a complete result.
    ///
    /// # Errors
    /// [`ServeError::Run`]/[`ServeError::WorkerPanic`] when execution
    /// failed, [`ServeError::DeadlineExceeded`] when the request's
    /// deadline shed it, [`ServeError::Canceled`] when the service
    /// stopped before running it.
    pub fn wait(self) -> Result<InferenceResult, ServeError> {
        let mut slot = self
            .slot
            .result
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            slot = self
                .slot
                .done
                .wait(slot)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// [`wait`](Ticket::wait) bounded by `timeout`: resolves to
    /// [`ServeError::DeadlineExceeded`] if no result arrives in time.
    ///
    /// Giving up does **not** cancel the request server-side — it still
    /// runs (or sheds on its own deadline) and its eventual result is
    /// discarded when the last slot reference drops; nothing leaks and
    /// no waiter hangs. Pair with
    /// [`Service::submit_with_deadline`] to also stop the service from
    /// spending compute on it.
    ///
    /// # Errors
    /// As [`wait`](Ticket::wait), plus [`ServeError::DeadlineExceeded`]
    /// on timeout.
    pub fn wait_timeout(self, timeout: Duration) -> Result<InferenceResult, ServeError> {
        let give_up = Instant::now() + timeout;
        let mut slot = self
            .slot
            .result
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            let now = Instant::now();
            if now >= give_up {
                return Err(ServeError::DeadlineExceeded);
            }
            let (guard, _timed_out) = self
                .slot
                .done
                .wait_timeout(slot, give_up - now)
                .unwrap_or_else(PoisonError::into_inner);
            slot = guard;
        }
    }
}

/// An accepted request travelling through the queue. Fulfillment is
/// linear: exactly one of [`fulfill`](Pending::fulfill) or the drop
/// guard (which reports [`ServeError::Canceled`] and counts the
/// `canceled` shed class) resolves the ticket, so a waiting caller can
/// never hang on a dropped request — even when the drop happens inside
/// a dying worker's unwind.
#[derive(Debug)]
pub(crate) struct Pending {
    id: u64,
    model: ModelId,
    input: Tensor<i8>,
    /// The prepared artifact resolved at submit time. Carrying it here
    /// (instead of re-resolving `model` in the worker) lets the batcher
    /// coalesce by *artifact* identity: two [`ModelId`]s aliasing the
    /// same cached model — re-registrations share one prepared graph —
    /// still batch together, and the worker needs no model-table lock.
    prepared: Arc<PreparedGraph<'static>>,
    slot: Option<Arc<TicketSlot>>,
    submitted: Instant,
    /// Shed the request instead of dispatching it past this instant.
    deadline: Option<Instant>,
    /// Shared counters, so the drop guard can record the cancellation
    /// wherever it fires (worker unwind, queue cancel, service drop).
    stats: Arc<AtomicStats>,
}

impl Pending {
    fn fulfill(mut self, result: Result<InferenceResult, ServeError>) {
        let Some(slot) = self.slot.take() else { return };
        *slot.result.lock().unwrap_or_else(PoisonError::into_inner) = Some(result);
        slot.done.notify_all();
    }
}

impl Drop for Pending {
    fn drop(&mut self) {
        if let Some(slot) = self.slot.take() {
            self.stats.shed_canceled.fetch_add(1, Ordering::SeqCst);
            *slot.result.lock().unwrap_or_else(PoisonError::into_inner) =
                Some(Err(ServeError::Canceled));
            slot.done.notify_all();
        }
    }
}

/// Monotonic service counters; read them as a consistent snapshot via
/// [`Service::stats`] after [`Service::drain`] (mid-flight reads are
/// individually accurate but may straddle a batch).
///
/// Accounting invariant (after a drain): every *accepted* request lands
/// in exactly one of `completed`, `failed`, `shed_expired` or
/// `shed_canceled`, so
/// `submitted == completed + failed + shed_expired + shed_canceled`;
/// rejected submissions are the caller's tally (`shed` for the `full`
/// class, plus the returned `Closed`/validation errors).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceStats {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests fulfilled with a result.
    pub completed: u64,
    /// Requests fulfilled with an execution error
    /// ([`ServeError::Run`] or [`ServeError::WorkerPanic`]).
    pub failed: u64,
    /// Shed class `full`: requests refused at the full queue (reported
    /// to the submitter, see [`SubmitError::Shed`]; never accepted).
    pub shed: u64,
    /// Shed class `expired`: accepted requests shed at dispatch because
    /// their deadline had passed ([`ServeError::DeadlineExceeded`]).
    pub shed_expired: u64,
    /// Shed class `canceled`: accepted requests resolved
    /// [`ServeError::Canceled`] (worker death with the batch in hand,
    /// poisoning, or shutdown racing the queue).
    pub shed_canceled: u64,
    /// Panics caught by the per-batch isolation (batch passes and
    /// individual re-runs).
    pub worker_panics: u64,
    /// Worker threads respawned by the supervisor.
    pub restarts: u64,
    /// Batches executed.
    pub batches: u64,
    /// Largest batch coalesced so far.
    pub max_coalesced: u64,
}

#[derive(Debug, Default)]
pub(crate) struct AtomicStats {
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    shed: AtomicU64,
    shed_expired: AtomicU64,
    shed_canceled: AtomicU64,
    worker_panics: AtomicU64,
    pub(crate) restarts: AtomicU64,
    batches: AtomicU64,
    max_coalesced: AtomicU64,
}

impl AtomicStats {
    fn snapshot(&self) -> ServiceStats {
        ServiceStats {
            submitted: self.submitted.load(Ordering::SeqCst),
            completed: self.completed.load(Ordering::SeqCst),
            failed: self.failed.load(Ordering::SeqCst),
            shed: self.shed.load(Ordering::SeqCst),
            shed_expired: self.shed_expired.load(Ordering::SeqCst),
            shed_canceled: self.shed_canceled.load(Ordering::SeqCst),
            worker_panics: self.worker_panics.load(Ordering::SeqCst),
            restarts: self.restarts.load(Ordering::SeqCst),
            batches: self.batches.load(Ordering::SeqCst),
            max_coalesced: self.max_coalesced.load(Ordering::SeqCst),
        }
    }
}

#[derive(Debug)]
struct ModelSlot {
    prepared: Arc<PreparedGraph<'static>>,
}

#[derive(Debug)]
pub(crate) struct ServiceInner {
    pub(crate) config: ServiceConfig,
    pub(crate) queue: BoundedQueue<Pending>,
    models: RwLock<Vec<ModelSlot>>,
    cache: ModelCache,
    next_id: AtomicU64,
    pub(crate) stats: Arc<AtomicStats>,
    pub(crate) supervisor: Supervisor,
}

/// The batched inference service. Construction spawns the supervised
/// worker pool; [`register`](Service::register) adds models (cached by
/// (model, format, options)), [`submit`](Service::submit) /
/// [`submit_with_deadline`](Service::submit_with_deadline) enqueue
/// requests, [`shutdown`](Service::shutdown) closes admissions, drains
/// and joins. Dropping the service performs the same orderly shutdown —
/// including during another panic's unwind, where it must not
/// double-panic or leave a waiter parked.
#[derive(Debug)]
pub struct Service {
    inner: Arc<ServiceInner>,
}

impl Service {
    /// Starts the supervised worker pool.
    ///
    /// # Panics
    /// Panics on a zero `workers`, `max_batch` or `queue_capacity` —
    /// all three would deadlock or reject everything — and if the
    /// initial worker threads cannot be spawned at all.
    pub fn start(config: ServiceConfig) -> Self {
        assert!(config.workers > 0, "need at least one worker");
        assert!(config.max_batch > 0, "batch limit must be positive");
        let inner = Arc::new(ServiceInner {
            queue: BoundedQueue::new(config.queue_capacity),
            models: RwLock::new(Vec::new()),
            cache: ModelCache::with_faults(config.fault_plan.clone()),
            next_id: AtomicU64::new(0),
            stats: Arc::new(AtomicStats::default()),
            supervisor: Supervisor::new(),
            config,
        });
        for _ in 0..inner.config.workers {
            Supervisor::spawn_worker(&inner, Duration::ZERO)
                .unwrap_or_else(|e| panic!("spawn initial worker: {e}"));
        }
        Service { inner }
    }

    /// Registers `graph` under `name` with compilation `opts`, preparing
    /// it through the service's model cache (a re-registration with the
    /// same name and options reuses the cached artifact and returns a
    /// new id aliasing it). `opts.tier` is overridden by
    /// [`ServiceConfig::tier`] — one service runs one execution tier —
    /// so two registrations differing only in tier alias the same
    /// cached artifact.
    ///
    /// # Errors
    /// Propagates preparation failures (e.g. [`Error::OutOfMemory`] for
    /// a model whose minimum tile exceeds the L1 budget); nothing is
    /// registered then, and the cache and model table stay fully usable
    /// for subsequent registrations.
    pub fn register(
        &self,
        name: &str,
        graph: &Arc<Graph>,
        opts: &Options,
    ) -> Result<ModelId, Error> {
        let mut opts = *opts;
        opts.tier = self.inner.config.tier;
        let prepared = self.inner.cache.get_or_prepare(name, graph, &opts)?;
        let mut models = self
            .inner
            .models
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        models.push(ModelSlot { prepared });
        Ok(ModelId(models.len() - 1))
    }

    /// Submits one inference request, returning a [`Ticket`] to wait on.
    ///
    /// # Errors
    /// See [`SubmitError`]; in particular a full queue sheds the request
    /// (reported, counted, never silently dropped).
    pub fn submit(&self, model: ModelId, input: Tensor<i8>) -> Result<Ticket, SubmitError> {
        self.submit_with_deadline(model, input, None)
    }

    /// [`submit`](Service::submit) with an optional deadline: a request
    /// still queued when `deadline` passes is shed at the next dispatch
    /// instead of executed — its ticket resolves
    /// [`ServeError::DeadlineExceeded`] and the shed lands in the
    /// `expired` class ([`ServiceStats::shed_expired`]). A request
    /// already handed to a worker runs to completion (dispatch is the
    /// shed point, not a preemption point). Pair with
    /// [`Ticket::wait_timeout`] to bound the caller side too.
    ///
    /// # Errors
    /// See [`SubmitError`]. An already-expired deadline is still
    /// accepted (and then shed at dispatch): the asynchronous shed path
    /// keeps one set of semantics instead of racing the clock at two
    /// admission points.
    pub fn submit_with_deadline(
        &self,
        model: ModelId,
        input: Tensor<i8>,
        deadline: Option<Instant>,
    ) -> Result<Ticket, SubmitError> {
        let prepared = {
            let models = self
                .inner
                .models
                .read()
                .unwrap_or_else(PoisonError::into_inner);
            let slot = models
                .get(model.0)
                .ok_or(SubmitError::UnknownModel(model))?;
            Arc::clone(&slot.prepared)
        };
        if input.shape() != prepared.graph().input_shape() {
            return Err(SubmitError::InvalidInput(format!(
                "input shape {:?} != model input {:?}",
                input.shape(),
                prepared.graph().input_shape()
            )));
        }
        let id = self.inner.next_id.fetch_add(1, Ordering::SeqCst);
        let slot = Arc::new(TicketSlot::default());
        let pending = Pending {
            id,
            model,
            input,
            prepared,
            slot: Some(Arc::clone(&slot)),
            submitted: Instant::now(),
            deadline,
            stats: Arc::clone(&self.inner.stats),
        };
        match self.inner.queue.push(pending) {
            Ok(_) => {
                self.inner.stats.submitted.fetch_add(1, Ordering::SeqCst);
                Ok(Ticket { id, model, slot })
            }
            Err(PushError::Full(rejected)) => {
                // Disarm the drop guard: the caller holds no ticket, so
                // nothing must be fulfilled — but the shed is counted
                // and reported, never silent.
                let mut rejected = rejected;
                rejected.slot = None;
                self.inner.stats.shed.fetch_add(1, Ordering::SeqCst);
                Err(SubmitError::Shed {
                    capacity: self.inner.config.queue_capacity,
                })
            }
            Err(PushError::Closed(rejected)) => {
                let mut rejected = rejected;
                rejected.slot = None;
                Err(SubmitError::Closed)
            }
        }
    }

    /// Blocks until every accepted request has been fulfilled (queue
    /// empty, no batch in flight). Admissions stay open.
    pub fn drain(&self) {
        self.inner.queue.wait_idle();
    }

    /// Closes admissions without blocking: subsequent submits fail with
    /// [`SubmitError::Closed`], already-accepted requests still run to
    /// completion. The first half of the shutdown protocol, usable from
    /// any thread holding a shared reference.
    pub fn close(&self) {
        self.inner.queue.close();
    }

    /// Pauses the worker pool: submissions keep landing (up to the
    /// queue bound) but nothing is popped until [`resume`](Self::resume).
    /// This is the batch-shaping gate — enqueue a whole wave while
    /// paused and the coalescer sees the full same-model run at once,
    /// instead of whatever prefix won the race against the workers.
    /// Used by the serving benchmarks for comparable waves and by the
    /// deterministic coalescing tests; also the warm-up pattern for
    /// accepting traffic while models finish registering. Deadline
    /// shedding happens at dispatch, so a paused queue sheds nothing
    /// until resumed. [`close`](Self::close)/shutdown override a pause,
    /// so a paused service still drains and exits cleanly.
    pub fn pause(&self) {
        self.inner.queue.pause();
    }

    /// Resumes a [`pause`](Self::pause)d worker pool.
    pub fn resume(&self) {
        self.inner.queue.resume();
    }

    /// Orderly shutdown: closes admissions, lets the workers drain the
    /// queue, joins them and returns the final counters. Guaranteed to
    /// leave the queue empty with nothing in flight.
    pub fn shutdown(mut self) -> ServiceStats {
        self.close_and_join();
        let stats = self.inner.stats.snapshot();
        debug_assert!(self.inner.queue.is_empty());
        debug_assert_eq!(self.inner.queue.in_flight(), 0);
        stats
    }

    /// Current counters (see [`ServiceStats`] for read-consistency
    /// caveats while requests are in flight).
    pub fn stats(&self) -> ServiceStats {
        self.inner.stats.snapshot()
    }

    /// Whether a worker death exhausted
    /// [`ServiceConfig::restart_budget`] (or a respawn failed) and the
    /// service poisoned itself: admissions are closed, queued requests
    /// were canceled. A poisoned service is safe to query, drain and
    /// shut down — it just serves nothing anymore.
    pub fn is_poisoned(&self) -> bool {
        self.inner.supervisor.is_poisoned()
    }

    /// Models registered.
    pub fn model_count(&self) -> usize {
        self.inner
            .models
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Waiting requests (excludes batches already handed to workers).
    pub fn queue_depth(&self) -> usize {
        self.inner.queue.len()
    }

    /// Prepared-artifact cache hit/miss counters, keyed by
    /// (model, format, options). A registration whose prepare *fails*
    /// counts in neither — see [`Service::failed_prepares`].
    pub fn cache_counters(&self) -> (u64, u64) {
        (self.inner.cache.hits(), self.inner.cache.misses())
    }

    /// Registrations whose prepare failed (never cached, never counted
    /// as misses).
    pub fn failed_prepares(&self) -> u64 {
        self.inner.cache.failed_prepares()
    }

    /// Never panics: runs during `Drop`, which may itself run during
    /// another panic's unwind — a second panic there would abort the
    /// process and eat the original message. Worker panics were already
    /// accounted (contained per batch, or respawn/poison at the thread
    /// level), so the join swallows them instead of resurfacing.
    fn close_and_join(&mut self) {
        self.inner.queue.close();
        self.inner.supervisor.join_all();
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

/// Acknowledges a popped batch on every exit path — panics included.
/// [`BoundedQueue::wait_idle`]'s drain guarantee assumes `task_done`
/// always runs for popped items; without this guard, a dying worker
/// would leave `in_flight` stuck and wedge every drainer (its tickets
/// are canceled separately by the [`Pending`] drop guard).
struct AckOnDrop<'a> {
    queue: &'a BoundedQueue<Pending>,
    n: usize,
}

impl Drop for AckOnDrop<'_> {
    fn drop(&mut self) {
        self.queue.task_done(self.n);
    }
}

/// Closes `queue` and cancels every request still in it (their
/// [`Pending`] drop guards resolve the tickets `Canceled` and count the
/// `canceled` shed class), leaving the queue closed, empty and — once
/// live batches acknowledge — idle. The supervisor's poisoning path and
/// the tests share this.
pub(crate) fn cancel_queued(queue: &BoundedQueue<Pending>) {
    queue.close();
    // All items share the unit key, so each pop drains a maximal run;
    // the loop ends when the closed queue reports empty.
    while let Some(batch) = queue.pop_batch(usize::MAX, |_| ()) {
        let n = batch.len();
        drop(batch);
        queue.task_done(n);
    }
}

/// Best-effort text of a panic payload, for [`ServeError::WorkerPanic`].
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked with a non-string payload".to_string()
    }
}

/// The worker loop: pop a coalesced same-model batch (shedding expired
/// requests at dispatch), execute it under panic isolation, fulfill
/// every ticket, acknowledge. Runs under the supervisor's respawn guard
/// — anything escaping this function's containment kills only this
/// thread, and the supervisor decides between respawn and poisoning.
pub(crate) fn worker_loop(inner: &ServiceInner) {
    let plan = inner.config.fault_plan.as_deref();
    // Coalescing keys on the prepared *artifact*, not the ModelId:
    // aliased registrations of one cached model batch together.
    while let Some(popped) = inner.queue.pop_batch_or_shed(
        inner.config.max_batch,
        |p: &Pending| Arc::as_ptr(&p.prepared),
        |p: &Pending| p.deadline.is_some_and(|d| Instant::now() >= d),
    ) {
        let Popped { batch, expired } = popped;
        let ack = AckOnDrop {
            queue: &inner.queue,
            n: batch.len() + expired.len(),
        };
        for pending in expired {
            inner.stats.shed_expired.fetch_add(1, Ordering::SeqCst);
            pending.fulfill(Err(ServeError::DeadlineExceeded));
        }
        if !batch.is_empty() {
            let injected = plan.and_then(|p| p.check(FaultPoint::BatchRun));
            if injected == Some(FaultAction::KillWorker) {
                // Deliberately outside the batch isolation: this panic
                // unwinds the worker thread. The held batch cancels via
                // the Pending drop guards, the ack guard releases the
                // in-flight count, and the supervisor's respawn guard
                // spends restart budget on a replacement.
                panic!("injected fault: batch_run kill-worker");
            }
            run_batch_isolated(inner, batch, injected);
        }
        drop(ack); // acknowledge (also runs if the above panics)
    }
}

/// Executes one coalesced batch with panic isolation: a panic anywhere
/// in the batch pass fails nobody outright — every request is re-run
/// individually (bit+cycle identical to a sequential run by the
/// determinism contract), and only a request whose *own* re-run panics
/// resolves [`ServeError::WorkerPanic`].
fn run_batch_isolated(inner: &ServiceInner, batch: Vec<Pending>, injected: Option<FaultAction>) {
    let n = batch.len();
    let Some(first) = batch.first() else { return };
    let prepared = Arc::clone(&first.prepared);
    // Cycles are only defined on the cycle-accurate tiers; the native
    // tier reports `None` rather than a meaningless zero.
    let cycle_accurate = inner.config.tier.is_cycle_accurate();
    inner.stats.batches.fetch_add(1, Ordering::SeqCst);
    inner
        .stats
        .max_coalesced
        .fetch_max(n as u64, Ordering::SeqCst);
    let outcome = {
        let inputs: Vec<&Tensor<i8>> = batch.iter().map(|p| &p.input).collect();
        match injected {
            Some(FaultAction::Error) => Ok(Err(Error::Unsupported(
                "injected fault: batch_run".to_string(),
            ))),
            Some(_) => catch_unwind(AssertUnwindSafe(|| -> nm_core::Result<_> {
                panic!("injected fault: batch_run")
            })),
            None => catch_unwind(AssertUnwindSafe(|| prepared.run_batch(&inputs))),
        }
    };
    match outcome {
        Ok(Ok(runs)) => {
            for (pending, run) in batch.into_iter().zip(runs) {
                inner.stats.completed.fetch_add(1, Ordering::SeqCst);
                let result = InferenceResult {
                    id: pending.id,
                    model: pending.model,
                    output: run.output,
                    sim_cycles: cycle_accurate.then_some(run.matmul_compute_cycles),
                    batch_size: n,
                    mode: prepared.batch_plan().executed(n),
                    latency: pending.submitted.elapsed(),
                };
                pending.fulfill(Ok(result));
            }
        }
        Ok(Err(e)) => {
            // Submit-time shape validation leaves staging/kernel errors
            // as the only failures here; every rider of the batch
            // learns about it.
            for pending in batch {
                inner.stats.failed.fetch_add(1, Ordering::SeqCst);
                pending.fulfill(Err(ServeError::Run(e.clone())));
            }
        }
        Err(_batch_panic) => {
            // The batch pass panicked. Isolate: each request runs alone
            // (its result then bit+cycle identical to the sequential
            // baseline), and only a request that panics *again* on its
            // own fails — with its own message.
            inner.stats.worker_panics.fetch_add(1, Ordering::SeqCst);
            let plan = inner.config.fault_plan.as_deref();
            for pending in batch {
                let one = catch_unwind(AssertUnwindSafe(|| {
                    // Re-runs are batch_run occurrences too, so a plan
                    // can target the retry path deterministically. Any
                    // armed action panics here — inside the isolation.
                    if let Some(plan) = plan {
                        if plan.check(FaultPoint::BatchRun).is_some() {
                            panic!("injected fault: batch_run (isolation re-run)");
                        }
                    }
                    prepared.run(&pending.input)
                }));
                match one {
                    Ok(Ok(run)) => {
                        inner.stats.completed.fetch_add(1, Ordering::SeqCst);
                        let result = InferenceResult {
                            id: pending.id,
                            model: pending.model,
                            output: run.output,
                            sim_cycles: cycle_accurate.then_some(run.matmul_compute_cycles),
                            batch_size: 1,
                            mode: prepared.batch_plan().executed(1),
                            latency: pending.submitted.elapsed(),
                        };
                        pending.fulfill(Ok(result));
                    }
                    Ok(Err(e)) => {
                        inner.stats.failed.fetch_add(1, Ordering::SeqCst);
                        pending.fulfill(Err(ServeError::Run(e)));
                    }
                    Err(payload) => {
                        inner.stats.worker_panics.fetch_add(1, Ordering::SeqCst);
                        inner.stats.failed.fetch_add(1, Ordering::SeqCst);
                        pending.fulfill(Err(ServeError::WorkerPanic(panic_message(&*payload))));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nm_compiler::Target;
    use nm_core::quant::Requant;
    use nm_core::FcGeom;
    use nm_nn::layer::LinearLayer;
    use nm_nn::rng::XorShift;
    use nm_nn::GraphBuilder;

    fn tiny_prepared() -> Arc<PreparedGraph<'static>> {
        let mut b = GraphBuilder::new(&[16]);
        let layer = LinearLayer::new(
            FcGeom::new(16, 8).unwrap(),
            XorShift::new(3).fill_weights(16 * 8, 30),
            Requant::for_dot_len(16),
        )
        .unwrap();
        let out = b.linear(b.input(), layer).unwrap();
        let graph = Arc::new(b.finish(out).unwrap());
        let opts = Options::new(Target::DensePulpNn);
        Arc::new(PreparedGraph::prepare_shared(graph, &opts).unwrap())
    }

    fn queued_pending(queue: &BoundedQueue<Pending>, stats: &Arc<AtomicStats>, id: u64) -> Ticket {
        let prepared = tiny_prepared();
        let slot = Arc::new(TicketSlot::default());
        let ticket = Ticket {
            id,
            model: ModelId(0),
            slot: Arc::clone(&slot),
        };
        assert!(
            queue
                .push(Pending {
                    id,
                    model: ModelId(0),
                    input: Tensor::from_vec(&[16], vec![0i8; 16]).unwrap(),
                    prepared,
                    slot: Some(slot),
                    submitted: Instant::now(),
                    deadline: None,
                    stats: Arc::clone(stats),
                })
                .is_ok(),
            "queue admits the request"
        );
        ticket
    }

    /// The dead-consumer recovery path (supervisor poisoning →
    /// [`cancel_queued`]): queued requests are canceled — their waiters
    /// unblock with [`ServeError::Canceled`] instead of hanging, the
    /// `canceled` shed class counts them — and the queue ends closed,
    /// empty and drainable.
    #[test]
    fn cancel_queued_unblocks_waiters_with_canceled() {
        let queue: BoundedQueue<Pending> = BoundedQueue::new(4);
        let stats = Arc::new(AtomicStats::default());
        let ticket = queued_pending(&queue, &stats, 7);
        std::thread::scope(|scope| {
            let waiter = scope.spawn(move || ticket.wait());
            cancel_queued(&queue);
            assert!(matches!(waiter.join().unwrap(), Err(ServeError::Canceled)));
        });
        assert!(queue.is_closed());
        assert!(queue.is_empty());
        assert_eq!(stats.snapshot().shed_canceled, 1, "canceled class counted");
        queue.wait_idle(); // nothing in flight: returns immediately
    }

    /// `wait_timeout` must bound the wait on an unfulfilled ticket with
    /// [`ServeError::DeadlineExceeded`], and the eventual fulfillment
    /// of the abandoned request must not hang or leak — the slot simply
    /// absorbs the discarded result.
    #[test]
    fn wait_timeout_bounds_the_wait_without_leaking() {
        let queue: BoundedQueue<Pending> = BoundedQueue::new(4);
        let stats = Arc::new(AtomicStats::default());
        let ticket = queued_pending(&queue, &stats, 1);
        let t = Instant::now();
        assert!(matches!(
            ticket.wait_timeout(Duration::from_millis(20)),
            Err(ServeError::DeadlineExceeded)
        ));
        assert!(t.elapsed() >= Duration::from_millis(20));
        // The abandoned request is still resolvable: cancel it and
        // observe nothing panics with the ticket side already gone.
        cancel_queued(&queue);
        assert_eq!(stats.snapshot().shed_canceled, 1);
    }
}
