//! The batched inference service: model registration, request
//! submission with backpressure, a coalescing worker pool and the
//! drain/shutdown protocol. See the crate docs for the determinism
//! contract.

use crate::cache::ModelCache;
use crate::queue::{BoundedQueue, PushError};
use nm_compiler::{Options, PreparedGraph};
use nm_core::{Error, Tensor};
use nm_nn::graph::Graph;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Handle to a registered model (an index into the service's model
/// table; stable for the service's lifetime).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ModelId(pub usize);

/// Service sizing knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Bound of the submission queue; a submit against a full queue is
    /// shed ([`SubmitError::Shed`]), never buffered without limit.
    pub queue_capacity: usize,
    /// Maximum requests coalesced into one batch (same model,
    /// consecutive in the queue). `1` disables coalescing.
    pub max_batch: usize,
    /// Worker threads executing batches.
    pub workers: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            queue_capacity: 64,
            max_batch: 8,
            workers: 2,
        }
    }
}

/// Why a submission was rejected. Every rejection is reported to the
/// caller — the service never accepts a request it will not answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is full; the request was shed (backpressure).
    /// Counted in [`ServiceStats::shed`].
    Shed {
        /// The queue bound that was hit.
        capacity: usize,
    },
    /// The service is shutting down and admits no new work.
    Closed,
    /// The input does not match the model's input shape.
    InvalidInput(String),
    /// No model is registered under this id.
    UnknownModel(ModelId),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Shed { capacity } => {
                write!(f, "request shed: queue at capacity {capacity}")
            }
            SubmitError::Closed => write!(f, "service closed"),
            SubmitError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            SubmitError::UnknownModel(id) => write!(f, "unknown model {id:?}"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why an accepted request did not produce a result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The emulated execution failed (staging/kernel error).
    Run(Error),
    /// The service terminated before executing the request (only
    /// possible when a worker panicked mid-batch — orderly shutdown
    /// drains the queue first).
    Canceled,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Run(e) => write!(f, "execution failed: {e}"),
            ServeError::Canceled => write!(f, "request canceled before execution"),
        }
    }
}

impl std::error::Error for ServeError {}

/// One fulfilled request.
#[derive(Debug, Clone)]
pub struct InferenceResult {
    /// The request id ([`Ticket::id`]).
    pub id: u64,
    /// The model that served it.
    pub model: ModelId,
    /// The network output — bit-identical to a sequential
    /// [`PreparedGraph::run`] of the same input.
    pub output: Tensor<i8>,
    /// Deterministic per-request simulated compute cycles — identical
    /// to a sequential run's, whatever batch the request rode in.
    pub sim_cycles: u64,
    /// Requests coalesced into the batch that served this one
    /// (informational).
    pub batch_size: usize,
    /// Wall-clock submit-to-completion latency (informational,
    /// host-dependent — the deterministic quantity is `sim_cycles`).
    pub latency: Duration,
}

#[derive(Debug, Default)]
struct TicketSlot {
    result: Mutex<Option<Result<InferenceResult, ServeError>>>,
    done: Condvar,
}

/// The caller's handle to an accepted request; [`wait`](Ticket::wait)
/// blocks until a worker fulfills it.
#[derive(Debug)]
pub struct Ticket {
    id: u64,
    model: ModelId,
    slot: Arc<TicketSlot>,
}

impl Ticket {
    /// The service-assigned request id (unique per service instance).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The model the request targets.
    pub fn model(&self) -> ModelId {
        self.model
    }

    /// Blocks until the request completes.
    ///
    /// # Errors
    /// [`ServeError::Run`] when execution failed, [`ServeError::Canceled`]
    /// when the service died before running the request.
    pub fn wait(self) -> Result<InferenceResult, ServeError> {
        let mut slot = self.slot.result.lock().expect("ticket poisoned");
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            slot = self.slot.done.wait(slot).expect("ticket poisoned");
        }
    }
}

/// An accepted request travelling through the queue. Fulfillment is
/// linear: exactly one of [`fulfill`](Pending::fulfill) or the drop
/// guard (which reports [`ServeError::Canceled`]) resolves the ticket,
/// so a waiting caller can never hang on a dropped request.
#[derive(Debug)]
struct Pending {
    id: u64,
    model: ModelId,
    input: Tensor<i8>,
    /// The prepared artifact resolved at submit time. Carrying it here
    /// (instead of re-resolving `model` in the worker) lets the batcher
    /// coalesce by *artifact* identity: two [`ModelId`]s aliasing the
    /// same cached model — re-registrations share one prepared graph —
    /// still batch together, and the worker needs no model-table lock.
    prepared: Arc<PreparedGraph<'static>>,
    slot: Option<Arc<TicketSlot>>,
    submitted: Instant,
}

impl Pending {
    fn fulfill(mut self, result: Result<InferenceResult, ServeError>) {
        let slot = self.slot.take().expect("fulfilled once");
        *slot.result.lock().expect("ticket poisoned") = Some(result);
        slot.done.notify_all();
    }
}

impl Drop for Pending {
    fn drop(&mut self) {
        if let Some(slot) = self.slot.take() {
            *slot.result.lock().expect("ticket poisoned") = Some(Err(ServeError::Canceled));
            slot.done.notify_all();
        }
    }
}

/// Monotonic service counters; read them as a consistent snapshot via
/// [`Service::stats`] after [`Service::drain`] (mid-flight reads are
/// individually accurate but may straddle a batch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceStats {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests fulfilled with a result.
    pub completed: u64,
    /// Requests fulfilled with an execution error.
    pub failed: u64,
    /// Requests shed at the full queue (reported to the submitter, see
    /// [`SubmitError::Shed`]).
    pub shed: u64,
    /// Batches executed.
    pub batches: u64,
    /// Largest batch coalesced so far.
    pub max_coalesced: u64,
}

#[derive(Debug, Default)]
struct AtomicStats {
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    shed: AtomicU64,
    batches: AtomicU64,
    max_coalesced: AtomicU64,
}

impl AtomicStats {
    fn snapshot(&self) -> ServiceStats {
        ServiceStats {
            submitted: self.submitted.load(Ordering::SeqCst),
            completed: self.completed.load(Ordering::SeqCst),
            failed: self.failed.load(Ordering::SeqCst),
            shed: self.shed.load(Ordering::SeqCst),
            batches: self.batches.load(Ordering::SeqCst),
            max_coalesced: self.max_coalesced.load(Ordering::SeqCst),
        }
    }
}

#[derive(Debug)]
struct ModelSlot {
    prepared: Arc<PreparedGraph<'static>>,
}

#[derive(Debug)]
struct ServiceInner {
    config: ServiceConfig,
    queue: BoundedQueue<Pending>,
    models: RwLock<Vec<ModelSlot>>,
    cache: ModelCache,
    next_id: AtomicU64,
    stats: AtomicStats,
}

/// The batched inference service. Construction spawns the worker pool;
/// [`register`](Service::register) adds models (cached by
/// (model, format, options)), [`submit`](Service::submit) enqueues
/// requests, [`shutdown`](Service::shutdown) closes admissions, drains
/// and joins. Dropping the service performs the same orderly shutdown.
#[derive(Debug)]
pub struct Service {
    inner: Arc<ServiceInner>,
    workers: Vec<JoinHandle<()>>,
}

impl Service {
    /// Starts the worker pool.
    ///
    /// # Panics
    /// Panics on a zero `workers`, `max_batch` or `queue_capacity` —
    /// all three would deadlock or reject everything.
    pub fn start(config: ServiceConfig) -> Self {
        assert!(config.workers > 0, "need at least one worker");
        assert!(config.max_batch > 0, "batch limit must be positive");
        let inner = Arc::new(ServiceInner {
            config,
            queue: BoundedQueue::new(config.queue_capacity),
            models: RwLock::new(Vec::new()),
            cache: ModelCache::new(),
            next_id: AtomicU64::new(0),
            stats: AtomicStats::default(),
        });
        let workers = (0..config.workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("nm-serve-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn worker")
            })
            .collect();
        Service { inner, workers }
    }

    /// Registers `graph` under `name` with compilation `opts`, preparing
    /// it through the service's model cache (a re-registration with the
    /// same name and options reuses the cached artifact and returns a
    /// new id aliasing it).
    ///
    /// # Errors
    /// Propagates preparation failures; nothing is registered then.
    pub fn register(
        &self,
        name: &str,
        graph: &Arc<Graph>,
        opts: &Options,
    ) -> Result<ModelId, Error> {
        let prepared = self.inner.cache.get_or_prepare(name, graph, opts)?;
        let mut models = self.inner.models.write().expect("model table poisoned");
        models.push(ModelSlot { prepared });
        Ok(ModelId(models.len() - 1))
    }

    /// Submits one inference request, returning a [`Ticket`] to wait on.
    ///
    /// # Errors
    /// See [`SubmitError`]; in particular a full queue sheds the request
    /// (reported, counted, never silently dropped).
    pub fn submit(&self, model: ModelId, input: Tensor<i8>) -> Result<Ticket, SubmitError> {
        let prepared = {
            let models = self.inner.models.read().expect("model table poisoned");
            let slot = models
                .get(model.0)
                .ok_or(SubmitError::UnknownModel(model))?;
            Arc::clone(&slot.prepared)
        };
        if input.shape() != prepared.graph().input_shape() {
            return Err(SubmitError::InvalidInput(format!(
                "input shape {:?} != model input {:?}",
                input.shape(),
                prepared.graph().input_shape()
            )));
        }
        let id = self.inner.next_id.fetch_add(1, Ordering::SeqCst);
        let slot = Arc::new(TicketSlot::default());
        let pending = Pending {
            id,
            model,
            input,
            prepared,
            slot: Some(Arc::clone(&slot)),
            submitted: Instant::now(),
        };
        match self.inner.queue.push(pending) {
            Ok(_) => {
                self.inner.stats.submitted.fetch_add(1, Ordering::SeqCst);
                Ok(Ticket { id, model, slot })
            }
            Err(PushError::Full(rejected)) => {
                // Disarm the drop guard: the caller holds no ticket, so
                // nothing must be fulfilled — but the shed is counted
                // and reported, never silent.
                let mut rejected = rejected;
                rejected.slot = None;
                self.inner.stats.shed.fetch_add(1, Ordering::SeqCst);
                Err(SubmitError::Shed {
                    capacity: self.inner.config.queue_capacity,
                })
            }
            Err(PushError::Closed(rejected)) => {
                let mut rejected = rejected;
                rejected.slot = None;
                Err(SubmitError::Closed)
            }
        }
    }

    /// Blocks until every accepted request has been fulfilled (queue
    /// empty, no batch in flight). Admissions stay open.
    pub fn drain(&self) {
        self.inner.queue.wait_idle();
    }

    /// Closes admissions without blocking: subsequent submits fail with
    /// [`SubmitError::Closed`], already-accepted requests still run to
    /// completion. The first half of the shutdown protocol, usable from
    /// any thread holding a shared reference.
    pub fn close(&self) {
        self.inner.queue.close();
    }

    /// Pauses the worker pool: submissions keep landing (up to the
    /// queue bound) but nothing is popped until [`resume`](Self::resume).
    /// This is the batch-shaping gate — enqueue a whole wave while
    /// paused and the coalescer sees the full same-model run at once,
    /// instead of whatever prefix won the race against the workers.
    /// Used by the serving benchmarks for comparable waves and by the
    /// deterministic coalescing tests; also the warm-up pattern for
    /// accepting traffic while models finish registering.
    /// [`close`](Self::close)/shutdown override a pause, so a paused
    /// service still drains and exits cleanly.
    pub fn pause(&self) {
        self.inner.queue.pause();
    }

    /// Resumes a [`pause`](Self::pause)d worker pool.
    pub fn resume(&self) {
        self.inner.queue.resume();
    }

    /// Orderly shutdown: closes admissions, lets the workers drain the
    /// queue, joins them and returns the final counters. Guaranteed to
    /// leave the queue empty with nothing in flight.
    pub fn shutdown(mut self) -> ServiceStats {
        self.close_and_join();
        let stats = self.inner.stats.snapshot();
        debug_assert!(self.inner.queue.is_empty());
        debug_assert_eq!(self.inner.queue.in_flight(), 0);
        stats
    }

    /// Current counters (see [`ServiceStats`] for read-consistency
    /// caveats while requests are in flight).
    pub fn stats(&self) -> ServiceStats {
        self.inner.stats.snapshot()
    }

    /// Models registered.
    pub fn model_count(&self) -> usize {
        self.inner
            .models
            .read()
            .expect("model table poisoned")
            .len()
    }

    /// Waiting requests (excludes batches already handed to workers).
    pub fn queue_depth(&self) -> usize {
        self.inner.queue.len()
    }

    /// Prepared-artifact cache hit/miss counters, keyed by
    /// (model, format, options).
    pub fn cache_counters(&self) -> (u64, u64) {
        (self.inner.cache.hits(), self.inner.cache.misses())
    }

    fn close_and_join(&mut self) {
        self.inner.queue.close();
        for handle in self.workers.drain(..) {
            // A panicked worker poisoned nothing global (tickets it
            // held are canceled by the Pending drop guard); surface the
            // panic to the caller — unless we are already unwinding
            // (Drop during a panic), where a second panic would abort
            // the process and eat the original message.
            if let Err(panic) = handle.join() {
                if !std::thread::panicking() {
                    std::panic::resume_unwind(panic);
                }
            }
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

/// Acknowledges a popped batch on every exit path — panics included.
/// [`BoundedQueue::wait_idle`]'s drain guarantee assumes `task_done`
/// always runs for popped items; without this guard, a panicking worker
/// would leave `in_flight` stuck and wedge every drainer (its tickets
/// are canceled separately by the [`Pending`] drop guard).
struct AckOnDrop<'a> {
    queue: &'a BoundedQueue<Pending>,
    n: usize,
}

impl Drop for AckOnDrop<'_> {
    fn drop(&mut self) {
        self.queue.task_done(self.n);
    }
}

/// Fails the service loudly when a worker dies: a panicking worker is a
/// dead consumer, and requests still queued behind it would otherwise
/// wait on nobody — [`Ticket::wait`] and [`Service::drain`] would hang
/// until something dropped the service. On panic this guard closes
/// admissions and cancels everything queued (each dropped [`Pending`]
/// fulfills its ticket with [`ServeError::Canceled`]), so every waiter
/// unblocks immediately; the panic itself still resurfaces at
/// shutdown/Drop via the join. A worker panic means an internal
/// invariant broke — failing the whole service beats half-serving.
struct PoisonOnPanic<'a> {
    queue: &'a BoundedQueue<Pending>,
}

impl Drop for PoisonOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            cancel_queued(self.queue);
        }
    }
}

/// Closes `queue` and cancels every request still in it (their
/// [`Pending`] drop guards resolve the tickets `Canceled`), leaving the
/// queue closed, empty and — once live batches acknowledge — idle.
fn cancel_queued(queue: &BoundedQueue<Pending>) {
    queue.close();
    // All items share the unit key, so each pop drains a maximal run;
    // the loop ends when the closed queue reports empty.
    while let Some(batch) = queue.pop_batch(usize::MAX, |_| ()) {
        let n = batch.len();
        drop(batch);
        queue.task_done(n);
    }
}

/// The worker loop: pop a coalesced same-model batch, execute it
/// through the shared [`PreparedGraph`] (multi-token pass when the model
/// allows it), fulfill every ticket, acknowledge the batch.
fn worker_loop(inner: &ServiceInner) {
    let _poison = PoisonOnPanic {
        queue: &inner.queue,
    };
    // Coalescing keys on the prepared *artifact*, not the ModelId:
    // aliased registrations of one cached model batch together.
    while let Some(batch) = inner
        .queue
        .pop_batch(inner.config.max_batch, |p: &Pending| {
            Arc::as_ptr(&p.prepared)
        })
    {
        let n = batch.len();
        let ack = AckOnDrop {
            queue: &inner.queue,
            n,
        };
        inner.stats.batches.fetch_add(1, Ordering::SeqCst);
        inner
            .stats
            .max_coalesced
            .fetch_max(n as u64, Ordering::SeqCst);
        let prepared = Arc::clone(&batch[0].prepared);
        let inputs: Vec<&Tensor<i8>> = batch.iter().map(|p| &p.input).collect();
        match prepared.run_batch(&inputs) {
            Ok(runs) => {
                for (pending, run) in batch.into_iter().zip(runs) {
                    inner.stats.completed.fetch_add(1, Ordering::SeqCst);
                    let result = InferenceResult {
                        id: pending.id,
                        model: pending.model,
                        output: run.output,
                        sim_cycles: run.matmul_compute_cycles,
                        batch_size: n,
                        latency: pending.submitted.elapsed(),
                    };
                    pending.fulfill(Ok(result));
                }
            }
            Err(e) => {
                // Submit-time shape validation leaves staging/kernel
                // errors as the only failures here; every rider of the
                // batch learns about it.
                for pending in batch {
                    inner.stats.failed.fetch_add(1, Ordering::SeqCst);
                    pending.fulfill(Err(ServeError::Run(e.clone())));
                }
            }
        }
        drop(ack); // acknowledge the batch (also runs if the above panics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nm_compiler::Target;
    use nm_core::quant::Requant;
    use nm_core::FcGeom;
    use nm_nn::layer::LinearLayer;
    use nm_nn::rng::XorShift;
    use nm_nn::GraphBuilder;

    fn tiny_prepared() -> Arc<PreparedGraph<'static>> {
        let mut b = GraphBuilder::new(&[16]);
        let layer = LinearLayer::new(
            FcGeom::new(16, 8).unwrap(),
            XorShift::new(3).fill_weights(16 * 8, 30),
            Requant::for_dot_len(16),
        )
        .unwrap();
        let out = b.linear(b.input(), layer).unwrap();
        let graph = Arc::new(b.finish(out).unwrap());
        let opts = Options::new(Target::DensePulpNn);
        Arc::new(PreparedGraph::prepare_shared(graph, &opts).unwrap())
    }

    /// The dead-consumer recovery path ([`PoisonOnPanic`] →
    /// [`cancel_queued`]): queued requests are canceled — their waiters
    /// unblock with [`ServeError::Canceled`] instead of hanging — and
    /// the queue ends closed, empty and drainable.
    #[test]
    fn cancel_queued_unblocks_waiters_with_canceled() {
        let prepared = tiny_prepared();
        let queue: BoundedQueue<Pending> = BoundedQueue::new(4);
        let slot = Arc::new(TicketSlot::default());
        let ticket = Ticket {
            id: 7,
            model: ModelId(0),
            slot: Arc::clone(&slot),
        };
        assert!(
            queue
                .push(Pending {
                    id: 7,
                    model: ModelId(0),
                    input: Tensor::from_vec(&[16], vec![0i8; 16]).unwrap(),
                    prepared,
                    slot: Some(slot),
                    submitted: Instant::now(),
                })
                .is_ok(),
            "queue admits the request"
        );
        std::thread::scope(|scope| {
            let waiter = scope.spawn(move || ticket.wait());
            cancel_queued(&queue);
            assert!(matches!(waiter.join().unwrap(), Err(ServeError::Canceled)));
        });
        assert!(queue.is_closed());
        assert!(queue.is_empty());
        queue.wait_idle(); // nothing in flight: returns immediately
    }
}
