//! The batched inference service: model registration, request
//! submission with backpressure and deadlines, a coalescing worker pool
//! with per-batch panic isolation, and the drain/shutdown protocol. See
//! the crate docs for the determinism contract and the failure model.

use crate::cache::{CacheError, CacheStats, ModelCache};
use crate::fault::{FaultAction, FaultPlan, FaultPoint};
use crate::metrics::{MetricsRegistry, MetricsSnapshot, ModelMetrics};
use crate::queue::{BoundedQueue, Popped, PushError};
use crate::supervisor::Supervisor;
use nm_compiler::{BatchPlan, ExecTier, Options, PreparedGraph};
use nm_core::{Error, Tensor};
use nm_nn::graph::Graph;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError, RwLock, Weak};
use std::time::{Duration, Instant};

/// Handle to a registered model (an index into the service's model
/// table; stable for the service's lifetime).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ModelId(pub usize);

/// Service sizing and fault-tolerance knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Bound of the submission queue; a submit against a full queue is
    /// shed ([`SubmitError::Shed`]), never buffered without limit.
    pub queue_capacity: usize,
    /// Maximum requests coalesced into one batch (same model,
    /// consecutive in the queue). `1` disables coalescing.
    pub max_batch: usize,
    /// Worker threads executing batches.
    pub workers: usize,
    /// The [`ExecTier`] every model in this service executes on. It is
    /// authoritative: [`Service::register`] overrides `Options::tier`
    /// with this value, so the cache key, the prepared artifact and
    /// every result of one service agree on a single tier. On
    /// [`ExecTier::Reference`]/[`ExecTier::Bulk`] results carry
    /// simulated cycles ([`InferenceResult::sim_cycles`] is `Some`); on
    /// [`ExecTier::Native`] cycles are not simulated and `sim_cycles`
    /// is `None`.
    pub tier: ExecTier,
    /// Worker respawns allowed over the service lifetime. Per-batch
    /// panics are contained without touching this budget; it is spent
    /// only when a worker *thread* dies (a panic escaping the batch
    /// isolation). Exhausting it poisons the service (admissions close,
    /// queued requests cancel) — see `crates/serve`'s failure model.
    pub restart_budget: u32,
    /// Base delay before a respawned worker starts; doubled per
    /// consecutive restart, capped at 32×. Kept small by default so
    /// tests stay fast — a production deployment facing real crash
    /// loops wants tens of milliseconds or more.
    pub restart_backoff: Duration,
    /// Deterministic fault injection plan ([`crate::fault`]); `None`
    /// (the default) costs nothing and injects nothing.
    pub fault_plan: Option<Arc<FaultPlan>>,
    /// Resident-byte budget for the prepared-model cache
    /// ([`crate::ModelCache`]); `None` (the default) is unbounded. With
    /// a budget, registering or re-resolving a model may evict the
    /// least-recently-used *unpinned* cached artifact — in-flight work
    /// keeps its own `Arc` and is never invalidated — and a model that
    /// cannot fit at all is refused with
    /// [`ServeError::CacheOverBudget`].
    pub cache_budget: Option<usize>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            queue_capacity: 64,
            max_batch: 8,
            workers: 2,
            tier: ExecTier::Bulk,
            restart_budget: 8,
            restart_backoff: Duration::from_millis(1),
            fault_plan: None,
            cache_budget: None,
        }
    }
}

/// A [`ServiceConfig`] value [`Service::try_start`] refuses: each
/// variant names the field that would deadlock the service or reject
/// every request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// `workers == 0`: nothing would ever pop the queue.
    ZeroWorkers,
    /// `max_batch == 0`: no dispatch could carry a request.
    ZeroMaxBatch,
    /// `queue_capacity == 0`: every submit would shed.
    ZeroQueueCapacity,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroWorkers => write!(f, "need at least one worker"),
            ConfigError::ZeroMaxBatch => write!(f, "batch limit must be positive"),
            ConfigError::ZeroQueueCapacity => write!(f, "queue capacity must be positive"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// A request's scheduling class. Dispatch is earliest-deadline-first
/// *within* a class, classes in this order; under capacity pressure the
/// queue sheds strictly lower classes first — a full queue displaces
/// queued [`BestEffort`](Priority::BestEffort) work to admit an
/// [`Interactive`](Priority::Interactive) request
/// ([`ServeError::Preempted`] for the victim), and an Interactive
/// request is only ever shed when no lower-class request occupies a
/// slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Latency-sensitive foreground traffic: dispatched first, shed
    /// last.
    Interactive,
    /// The default class — plain [`Service::submit`] traffic.
    #[default]
    Batch,
    /// Opportunistic background work: first to yield its queue slot.
    BestEffort,
}

impl Priority {
    /// Every class, most to least urgent.
    pub const ALL: [Priority; 3] = [Priority::Interactive, Priority::Batch, Priority::BestEffort];

    /// The class's scheduling band: 0 is most urgent. Also the index
    /// into [`ServiceStats::shed_full_by_class`].
    pub fn rank(self) -> usize {
        match self {
            Priority::Interactive => 0,
            Priority::Batch => 1,
            Priority::BestEffort => 2,
        }
    }

    /// Short stable label for logs and bench summaries.
    pub fn label(self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Batch => "batch",
            Priority::BestEffort => "best-effort",
        }
    }
}

/// Why a submission was rejected. Every rejection is reported to the
/// caller — the service never accepts a request it will not answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is full of same-or-higher-priority work; the
    /// request was shed (backpressure). Counted in
    /// [`ServiceStats::shed`] (the `full` shed class, broken down per
    /// priority in [`ServiceStats::shed_full_by_class`]). A full queue
    /// holding strictly lower-priority work displaces a victim instead
    /// of shedding the newcomer.
    Shed {
        /// The queue bound that was hit.
        capacity: usize,
    },
    /// The service is shutting down cleanly and admits no new work.
    Closed,
    /// The service poisoned itself (restart-budget exhaustion or a
    /// failed respawn): admissions are closed for good and queued work
    /// was canceled. Distinct from [`Closed`](SubmitError::Closed) so
    /// a caller can tell orderly shutdown from a service that died
    /// under it.
    Poisoned,
    /// The input does not match the model's input shape.
    InvalidInput(String),
    /// No model is registered under this id.
    UnknownModel(ModelId),
    /// The model is registered but its evicted artifact could not be
    /// re-prepared at submit time (the cache's byte budget is fully
    /// pinned, or preparation failed). The request was not accepted.
    ModelUnavailable {
        /// The model whose artifact could not be resolved.
        model: ModelId,
        /// Why the re-preparation failed.
        reason: String,
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Shed { capacity } => {
                write!(f, "request shed: queue at capacity {capacity}")
            }
            SubmitError::Closed => write!(f, "service closed"),
            SubmitError::Poisoned => write!(f, "service poisoned: restart budget exhausted"),
            SubmitError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            SubmitError::UnknownModel(id) => write!(f, "unknown model {id:?}"),
            SubmitError::ModelUnavailable { model, reason } => {
                write!(f, "model {model:?} unavailable: {reason}")
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why an accepted request did not produce a result. Every accepted
/// request resolves to exactly one of a result or one of these — never
/// a hang (enforced by the chaos suite, `tests/tests/serve_chaos.rs`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The emulated execution failed (staging/kernel error).
    Run(Error),
    /// The request was canceled after acceptance: its worker died with
    /// the batch in hand, or the service shut down / was poisoned
    /// before executing it. Counted in [`ServiceStats::shed_canceled`].
    Canceled,
    /// Execution of *this request* panicked — both the coalesced batch
    /// pass and the request's individual isolation re-run. Carries the
    /// re-run's panic message. Other requests of the same batch are
    /// unaffected (re-run individually, bit+cycle identical results).
    WorkerPanic(String),
    /// The request's deadline expired before dispatch (shed at the
    /// queue, counted in [`ServiceStats::shed_expired`]) — or, from
    /// [`Ticket::wait_timeout`], the caller's wait bound elapsed first.
    DeadlineExceeded,
    /// The request's queue slot was displaced by a strictly
    /// higher-priority submit under capacity pressure (counted in
    /// [`ServiceStats::shed_preempted`]). The request never ran;
    /// resubmitting later (or at a higher class) is the caller's call.
    Preempted,
    /// Registration-time refusal: the prepared model cannot fit the
    /// cache's byte budget ([`ServiceConfig::cache_budget`]) even after
    /// evicting every unpinned entry. Returned by [`Service::register`];
    /// an accepted request never resolves to this.
    CacheOverBudget {
        /// Resident bytes the refused model needs
        /// (`PreparedGraph::resident_bytes`).
        required: usize,
        /// The configured cache budget.
        budget: usize,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Run(e) => write!(f, "execution failed: {e}"),
            ServeError::Canceled => write!(f, "request canceled before execution"),
            ServeError::WorkerPanic(msg) => write!(f, "execution panicked: {msg}"),
            ServeError::DeadlineExceeded => write!(f, "deadline exceeded"),
            ServeError::Preempted => {
                write!(f, "queue slot displaced by a higher-priority request")
            }
            ServeError::CacheOverBudget { required, budget } => write!(
                f,
                "model needs {required} resident bytes but the cache budget is {budget}"
            ),
        }
    }
}

impl std::error::Error for ServeError {}

/// Maps a cache refusal onto the service's error vocabulary.
fn serve_error_from_cache(e: CacheError) -> ServeError {
    match e {
        CacheError::Prepare(e) => ServeError::Run(e),
        CacheError::OverBudget { required, budget } => {
            ServeError::CacheOverBudget { required, budget }
        }
    }
}

/// One fulfilled request.
#[derive(Debug, Clone)]
pub struct InferenceResult {
    /// The request id ([`Ticket::id`]).
    pub id: u64,
    /// The model that served it.
    pub model: ModelId,
    /// The network output — bit-identical to a sequential
    /// [`PreparedGraph::run`] of the same input.
    pub output: Tensor<i8>,
    /// Deterministic per-request simulated compute cycles — identical
    /// to a sequential run's, whatever batch the request rode in.
    /// `Some` on the cycle-accurate tiers ([`ExecTier::Reference`],
    /// [`ExecTier::Bulk`]); `None` on [`ExecTier::Native`], where
    /// cycles are not simulated (wall-clock [`InferenceResult::latency`]
    /// is the only timing quantity there).
    pub sim_cycles: Option<u64>,
    /// Requests that rode in the batch that served this one
    /// (informational; `1` when the request was re-run individually
    /// after a batch-level panic). A batch size above one does **not**
    /// by itself mean any work was shared — `mode` is the authority on
    /// that.
    pub batch_size: usize,
    /// The [`BatchPlan`] the batch actually executed under:
    /// [`BatchPlan::Sequential`] (with the reason) when the requests
    /// ran one by one, the sharing plan otherwise.
    pub mode: BatchPlan,
    /// Wall-clock submit-to-completion latency (informational,
    /// host-dependent — the deterministic quantity is `sim_cycles`).
    ///
    /// Attribution is the same on every fulfill path: measured at
    /// fulfill time, so it covers the queue wait plus the *whole*
    /// coalesced batch's compute — every rider of one batch is charged
    /// the full batch pass, not a per-request slice. On the
    /// panic-isolation path the re-run's latency additionally includes
    /// the failed batch pass and any earlier re-runs of the same batch.
    /// Within one batch, requests fulfill in queue order, so their
    /// fulfill instants (submit time plus latency) are monotone
    /// non-decreasing in fulfill order; each latency is trivially
    /// non-negative (`Instant::elapsed` saturates). The same reading
    /// feeds the per-model histogram exported by
    /// [`Service::metrics_text`].
    pub latency: Duration,
}

#[derive(Debug, Default)]
struct TicketSlot {
    result: Mutex<Option<Result<InferenceResult, ServeError>>>,
    done: Condvar,
}

/// The caller's handle to an accepted request; [`wait`](Ticket::wait)
/// blocks until a worker fulfills it, [`wait_timeout`](Ticket::wait_timeout)
/// bounds the wait.
#[derive(Debug)]
pub struct Ticket {
    id: u64,
    model: ModelId,
    slot: Arc<TicketSlot>,
}

impl Ticket {
    /// The service-assigned request id (unique per service instance).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The model the request targets.
    pub fn model(&self) -> ModelId {
        self.model
    }

    /// Blocks until the request completes.
    ///
    /// A poisoned slot lock (the fulfilling side panicked at exactly
    /// the wrong instant) is recovered, not propagated: fulfillment is
    /// a single `Option` store, so the recovered state is always either
    /// "not yet" or a complete result.
    ///
    /// # Errors
    /// [`ServeError::Run`]/[`ServeError::WorkerPanic`] when execution
    /// failed, [`ServeError::DeadlineExceeded`] when the request's
    /// deadline shed it, [`ServeError::Canceled`] when the service
    /// stopped before running it.
    pub fn wait(self) -> Result<InferenceResult, ServeError> {
        let mut slot = self
            .slot
            .result
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            slot = self
                .slot
                .done
                .wait(slot)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// [`wait`](Ticket::wait) bounded by `timeout`: resolves to
    /// [`ServeError::DeadlineExceeded`] if no result arrives in time.
    ///
    /// Giving up does **not** cancel the request server-side — it still
    /// runs (or sheds on its own deadline) and its eventual result is
    /// discarded when the last slot reference drops; nothing leaks and
    /// no waiter hangs. Pair with
    /// [`Service::submit_with_deadline`] to also stop the service from
    /// spending compute on it.
    ///
    /// # Errors
    /// As [`wait`](Ticket::wait), plus [`ServeError::DeadlineExceeded`]
    /// on timeout.
    pub fn wait_timeout(self, timeout: Duration) -> Result<InferenceResult, ServeError> {
        // A timeout too large to represent as an instant (`Duration::MAX`
        // as "no timeout") saturates to an unbounded wait instead of
        // overflowing — `Instant + Duration` would panic here.
        let Some(give_up) = Instant::now().checked_add(timeout) else {
            return self.wait();
        };
        let mut slot = self
            .slot
            .result
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            // Spurious-wakeup discipline: the predicate re-checks above
            // and the *remaining* time is recomputed from the absolute
            // deadline — a storm of stray notifies can never extend the
            // wait past `timeout` (pinned by
            // `spurious_wakeups_do_not_extend_the_timeout`).
            let now = Instant::now();
            if now >= give_up {
                return Err(ServeError::DeadlineExceeded);
            }
            let (guard, _timed_out) = self
                .slot
                .done
                .wait_timeout(slot, give_up - now)
                .unwrap_or_else(PoisonError::into_inner);
            slot = guard;
        }
    }
}

/// An accepted request travelling through the queue. Fulfillment is
/// linear: exactly one of [`fulfill`](Pending::fulfill) or the drop
/// guard (which reports [`ServeError::Canceled`] and counts the
/// `canceled` shed class) resolves the ticket, so a waiting caller can
/// never hang on a dropped request — even when the drop happens inside
/// a dying worker's unwind.
#[derive(Debug)]
pub(crate) struct Pending {
    id: u64,
    model: ModelId,
    input: Tensor<i8>,
    /// The prepared artifact resolved at submit time. Carrying it here
    /// (instead of re-resolving `model` in the worker) lets the batcher
    /// coalesce by *artifact* identity: two [`ModelId`]s aliasing the
    /// same cached model — re-registrations share one prepared graph —
    /// still batch together, and the worker needs no model-table lock.
    prepared: Arc<PreparedGraph<'static>>,
    slot: Option<Arc<TicketSlot>>,
    submitted: Instant,
    /// Shed the request instead of dispatching it past this instant.
    deadline: Option<Instant>,
    /// Scheduling class: dispatch order and shed policy (see
    /// [`Priority`]).
    priority: Priority,
    /// Shared counters, so the drop guard can record the cancellation
    /// wherever it fires (worker unwind, queue cancel, service drop).
    stats: Arc<AtomicStats>,
    /// The request's per-model metric slot (same lifetime rationale as
    /// `stats`: the drop guard and the fulfill paths count into it
    /// wherever they run).
    metrics: Arc<ModelMetrics>,
}

/// The queue dispatch order: priority class first, then
/// earliest-deadline-first within the class (deadline-less requests
/// rank after deadlined ones of their class, FIFO by submit time), with
/// the unique request id as the final tiebreak so the order is total
/// and two identical queues always dispatch identically.
fn dispatch_order(p: &Pending) -> (usize, bool, Instant, u64) {
    (
        p.priority.rank(),
        p.deadline.is_none(),
        p.deadline.unwrap_or(p.submitted),
        p.id,
    )
}

impl Pending {
    fn fulfill(mut self, result: Result<InferenceResult, ServeError>) {
        let Some(slot) = self.slot.take() else { return };
        *slot.result.lock().unwrap_or_else(PoisonError::into_inner) = Some(result);
        slot.done.notify_all();
    }
}

impl Drop for Pending {
    fn drop(&mut self) {
        if let Some(slot) = self.slot.take() {
            self.stats.shed_canceled.fetch_add(1, Ordering::SeqCst);
            self.metrics.record_canceled();
            *slot.result.lock().unwrap_or_else(PoisonError::into_inner) =
                Some(Err(ServeError::Canceled));
            slot.done.notify_all();
        }
    }
}

/// Monotonic service counters; read them as a consistent snapshot via
/// [`Service::stats`] after [`Service::drain`] (mid-flight reads are
/// individually accurate but may straddle a batch).
///
/// Accounting invariant (after a drain): every *accepted* request lands
/// in exactly one of `completed`, `failed`, `shed_expired`,
/// `shed_canceled` or `shed_preempted`, so `submitted == completed +
/// failed + shed_expired + shed_canceled + shed_preempted`; rejected
/// submissions are the caller's tally (`shed` for the `full` class,
/// plus the returned `Closed`/`Poisoned`/validation errors).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceStats {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests fulfilled with a result.
    pub completed: u64,
    /// Requests fulfilled with an execution error
    /// ([`ServeError::Run`] or [`ServeError::WorkerPanic`]).
    pub failed: u64,
    /// Shed class `full`: requests refused at the full queue (reported
    /// to the submitter, see [`SubmitError::Shed`]; never accepted).
    pub shed: u64,
    /// `shed` broken down by the rejected request's [`Priority`]
    /// (indexed by [`Priority::rank`]). The displacement policy makes
    /// `shed_full_by_class[0]` structurally zero while any lower class
    /// occupies a queue slot — the overload soak pins exactly that.
    pub shed_full_by_class: [u64; 3],
    /// Shed class `expired`: accepted requests shed at dispatch because
    /// their deadline had passed ([`ServeError::DeadlineExceeded`]).
    pub shed_expired: u64,
    /// Shed class `canceled`: accepted requests resolved
    /// [`ServeError::Canceled`] (worker death with the batch in hand,
    /// poisoning, or shutdown racing the queue).
    pub shed_canceled: u64,
    /// Shed class `preempted`: accepted requests whose queue slot was
    /// displaced by a higher-priority submit ([`ServeError::Preempted`]).
    pub shed_preempted: u64,
    /// Panics caught by the per-batch isolation (batch passes and
    /// individual re-runs).
    pub worker_panics: u64,
    /// Worker threads respawned by the supervisor.
    pub restarts: u64,
    /// Batches executed.
    pub batches: u64,
    /// Largest batch coalesced so far.
    pub max_coalesced: u64,
}

#[derive(Debug, Default)]
pub(crate) struct AtomicStats {
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    shed: AtomicU64,
    shed_full_by_class: [AtomicU64; 3],
    shed_expired: AtomicU64,
    shed_canceled: AtomicU64,
    shed_preempted: AtomicU64,
    worker_panics: AtomicU64,
    pub(crate) restarts: AtomicU64,
    batches: AtomicU64,
    max_coalesced: AtomicU64,
}

impl AtomicStats {
    fn snapshot(&self) -> ServiceStats {
        // Read order matters for a mid-flight snapshot: terminal classes
        // before `submitted` (which writers pre-increment), and the
        // per-class breakdown before the `shed` aggregate — so the
        // snapshot can undercount late arrivals but never shows a
        // terminal sum exceeding `submitted` or a breakdown exceeding
        // its aggregate.
        let completed = self.completed.load(Ordering::SeqCst);
        let failed = self.failed.load(Ordering::SeqCst);
        let shed_full_by_class = [
            self.shed_full_by_class[0].load(Ordering::SeqCst),
            self.shed_full_by_class[1].load(Ordering::SeqCst),
            self.shed_full_by_class[2].load(Ordering::SeqCst),
        ];
        let shed = self.shed.load(Ordering::SeqCst);
        let shed_expired = self.shed_expired.load(Ordering::SeqCst);
        let shed_canceled = self.shed_canceled.load(Ordering::SeqCst);
        let shed_preempted = self.shed_preempted.load(Ordering::SeqCst);
        let worker_panics = self.worker_panics.load(Ordering::SeqCst);
        let restarts = self.restarts.load(Ordering::SeqCst);
        let batches = self.batches.load(Ordering::SeqCst);
        let max_coalesced = self.max_coalesced.load(Ordering::SeqCst);
        let submitted = self.submitted.load(Ordering::SeqCst);
        ServiceStats {
            submitted,
            completed,
            failed,
            shed,
            shed_full_by_class,
            shed_expired,
            shed_canceled,
            shed_preempted,
            worker_panics,
            restarts,
            batches,
            max_coalesced,
        }
    }
}

/// One registered model. The table keeps everything needed to
/// *re-resolve* the artifact — name, graph, final options — and only a
/// [`Weak`] to the artifact itself, so an idle registered model does
/// not pin its cache entry: the cache's byte budget governs artifact
/// lifetime, and a model evicted while idle is transparently
/// re-prepared (a cache miss) on its next submit.
#[derive(Debug)]
struct ModelSlot {
    name: String,
    graph: Arc<Graph>,
    opts: Options,
    prepared: Mutex<Weak<PreparedGraph<'static>>>,
    /// The per-model metric slot, shared with every in-flight request
    /// of this model. Keyed by name in the registry, so aliased
    /// registrations feed one series.
    metrics: Arc<ModelMetrics>,
}

#[derive(Debug)]
pub(crate) struct ServiceInner {
    pub(crate) config: ServiceConfig,
    pub(crate) queue: BoundedQueue<Pending>,
    models: RwLock<Vec<ModelSlot>>,
    cache: ModelCache,
    next_id: AtomicU64,
    pub(crate) stats: Arc<AtomicStats>,
    pub(crate) metrics: MetricsRegistry,
    pub(crate) supervisor: Supervisor,
}

/// The batched inference service. Construction spawns the supervised
/// worker pool; [`register`](Service::register) adds models (cached by
/// (model, format, options)), [`submit`](Service::submit) /
/// [`submit_with_deadline`](Service::submit_with_deadline) enqueue
/// requests, [`shutdown`](Service::shutdown) closes admissions, drains
/// and joins. Dropping the service performs the same orderly shutdown —
/// including during another panic's unwind, where it must not
/// double-panic or leave a waiter parked.
#[derive(Debug)]
pub struct Service {
    inner: Arc<ServiceInner>,
}

impl Service {
    /// Starts the supervised worker pool.
    ///
    /// # Panics
    /// Panics on a zero `workers`, `max_batch` or `queue_capacity` —
    /// all three would deadlock or reject everything; use
    /// [`try_start`](Self::try_start) to get the refusal as a
    /// [`ConfigError`] instead — and if the initial worker threads
    /// cannot be spawned at all.
    pub fn start(config: ServiceConfig) -> Self {
        match Self::try_start(config) {
            Ok(service) => service,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`start`](Self::start) that reports an unusable configuration as
    /// a [`ConfigError`] instead of panicking — the embeddable entry
    /// point for hosts that assemble configs from external input.
    ///
    /// # Errors
    /// One [`ConfigError`] variant per refused field; nothing is
    /// spawned on failure.
    ///
    /// # Panics
    /// Still panics if the initial worker threads cannot be spawned at
    /// all (thread creation failing at startup is an environment
    /// failure, not a configuration one).
    pub fn try_start(config: ServiceConfig) -> Result<Self, ConfigError> {
        if config.workers == 0 {
            return Err(ConfigError::ZeroWorkers);
        }
        if config.max_batch == 0 {
            return Err(ConfigError::ZeroMaxBatch);
        }
        if config.queue_capacity == 0 {
            return Err(ConfigError::ZeroQueueCapacity);
        }
        let inner = Arc::new(ServiceInner {
            queue: BoundedQueue::new(config.queue_capacity),
            models: RwLock::new(Vec::new()),
            cache: ModelCache::configured(config.cache_budget, config.fault_plan.clone()),
            next_id: AtomicU64::new(0),
            stats: Arc::new(AtomicStats::default()),
            metrics: MetricsRegistry::default(),
            supervisor: Supervisor::new(),
            config,
        });
        for _ in 0..inner.config.workers {
            Supervisor::spawn_worker(&inner, Duration::ZERO)
                .unwrap_or_else(|e| panic!("spawn initial worker: {e}"));
        }
        Ok(Service { inner })
    }

    /// Registers `graph` under `name` with compilation `opts`, preparing
    /// it through the service's model cache (a re-registration with the
    /// same name and options reuses the cached artifact and returns a
    /// new id aliasing it). `opts.tier` is overridden by
    /// [`ServiceConfig::tier`] — one service runs one execution tier —
    /// so two registrations differing only in tier alias the same
    /// cached artifact.
    ///
    /// # Errors
    /// [`ServeError::Run`] propagates preparation failures (e.g.
    /// [`Error::OutOfMemory`] for a model whose minimum tile exceeds
    /// the L1 budget); [`ServeError::CacheOverBudget`] refuses a model
    /// that cannot fit [`ServiceConfig::cache_budget`] even after
    /// evicting every unpinned cached artifact. Nothing is registered
    /// in either case, and the cache and model table stay fully usable
    /// for subsequent registrations.
    pub fn register(
        &self,
        name: &str,
        graph: &Arc<Graph>,
        opts: &Options,
    ) -> Result<ModelId, ServeError> {
        let mut opts = *opts;
        opts.tier = self.inner.config.tier;
        let prepared = self
            .inner
            .cache
            .get_or_prepare(name, graph, &opts)
            .map_err(serve_error_from_cache)?;
        let mut models = self
            .inner
            .models
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        models.push(ModelSlot {
            name: name.to_string(),
            graph: Arc::clone(graph),
            opts,
            // Downgraded on purpose: a registered-but-idle model keeps
            // no strong ref, so the cache may evict it under budget
            // pressure; `resolve` re-prepares on demand.
            prepared: Mutex::new(Arc::downgrade(&prepared)),
            metrics: self.inner.metrics.handle(name),
        });
        Ok(ModelId(models.len() - 1))
    }

    /// The model's prepared artifact, upgraded from the slot's weak ref
    /// or — after an eviction — re-resolved through the cache (a miss
    /// that may itself evict colder models). The slot mutex serializes
    /// concurrent re-resolves of one model so an eviction storm costs
    /// one prepare, not one per waiter. Lock order is always models →
    /// slot → cache; the cache never takes the model table lock, so
    /// this cannot deadlock with `register`.
    fn resolve(
        &self,
        model: ModelId,
    ) -> Result<(Arc<PreparedGraph<'static>>, Arc<ModelMetrics>), SubmitError> {
        let models = self
            .inner
            .models
            .read()
            .unwrap_or_else(PoisonError::into_inner);
        let slot = models
            .get(model.0)
            .ok_or(SubmitError::UnknownModel(model))?;
        let metrics = Arc::clone(&slot.metrics);
        let mut weak = slot.prepared.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(prepared) = weak.upgrade() {
            return Ok((prepared, metrics));
        }
        match self
            .inner
            .cache
            .get_or_prepare(&slot.name, &slot.graph, &slot.opts)
        {
            Ok(prepared) => {
                *weak = Arc::downgrade(&prepared);
                Ok((prepared, metrics))
            }
            Err(e) => Err(SubmitError::ModelUnavailable {
                model,
                reason: e.to_string(),
            }),
        }
    }

    /// Submits one inference request at the default [`Priority::Batch`]
    /// class, returning a [`Ticket`] to wait on.
    ///
    /// # Errors
    /// See [`SubmitError`]; in particular a full queue sheds the request
    /// (reported, counted, never silently dropped) unless displacing a
    /// strictly lower-priority queued request can make room.
    pub fn submit(&self, model: ModelId, input: Tensor<i8>) -> Result<Ticket, SubmitError> {
        self.submit_with_deadline(model, input, None, Priority::Batch)
    }

    /// [`submit`](Service::submit) with an optional deadline and an
    /// explicit [`Priority`] class. A request still queued when
    /// `deadline` passes is shed at the next dispatch instead of
    /// executed — its ticket resolves [`ServeError::DeadlineExceeded`]
    /// and the shed lands in the `expired` class
    /// ([`ServiceStats::shed_expired`]). A request already handed to a
    /// worker runs to completion (dispatch is the shed point, not a
    /// preemption point). Dispatch is earliest-deadline-first within
    /// priority bands; a full queue displaces a strictly lower-priority
    /// queued request (resolved [`ServeError::Preempted`], counted in
    /// [`ServiceStats::shed_preempted`]) before shedding the newcomer.
    /// Pair with [`Ticket::wait_timeout`] to bound the caller side too.
    ///
    /// # Errors
    /// See [`SubmitError`]. An already-expired deadline is still
    /// accepted (and then shed at dispatch): the asynchronous shed path
    /// keeps one set of semantics instead of racing the clock at two
    /// admission points.
    pub fn submit_with_deadline(
        &self,
        model: ModelId,
        input: Tensor<i8>,
        deadline: Option<Instant>,
        priority: Priority,
    ) -> Result<Ticket, SubmitError> {
        let (prepared, metrics) = self.resolve(model)?;
        if input.shape() != prepared.graph().input_shape() {
            return Err(SubmitError::InvalidInput(format!(
                "input shape {:?} != model input {:?}",
                input.shape(),
                prepared.graph().input_shape()
            )));
        }
        let id = self.inner.next_id.fetch_add(1, Ordering::SeqCst);
        let slot = Arc::new(TicketSlot::default());
        let pending = Pending {
            id,
            model,
            input,
            prepared,
            slot: Some(Arc::clone(&slot)),
            submitted: Instant::now(),
            deadline,
            priority,
            stats: Arc::clone(&self.inner.stats),
            metrics: Arc::clone(&metrics),
        };
        // `submitted` is pre-incremented (global before per-model)
        // *before* the push: once the request is in the queue a worker
        // may complete it immediately, and a scrape racing that must
        // never see a terminal counter exceed `submitted`. A rejected
        // push undoes the increments in the opposite order (per-model
        // before global), keeping per-model <= global at every instant.
        self.inner.stats.submitted.fetch_add(1, Ordering::SeqCst);
        metrics.record_submitted();
        let push =
            self.inner
                .queue
                .push_or_displace(pending, |p| p.priority.rank(), dispatch_order);
        match push {
            Ok((_, displaced)) => {
                if let Some(victim) = displaced {
                    // The victim was accepted earlier (counted
                    // submitted); it resolves Preempted here, keeping
                    // the accounting invariant exact.
                    self.inner
                        .stats
                        .shed_preempted
                        .fetch_add(1, Ordering::SeqCst);
                    victim.metrics.record_preempted();
                    victim.fulfill(Err(ServeError::Preempted));
                }
                Ok(Ticket { id, model, slot })
            }
            Err(PushError::Full(rejected)) => {
                // Disarm the drop guard: the caller holds no ticket, so
                // nothing must be fulfilled — but the shed is counted
                // and reported, never silent.
                let mut rejected = rejected;
                rejected.slot = None;
                metrics.unrecord_submitted();
                self.inner.stats.submitted.fetch_sub(1, Ordering::SeqCst);
                self.inner.stats.shed.fetch_add(1, Ordering::SeqCst);
                self.inner.stats.shed_full_by_class[priority.rank()].fetch_add(1, Ordering::SeqCst);
                Err(SubmitError::Shed {
                    capacity: self.inner.config.queue_capacity,
                })
            }
            Err(PushError::Closed(rejected)) => {
                let mut rejected = rejected;
                rejected.slot = None;
                metrics.unrecord_submitted();
                self.inner.stats.submitted.fetch_sub(1, Ordering::SeqCst);
                if self.inner.supervisor.is_poisoned() {
                    Err(SubmitError::Poisoned)
                } else {
                    Err(SubmitError::Closed)
                }
            }
        }
    }

    /// Blocks until every accepted request has been fulfilled (queue
    /// empty, no batch in flight). Admissions stay open.
    pub fn drain(&self) {
        self.inner.queue.wait_idle();
    }

    /// Closes admissions without blocking: subsequent submits fail with
    /// [`SubmitError::Closed`], already-accepted requests still run to
    /// completion. The first half of the shutdown protocol, usable from
    /// any thread holding a shared reference.
    pub fn close(&self) {
        self.inner.queue.close();
    }

    /// Pauses the worker pool: submissions keep landing (up to the
    /// queue bound) but nothing is popped until [`resume`](Self::resume).
    /// This is the batch-shaping gate — enqueue a whole wave while
    /// paused and the coalescer sees the full same-model run at once,
    /// instead of whatever prefix won the race against the workers.
    /// Used by the serving benchmarks for comparable waves and by the
    /// deterministic coalescing tests; also the warm-up pattern for
    /// accepting traffic while models finish registering. Deadline
    /// shedding happens at dispatch, so a paused queue sheds nothing
    /// until resumed. [`close`](Self::close)/shutdown override a pause,
    /// so a paused service still drains and exits cleanly.
    pub fn pause(&self) {
        self.inner.queue.pause();
    }

    /// Resumes a [`pause`](Self::pause)d worker pool.
    pub fn resume(&self) {
        self.inner.queue.resume();
    }

    /// Orderly shutdown: closes admissions, lets the workers drain the
    /// queue, joins them and returns the final counters. Guaranteed to
    /// leave the queue empty with nothing in flight.
    pub fn shutdown(mut self) -> ServiceStats {
        self.close_and_join();
        let stats = self.inner.stats.snapshot();
        debug_assert!(self.inner.queue.is_empty());
        debug_assert_eq!(self.inner.queue.in_flight(), 0);
        stats
    }

    /// Current counters (see [`ServiceStats`] for read-consistency
    /// caveats while requests are in flight).
    pub fn stats(&self) -> ServiceStats {
        self.inner.stats.snapshot()
    }

    /// One consistent scrape of everything the service exports: the
    /// per-model counters and latency histograms, the queue-depth
    /// gauges (sampled under the queue mutex), the cache ledger and the
    /// service ledger. The read order (per-model first, `submitted`
    /// last) pairs with the increment order so even a scrape racing
    /// live traffic satisfies
    /// [`MetricsSnapshot::check_internal`]; after a
    /// [`drain`](Self::drain) the snapshot reconciles exactly
    /// ([`MetricsSnapshot::check_quiesced`]).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let models = self.inner.metrics.snapshot_models();
        let (depth, high_water) = self.inner.queue.depth_stats();
        let cache = self.inner.cache.stats();
        let service = self.inner.stats.snapshot();
        MetricsSnapshot {
            models,
            queue_depth: depth as u64,
            queue_depth_high_water: high_water as u64,
            cache,
            service,
        }
    }

    /// [`metrics_snapshot`](Self::metrics_snapshot) rendered in the
    /// Prometheus text exposition format — the scrapeable surface. The
    /// export is *gated*, not just printed:
    /// [`parse_text`](crate::metrics::parse_text) recovers the snapshot
    /// from the text, and the serving test suites assert the parsed
    /// ledgers equal [`stats`](Self::stats)/[`cache_stats`](Self::cache_stats)
    /// exactly. See the crate-level "Observability" section for the
    /// metric names and determinism caveats.
    pub fn metrics_text(&self) -> String {
        self.metrics_snapshot().render()
    }

    /// Whether a worker death exhausted
    /// [`ServiceConfig::restart_budget`] (or a respawn failed) and the
    /// service poisoned itself: admissions are closed, queued requests
    /// were canceled. A poisoned service is safe to query, drain and
    /// shut down — it just serves nothing anymore.
    pub fn is_poisoned(&self) -> bool {
        self.inner.supervisor.is_poisoned()
    }

    /// Models registered.
    pub fn model_count(&self) -> usize {
        self.inner
            .models
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Waiting requests (excludes batches already handed to workers).
    pub fn queue_depth(&self) -> usize {
        self.inner.queue.len()
    }

    /// Prepared-artifact cache counters and byte gauges, keyed by
    /// (model, format, options) — see [`CacheStats`] for the field
    /// semantics (a registration whose prepare *fails* counts in
    /// `failed_prepares`, never as a miss). Replaces the old positional
    /// `cache_counters() -> (u64, u64)` tuple.
    pub fn cache_stats(&self) -> CacheStats {
        self.inner.cache.stats()
    }

    /// Never panics: runs during `Drop`, which may itself run during
    /// another panic's unwind — a second panic there would abort the
    /// process and eat the original message. Worker panics were already
    /// accounted (contained per batch, or respawn/poison at the thread
    /// level), so the join swallows them instead of resurfacing.
    fn close_and_join(&mut self) {
        self.inner.queue.close();
        self.inner.supervisor.join_all();
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

/// Acknowledges a popped batch on every exit path — panics included.
/// [`BoundedQueue::wait_idle`]'s drain guarantee assumes `task_done`
/// always runs for popped items; without this guard, a dying worker
/// would leave `in_flight` stuck and wedge every drainer (its tickets
/// are canceled separately by the [`Pending`] drop guard).
struct AckOnDrop<'a> {
    queue: &'a BoundedQueue<Pending>,
    n: usize,
}

impl Drop for AckOnDrop<'_> {
    fn drop(&mut self) {
        self.queue.task_done(self.n);
    }
}

/// Closes `queue` and cancels every request still in it (their
/// [`Pending`] drop guards resolve the tickets `Canceled` and count the
/// `canceled` shed class), leaving the queue closed, empty and — once
/// live batches acknowledge — idle. The supervisor's poisoning path and
/// the tests share this.
pub(crate) fn cancel_queued(queue: &BoundedQueue<Pending>) {
    queue.close();
    // All items share the unit key, so each pop drains a maximal run;
    // the loop ends when the closed queue reports empty.
    while let Some(batch) = queue.pop_batch(usize::MAX, |_| ()) {
        let n = batch.len();
        drop(batch);
        queue.task_done(n);
    }
}

/// Best-effort text of a panic payload, for [`ServeError::WorkerPanic`].
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked with a non-string payload".to_string()
    }
}

/// The worker loop: pop a coalesced same-model batch (shedding expired
/// requests at dispatch), execute it under panic isolation, fulfill
/// every ticket, acknowledge. Runs under the supervisor's respawn guard
/// — anything escaping this function's containment kills only this
/// thread, and the supervisor decides between respawn and poisoning.
pub(crate) fn worker_loop(inner: &ServiceInner) {
    let plan = inner.config.fault_plan.as_deref();
    // Coalescing keys on the prepared *artifact*, not the ModelId:
    // aliased registrations of one cached model batch together.
    while let Some(popped) = inner.queue.pop_batch_or_shed(
        inner.config.max_batch,
        |p: &Pending| Arc::as_ptr(&p.prepared),
        |p: &Pending| p.deadline.is_some_and(|d| Instant::now() >= d),
        dispatch_order,
    ) {
        let Popped { batch, expired } = popped;
        let ack = AckOnDrop {
            queue: &inner.queue,
            n: batch.len() + expired.len(),
        };
        for pending in expired {
            inner.stats.shed_expired.fetch_add(1, Ordering::SeqCst);
            pending.metrics.record_expired();
            pending.fulfill(Err(ServeError::DeadlineExceeded));
        }
        if !batch.is_empty() {
            let injected = plan.and_then(|p| p.check(FaultPoint::BatchRun));
            if injected == Some(FaultAction::KillWorker) {
                // Deliberately outside the batch isolation: this panic
                // unwinds the worker thread. The held batch cancels via
                // the Pending drop guards, the ack guard releases the
                // in-flight count, and the supervisor's respawn guard
                // spends restart budget on a replacement.
                panic!("injected fault: batch_run kill-worker");
            }
            run_batch_isolated(inner, batch, injected);
        }
        drop(ack); // acknowledge (also runs if the above panics)
    }
}

/// Executes one coalesced batch with panic isolation: a panic anywhere
/// in the batch pass fails nobody outright — every request is re-run
/// individually (bit+cycle identical to a sequential run by the
/// determinism contract), and only a request whose *own* re-run panics
/// resolves [`ServeError::WorkerPanic`].
fn run_batch_isolated(inner: &ServiceInner, batch: Vec<Pending>, injected: Option<FaultAction>) {
    let n = batch.len();
    let Some(first) = batch.first() else { return };
    let prepared = Arc::clone(&first.prepared);
    // Cycles are only defined on the cycle-accurate tiers; the native
    // tier reports `None` rather than a meaningless zero.
    let cycle_accurate = inner.config.tier.is_cycle_accurate();
    inner.stats.batches.fetch_add(1, Ordering::SeqCst);
    inner
        .stats
        .max_coalesced
        .fetch_max(n as u64, Ordering::SeqCst);
    let outcome = {
        let inputs: Vec<&Tensor<i8>> = batch.iter().map(|p| &p.input).collect();
        match injected {
            Some(FaultAction::Error) => Ok(Err(Error::Unsupported(
                "injected fault: batch_run".to_string(),
            ))),
            Some(_) => catch_unwind(AssertUnwindSafe(|| -> nm_core::Result<_> {
                panic!("injected fault: batch_run")
            })),
            None => catch_unwind(AssertUnwindSafe(|| prepared.run_batch(&inputs))),
        }
    };
    match outcome {
        Ok(Ok(runs)) => {
            for (pending, run) in batch.into_iter().zip(runs) {
                // One reading per request: the same latency feeds the
                // result and the per-model histogram (global counter
                // first, then the per-model slot — the torn-scrape
                // write order).
                let latency = pending.submitted.elapsed();
                inner.stats.completed.fetch_add(1, Ordering::SeqCst);
                pending.metrics.record_completed(latency);
                let result = InferenceResult {
                    id: pending.id,
                    model: pending.model,
                    output: run.output,
                    sim_cycles: cycle_accurate.then_some(run.matmul_compute_cycles),
                    batch_size: n,
                    mode: prepared.batch_plan().executed(n),
                    latency,
                };
                pending.fulfill(Ok(result));
            }
        }
        Ok(Err(e)) => {
            // Submit-time shape validation leaves staging/kernel errors
            // as the only failures here; every rider of the batch
            // learns about it.
            for pending in batch {
                inner.stats.failed.fetch_add(1, Ordering::SeqCst);
                pending.metrics.record_failed();
                pending.fulfill(Err(ServeError::Run(e.clone())));
            }
        }
        Err(_batch_panic) => {
            // The batch pass panicked. Isolate: each request runs alone
            // (its result then bit+cycle identical to the sequential
            // baseline), and only a request that panics *again* on its
            // own fails — with its own message.
            inner.stats.worker_panics.fetch_add(1, Ordering::SeqCst);
            let plan = inner.config.fault_plan.as_deref();
            for pending in batch {
                let one = catch_unwind(AssertUnwindSafe(|| {
                    // Re-runs are batch_run occurrences too, so a plan
                    // can target the retry path deterministically. Any
                    // armed action panics here — inside the isolation.
                    if let Some(plan) = plan {
                        if plan.check(FaultPoint::BatchRun).is_some() {
                            panic!("injected fault: batch_run (isolation re-run)");
                        }
                    }
                    prepared.run(&pending.input)
                }));
                match one {
                    Ok(Ok(run)) => {
                        // Same attribution as the batch path: measured
                        // at fulfill, so it additionally covers the
                        // failed batch pass and earlier re-runs of the
                        // same batch (see `InferenceResult::latency`).
                        let latency = pending.submitted.elapsed();
                        inner.stats.completed.fetch_add(1, Ordering::SeqCst);
                        pending.metrics.record_completed(latency);
                        let result = InferenceResult {
                            id: pending.id,
                            model: pending.model,
                            output: run.output,
                            sim_cycles: cycle_accurate.then_some(run.matmul_compute_cycles),
                            batch_size: 1,
                            mode: prepared.batch_plan().executed(1),
                            latency,
                        };
                        pending.fulfill(Ok(result));
                    }
                    Ok(Err(e)) => {
                        inner.stats.failed.fetch_add(1, Ordering::SeqCst);
                        pending.metrics.record_failed();
                        pending.fulfill(Err(ServeError::Run(e)));
                    }
                    Err(payload) => {
                        inner.stats.worker_panics.fetch_add(1, Ordering::SeqCst);
                        inner.stats.failed.fetch_add(1, Ordering::SeqCst);
                        pending.metrics.record_failed();
                        pending.fulfill(Err(ServeError::WorkerPanic(panic_message(&*payload))));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nm_compiler::Target;
    use nm_core::quant::Requant;
    use nm_core::FcGeom;
    use nm_nn::layer::LinearLayer;
    use nm_nn::rng::XorShift;
    use nm_nn::GraphBuilder;

    fn tiny_prepared() -> Arc<PreparedGraph<'static>> {
        let mut b = GraphBuilder::new(&[16]);
        let layer = LinearLayer::new(
            FcGeom::new(16, 8).unwrap(),
            XorShift::new(3).fill_weights(16 * 8, 30),
            Requant::for_dot_len(16),
        )
        .unwrap();
        let out = b.linear(b.input(), layer).unwrap();
        let graph = Arc::new(b.finish(out).unwrap());
        let opts = Options::new(Target::DensePulpNn);
        Arc::new(PreparedGraph::prepare_shared(graph, &opts).unwrap())
    }

    fn queued_pending(queue: &BoundedQueue<Pending>, stats: &Arc<AtomicStats>, id: u64) -> Ticket {
        let prepared = tiny_prepared();
        let slot = Arc::new(TicketSlot::default());
        let ticket = Ticket {
            id,
            model: ModelId(0),
            slot: Arc::clone(&slot),
        };
        assert!(
            queue
                .push(Pending {
                    id,
                    model: ModelId(0),
                    input: Tensor::from_vec(&[16], vec![0i8; 16]).unwrap(),
                    prepared,
                    slot: Some(slot),
                    submitted: Instant::now(),
                    deadline: None,
                    priority: Priority::Batch,
                    stats: Arc::clone(stats),
                    metrics: MetricsRegistry::default().handle("test"),
                })
                .is_ok(),
            "queue admits the request"
        );
        ticket
    }

    /// The dead-consumer recovery path (supervisor poisoning →
    /// [`cancel_queued`]): queued requests are canceled — their waiters
    /// unblock with [`ServeError::Canceled`] instead of hanging, the
    /// `canceled` shed class counts them — and the queue ends closed,
    /// empty and drainable.
    #[test]
    fn cancel_queued_unblocks_waiters_with_canceled() {
        let queue: BoundedQueue<Pending> = BoundedQueue::new(4);
        let stats = Arc::new(AtomicStats::default());
        let ticket = queued_pending(&queue, &stats, 7);
        std::thread::scope(|scope| {
            let waiter = scope.spawn(move || ticket.wait());
            cancel_queued(&queue);
            assert!(matches!(waiter.join().unwrap(), Err(ServeError::Canceled)));
        });
        assert!(queue.is_closed());
        assert!(queue.is_empty());
        assert_eq!(stats.snapshot().shed_canceled, 1, "canceled class counted");
        queue.wait_idle(); // nothing in flight: returns immediately
    }

    /// `wait_timeout` must bound the wait on an unfulfilled ticket with
    /// [`ServeError::DeadlineExceeded`], and the eventual fulfillment
    /// of the abandoned request must not hang or leak — the slot simply
    /// absorbs the discarded result.
    #[test]
    fn wait_timeout_bounds_the_wait_without_leaking() {
        let queue: BoundedQueue<Pending> = BoundedQueue::new(4);
        let stats = Arc::new(AtomicStats::default());
        let ticket = queued_pending(&queue, &stats, 1);
        let t = Instant::now();
        assert!(matches!(
            ticket.wait_timeout(Duration::from_millis(20)),
            Err(ServeError::DeadlineExceeded)
        ));
        assert!(t.elapsed() >= Duration::from_millis(20));
        // The abandoned request is still resolvable: cancel it and
        // observe nothing panics with the ticket side already gone.
        cancel_queued(&queue);
        assert_eq!(stats.snapshot().shed_canceled, 1);
    }

    /// Regression for the `Instant + Duration` overflow panic:
    /// `wait_timeout(Duration::MAX)` must behave as "no timeout" — the
    /// waiter blocks (no panic at call time) until the request resolves.
    /// Here the resolution is a cancellation arriving well after the
    /// call, proving the waiter survived the interval where the old
    /// code had already panicked.
    #[test]
    fn wait_timeout_duration_max_means_wait_forever() {
        let queue: BoundedQueue<Pending> = BoundedQueue::new(4);
        let stats = Arc::new(AtomicStats::default());
        let ticket = queued_pending(&queue, &stats, 42);
        std::thread::scope(|scope| {
            let waiter = scope.spawn(move || ticket.wait_timeout(Duration::MAX));
            std::thread::sleep(Duration::from_millis(30));
            assert!(!waiter.is_finished(), "the huge timeout must not fire");
            cancel_queued(&queue);
            assert!(matches!(waiter.join().unwrap(), Err(ServeError::Canceled)));
        });
    }

    /// Pins the spurious-wakeup discipline of `wait_timeout`: a waiter
    /// bombarded with stray notifies (no result stored) must still time
    /// out on the original schedule — each wakeup re-checks the
    /// predicate and re-waits only the *remaining* time, never the full
    /// timeout again.
    #[test]
    fn spurious_wakeups_do_not_extend_the_timeout() {
        let slot = Arc::new(TicketSlot::default());
        let ticket = Ticket {
            id: 9,
            model: ModelId(0),
            slot: Arc::clone(&slot),
        };
        let timeout = Duration::from_millis(100);
        std::thread::scope(|scope| {
            let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
            let notifier = {
                let slot = Arc::clone(&slot);
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    while !stop.load(Ordering::SeqCst) {
                        slot.done.notify_all();
                        std::thread::sleep(Duration::from_millis(2));
                    }
                })
            };
            let start = Instant::now();
            let got = ticket.wait_timeout(timeout);
            let waited = start.elapsed();
            stop.store(true, Ordering::SeqCst);
            notifier.join().expect("notifier exits");
            assert!(matches!(got, Err(ServeError::DeadlineExceeded)));
            assert!(waited >= timeout, "timed out early at {waited:?}");
            // ~50 notifies land during the wait; re-waiting the full
            // timeout per notify would take seconds. Generous bound for
            // loaded CI hosts.
            assert!(
                waited < Duration::from_secs(5),
                "stray notifies extended the wait to {waited:?}"
            );
        });
    }

    /// One regression per refused field: `try_start` names the exact
    /// zero knob instead of panicking, and a valid config still starts.
    #[test]
    fn try_start_refuses_each_zero_field_by_name() {
        let base = ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        };
        let cases = [
            (
                ServiceConfig {
                    workers: 0,
                    ..base.clone()
                },
                ConfigError::ZeroWorkers,
            ),
            (
                ServiceConfig {
                    max_batch: 0,
                    ..base.clone()
                },
                ConfigError::ZeroMaxBatch,
            ),
            (
                ServiceConfig {
                    queue_capacity: 0,
                    ..base.clone()
                },
                ConfigError::ZeroQueueCapacity,
            ),
        ];
        for (config, want) in cases {
            match Service::try_start(config) {
                Err(got) => assert_eq!(got, want),
                Ok(_) => panic!("expected {want:?}"),
            }
        }
        let service = Service::try_start(base).expect("valid config starts");
        drop(service); // orderly shutdown of the zero-model service
    }

    /// `start` routes through `try_start`: a zero field still panics
    /// (the documented legacy contract) with the ConfigError's message.
    #[test]
    #[should_panic(expected = "need at least one worker")]
    fn start_panics_on_zero_workers() {
        let _ = Service::start(ServiceConfig {
            workers: 0,
            ..ServiceConfig::default()
        });
    }
}
