//! The prepared-model cache: compile once per (model, format, options),
//! share everywhere — under a configurable resident-byte budget.
//!
//! Preparation ([`PreparedGraph::prepare_shared`]) is the expensive step
//! serving amortizes — kernel selection, tiling, per-tile weight packing
//! and decimation-table decoding. The cache keys prepared artifacts by
//! **model name and full compilation [`Options`]** (which subsume the
//! kernel format via `Options::target`), so registering the same model
//! twice, or for two services, reuses the packed weights; registering it
//! under a different target/format prepares a distinct artifact, exactly
//! like a deployment serving the same network in several formats for
//! comparison.
//!
//! # Byte budget and eviction
//!
//! On an MCU-class host the packed weights are the scarcest resource, so
//! the cache can be given a byte budget ([`ModelCache::with_budget`]).
//! Each artifact's cost is [`PreparedGraph::resident_bytes`] — a pure
//! function of `(graph, opts)`, which is what makes eviction decisions
//! reproducible. When an insert would exceed the budget, the cache
//! evicts **least-recently-used unpinned** entries until the newcomer
//! fits:
//!
//! * An entry is **pinned** while anyone outside the cache holds an
//!   `Arc` to its artifact (`Arc::strong_count > 1`). Eviction only ever
//!   drops the cache's own reference — it never invalidates in-flight
//!   work, which keeps the artifact alive through its own `Arc` until
//!   the last holder drops it.
//! * Recency is a monotonic tick bumped on every hit and insert, so two
//!   identical register/lookup sequences produce identical eviction
//!   orders, counters and artifacts.
//! * If the newcomer cannot fit even after evicting everything unpinned
//!   (or is alone bigger than the budget), the insert fails with
//!   [`CacheError::OverBudget`] and the cache is left untouched — the
//!   service layer surfaces this as `ServeError::CacheOverBudget`.

use crate::fault::{FaultAction, FaultPlan, FaultPoint};
use nm_compiler::{Options, PreparedGraph};
use nm_core::Error;
use nm_nn::graph::Graph;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// The cache key: model name plus the complete compilation options
/// (target format, L1 budget, cost model, emulation path, threads).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelKey {
    /// Caller-chosen model name.
    pub name: String,
    /// The options the artifact was prepared with.
    pub opts: Options,
}

/// Why a cache lookup failed.
#[derive(Debug)]
pub enum CacheError {
    /// Preparation itself failed (tiling, packing, an injected fault, or
    /// a name collision with a different graph); nothing was cached.
    Prepare(Error),
    /// The artifact prepared fine but cannot fit in the byte budget even
    /// after evicting every unpinned entry. `required` is the artifact's
    /// own resident bytes ([`PreparedGraph::resident_bytes`]).
    OverBudget {
        /// Resident bytes the rejected artifact needs.
        required: usize,
        /// The cache's configured budget.
        budget: usize,
    },
}

impl std::fmt::Display for CacheError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheError::Prepare(e) => write!(f, "preparation failed: {e}"),
            CacheError::OverBudget { required, budget } => write!(
                f,
                "artifact needs {required} resident bytes but the cache budget \
                 is {budget} and no further unpinned entry can be evicted"
            ),
        }
    }
}

impl std::error::Error for CacheError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CacheError::Prepare(e) => Some(e),
            CacheError::OverBudget { .. } => None,
        }
    }
}

/// A named snapshot of the cache's counters (replaces the old positional
/// `(hits, misses)` tuple, which was ambiguous at call sites and grew).
///
/// Every field is exported verbatim by the service's metrics surface
/// (`Service::metrics_text`) as `nm_serve_cache_hits_total`,
/// `nm_serve_cache_misses_total`, `nm_serve_cache_failed_prepares_total`,
/// `nm_serve_cache_evictions_total` and the
/// `nm_serve_cache_resident_bytes{,_high_water}` gauges — the export is
/// asserted equal to this struct, so the names here and there describe
/// one ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that paid a *successful* preparation.
    pub misses: u64,
    /// Lookups whose preparation failed (nothing was cached).
    pub failed_prepares: u64,
    /// Entries dropped to make room under the byte budget.
    pub evictions: u64,
    /// Resident bytes of everything currently cached.
    pub resident_bytes: u64,
    /// The highest `resident_bytes` ever observed (after any insert).
    pub resident_high_water: u64,
}

/// One cached artifact: the key, the graph it was prepared from (so a
/// hit can verify the caller is naming the *same* model — see
/// [`get_or_prepare`](ModelCache::get_or_prepare)), the prepared result,
/// its resident cost and its last-touched tick.
#[derive(Debug)]
struct CacheEntry {
    key: ModelKey,
    graph: Arc<Graph>,
    prepared: Arc<PreparedGraph<'static>>,
    bytes: usize,
    last_used: u64,
}

/// A cache of [`PreparedGraph`]s keyed by [`ModelKey`]. Lookups are
/// get-or-prepare: the first request for a key pays the compile, every
/// later one clones an [`Arc`]. With a byte budget, inserts evict
/// least-recently-used unpinned entries (see the module docs).
#[derive(Debug, Default)]
pub struct ModelCache {
    entries: Mutex<Vec<CacheEntry>>,
    /// Resident-byte budget; `None` means unbounded (never evicts).
    budget: Option<usize>,
    /// Monotonic recency clock: bumped on every hit and insert.
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    failed_prepares: AtomicU64,
    evictions: AtomicU64,
    /// Gauges mirrored from the entry list (written only under the
    /// entries lock) so stats reads never need the lock.
    resident: AtomicU64,
    high_water: AtomicU64,
    /// Deterministic fault injection ([`FaultPoint::Prepare`],
    /// [`FaultPoint::CacheInsert`]); `None` in production.
    faults: Option<Arc<FaultPlan>>,
}

impl ModelCache {
    /// Creates an empty, unbounded cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty cache that keeps at most `budget` resident bytes
    /// of prepared artifacts, evicting LRU unpinned entries on pressure.
    pub fn with_budget(budget: usize) -> Self {
        ModelCache {
            budget: Some(budget),
            ..Self::default()
        }
    }

    /// Creates an empty cache consulting `faults` at the `prepare` and
    /// `cache_insert` injection points (see [`crate::fault`]).
    pub fn with_faults(faults: Option<Arc<FaultPlan>>) -> Self {
        ModelCache {
            faults,
            ..Self::default()
        }
    }

    /// Full configuration: optional byte budget plus optional faults.
    pub fn configured(budget: Option<usize>, faults: Option<Arc<FaultPlan>>) -> Self {
        ModelCache {
            budget,
            faults,
            ..Self::default()
        }
    }

    /// Returns the prepared artifact for `(name, opts)`, compiling
    /// `graph` on first use. Preparation happens under the cache lock:
    /// concurrent first requests for the same key never duplicate the
    /// packing work (they briefly serialize instead, which is the right
    /// trade for a compile-once cache). Note this serializes *all*
    /// concurrent prepares, different keys included — registration is a
    /// startup-time operation here; a service whose multi-model startup
    /// time matters should prepare graphs concurrently up front
    /// ([`PreparedGraph::prepare_shared`]) before registering, or this
    /// cache wants a per-key in-progress marker.
    ///
    /// # Errors
    /// [`CacheError::Prepare`] propagates preparation failures (tiling
    /// or packing errors, e.g. [`nm_core::Error::OutOfMemory`] for a
    /// model whose minimum tile exceeds the L1 budget); nothing is
    /// cached on failure and the cache stays fully usable for subsequent
    /// models. A hit whose cached entry was prepared from a *different*
    /// graph object is rejected the same way
    /// ([`nm_core::Error::Unsupported`]): the key is the model name, so
    /// silently serving the old graph's weights to a caller holding a
    /// new graph of the same name would produce wrong results with no
    /// error — re-registering a changed model needs a new name (or
    /// options) instead. [`CacheError::OverBudget`] means the prepared
    /// artifact cannot fit the byte budget even after evicting every
    /// unpinned entry; the (successful) preparation is discarded.
    ///
    /// A preparation that *panics* (injected or real) unwinds into the
    /// caller with the entries lock poisoned but the entry list
    /// untouched — later lookups recover the lock and proceed, so one
    /// catastrophic model cannot wedge the cache.
    pub fn get_or_prepare(
        &self,
        name: &str,
        graph: &Arc<Graph>,
        opts: &Options,
    ) -> Result<Arc<PreparedGraph<'static>>, CacheError> {
        if let Some(plan) = &self.faults {
            match plan.check(FaultPoint::Prepare) {
                Some(FaultAction::Error) => {
                    self.failed_prepares.fetch_add(1, Ordering::Relaxed);
                    return Err(CacheError::Prepare(Error::Unsupported(
                        "injected fault: prepare".to_string(),
                    )));
                }
                Some(_) => panic!("injected fault: prepare"),
                None => {}
            }
        }
        // Mutations happen only after a successful prepare, so a
        // poisoned lock (a panic under it) left the list consistent.
        let mut entries = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(entry) = entries
            .iter_mut()
            .find(|e| e.key.name == name && e.key.opts == *opts)
        {
            if !Arc::ptr_eq(&entry.graph, graph) {
                return Err(CacheError::Prepare(Error::Unsupported(format!(
                    "model {name:?} is already cached for these options with a \
                     different graph; register changed models under a new name"
                ))));
            }
            entry.last_used = self.tick.fetch_add(1, Ordering::Relaxed);
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(&entry.prepared));
        }
        // A failed preparation is not a miss: `misses` counts lookups
        // that *paid* a preparation, so the counter moves only once
        // `prepare_shared` succeeds; failures land in `failed_prepares`.
        let prepared = match PreparedGraph::prepare_shared(Arc::clone(graph), opts) {
            Ok(prepared) => Arc::new(prepared),
            Err(e) => {
                self.failed_prepares.fetch_add(1, Ordering::Relaxed);
                return Err(CacheError::Prepare(e));
            }
        };
        self.misses.fetch_add(1, Ordering::Relaxed);
        if let Some(plan) = &self.faults {
            match plan.check(FaultPoint::CacheInsert) {
                Some(FaultAction::Error) => {
                    // Nothing is cached; the (successful) preparation is
                    // discarded, exactly like any other insert failure.
                    return Err(CacheError::Prepare(Error::Unsupported(
                        "injected fault: cache_insert".to_string(),
                    )));
                }
                Some(_) => panic!("injected fault: cache_insert"),
                None => {}
            }
        }
        let bytes = prepared.resident_bytes();
        self.evict_to_fit(&mut entries, bytes)?;
        entries.push(CacheEntry {
            key: ModelKey {
                name: name.to_string(),
                opts: *opts,
            },
            graph: Arc::clone(graph),
            prepared: Arc::clone(&prepared),
            bytes,
            last_used: self.tick.fetch_add(1, Ordering::Relaxed),
        });
        let resident: usize = entries.iter().map(|e| e.bytes).sum();
        self.resident.store(resident as u64, Ordering::Relaxed);
        self.high_water
            .fetch_max(resident as u64, Ordering::Relaxed);
        Ok(prepared)
    }

    /// Evicts LRU unpinned entries until `incoming` more bytes fit the
    /// budget (no-op when unbounded). Fails — leaving `entries`
    /// partially evicted but always consistent — once every survivor is
    /// pinned: an entry is pinned while its artifact has `Arc` holders
    /// outside the cache, and dropping it here would not free its bytes
    /// anyway (the holders keep it alive); it would only lose the
    /// ability to share it.
    fn evict_to_fit(
        &self,
        entries: &mut Vec<CacheEntry>,
        incoming: usize,
    ) -> Result<(), CacheError> {
        let Some(budget) = self.budget else {
            return Ok(());
        };
        if incoming > budget {
            return Err(CacheError::OverBudget {
                required: incoming,
                budget,
            });
        }
        loop {
            let resident: usize = entries.iter().map(|e| e.bytes).sum();
            if resident + incoming <= budget {
                self.resident.store(resident as u64, Ordering::Relaxed);
                return Ok(());
            }
            let victim = entries
                .iter()
                .enumerate()
                .filter(|(_, e)| Arc::strong_count(&e.prepared) == 1)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i);
            match victim {
                Some(i) => {
                    entries.remove(i);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                None => {
                    let resident: usize = entries.iter().map(|e| e.bytes).sum();
                    self.resident.store(resident as u64, Ordering::Relaxed);
                    return Err(CacheError::OverBudget {
                        required: incoming,
                        budget,
                    });
                }
            }
        }
    }

    /// Cached artifacts.
    pub fn len(&self) -> usize {
        self.entries
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The currently cached keys, oldest insert first (evicted entries
    /// are gone). Exposed so eviction-determinism tests can compare two
    /// runs' cache contents directly.
    pub fn cached_keys(&self) -> Vec<ModelKey> {
        self.entries
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|e| e.key.clone())
            .collect()
    }

    /// Lookups served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that paid a *successful* preparation.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Lookups whose preparation failed (nothing was cached). Tracked
    /// separately from [`misses`](Self::misses) so hit-rate math stays
    /// meaningful when a model repeatedly fails to prepare.
    pub fn failed_prepares(&self) -> u64 {
        self.failed_prepares.load(Ordering::Relaxed)
    }

    /// Entries evicted under budget pressure since construction.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// A consistent snapshot of every counter plus the resident-byte
    /// gauge and its high-water mark.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            failed_prepares: self.failed_prepares.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            resident_bytes: self.resident.load(Ordering::Relaxed),
            resident_high_water: self.high_water.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nm_compiler::Target;
    use nm_core::quant::Requant;
    use nm_core::FcGeom;
    use nm_nn::layer::LinearLayer;
    use nm_nn::rng::XorShift;
    use nm_nn::GraphBuilder;

    fn tiny_graph() -> Arc<Graph> {
        seeded_graph(3)
    }

    // Same geometry for every seed, so every artifact reports the same
    // resident bytes — budget math in the eviction tests stays exact.
    fn seeded_graph(seed: u64) -> Arc<Graph> {
        let mut b = GraphBuilder::new(&[16]);
        let layer = LinearLayer::new(
            FcGeom::new(16, 8).unwrap(),
            XorShift::new(seed).fill_weights(16 * 8, 30),
            Requant::for_dot_len(16),
        )
        .unwrap();
        let out = b.linear(b.input(), layer).unwrap();
        Arc::new(b.finish(out).unwrap())
    }

    fn artifact_bytes(graph: &Arc<Graph>, opts: &Options) -> usize {
        PreparedGraph::prepare_shared(Arc::clone(graph), opts)
            .unwrap()
            .resident_bytes()
    }

    #[test]
    fn same_key_prepares_once_and_shares() {
        let cache = ModelCache::new();
        let graph = tiny_graph();
        let opts = Options::new(Target::DensePulpNn);
        let a = cache.get_or_prepare("m", &graph, &opts).unwrap();
        let b = cache.get_or_prepare("m", &graph, &opts).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second lookup shares the artifact");
        assert_eq!((cache.misses(), cache.hits()), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    // A hit must name the same graph the entry was prepared from:
    // silently serving stale weights to a caller holding a different
    // graph of the same name is the one failure mode a name-keyed
    // cache must refuse loudly.
    #[test]
    fn same_key_different_graph_is_rejected() {
        let cache = ModelCache::new();
        let opts = Options::new(Target::DensePulpNn);
        let v1 = tiny_graph();
        let v2 = tiny_graph(); // same shape, different object/weights
        cache.get_or_prepare("m", &v1, &opts).unwrap();
        let err = cache.get_or_prepare("m", &v2, &opts).unwrap_err();
        assert!(
            matches!(err, CacheError::Prepare(Error::Unsupported(_))),
            "{err:?}"
        );
        // The original registration is untouched and still hits.
        assert!(cache.get_or_prepare("m", &v1, &opts).is_ok());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn options_and_name_are_part_of_the_key() {
        let cache = ModelCache::new();
        let graph = tiny_graph();
        let opts = Options::new(Target::DensePulpNn);
        let a = cache.get_or_prepare("m", &graph, &opts).unwrap();
        // Same model, different execution tier: distinct artifact.
        let mut ref_path = opts;
        ref_path.tier = nm_compiler::ExecTier::Reference;
        let b = cache.get_or_prepare("m", &graph, &ref_path).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        // Different name, same options: also distinct.
        let c = cache.get_or_prepare("m2", &graph, &opts).unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.misses(), 3);
    }

    // Injected prepare/cache_insert errors fail only their own
    // registration; the cache serves later (and earlier) models
    // untouched.
    #[test]
    fn injected_registration_faults_do_not_wedge_the_cache() {
        let plan = Arc::new(
            FaultPlan::new()
                .fail_nth(FaultPoint::Prepare, 1, FaultAction::Error)
                .fail_nth(FaultPoint::CacheInsert, 1, FaultAction::Error),
        );
        let cache = ModelCache::with_faults(Some(Arc::clone(&plan)));
        let graph = tiny_graph();
        let opts = Options::new(Target::DensePulpNn);
        cache.get_or_prepare("a", &graph, &opts).unwrap();
        // Occurrence 1 of prepare: injected error, nothing cached.
        let err = cache.get_or_prepare("b", &graph, &opts).unwrap_err();
        assert!(
            matches!(err, CacheError::Prepare(Error::Unsupported(_))),
            "{err:?}"
        );
        // Occurrence 1 of cache_insert (miss #2): prepared but the
        // insert fails — still nothing cached, still an error.
        let err = cache.get_or_prepare("b", &graph, &opts).unwrap_err();
        assert!(
            matches!(err, CacheError::Prepare(Error::Unsupported(_))),
            "{err:?}"
        );
        // Third try: both one-shot faults are spent; everything works.
        cache.get_or_prepare("b", &graph, &opts).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(plan.fired(), 2);
        // The injected prepare error counted as a failed prepare, not a
        // miss; the cache_insert error prepared successfully (a miss).
        assert_eq!(cache.failed_prepares(), 1);
        assert_eq!(cache.misses(), 3);
    }

    // Regression test: a *failed* preparation must not count as a cache
    // miss — `misses` only moves for lookups that paid a successful
    // prepare, failures land in `failed_prepares`.
    #[test]
    fn failed_prepares_are_counted_separately_from_misses() {
        let cache = ModelCache::new();
        let graph = tiny_graph();
        let mut bad = Options::new(Target::DensePulpNn);
        bad.l1_budget = 8; // no tile can fit: preparation fails
        cache.get_or_prepare("m", &graph, &bad).unwrap_err();
        cache.get_or_prepare("m", &graph, &bad).unwrap_err();
        assert_eq!(
            (cache.hits(), cache.misses(), cache.failed_prepares()),
            (0, 0, 2),
            "failed prepares must not inflate the miss counter"
        );
        assert!(cache.is_empty(), "nothing was cached");
        // A successful registration afterwards: one miss, then a hit;
        // the failure counter stays put.
        let opts = Options::new(Target::DensePulpNn);
        cache.get_or_prepare("m", &graph, &opts).unwrap();
        cache.get_or_prepare("m", &graph, &opts).unwrap();
        assert_eq!(
            (cache.hits(), cache.misses(), cache.failed_prepares()),
            (1, 1, 2)
        );
    }

    // A *panicking* preparation poisons the entries lock in the
    // registering thread; the next registration must recover and
    // proceed instead of cascading the panic — a poisoned lock
    // degrades the one request, not the cache.
    #[test]
    fn prepare_panic_poisons_nothing_durable() {
        let plan = Arc::new(FaultPlan::new().fail_nth(FaultPoint::Prepare, 0, FaultAction::Panic));
        let cache = ModelCache::with_faults(Some(plan));
        let graph = tiny_graph();
        let opts = Options::new(Target::DensePulpNn);
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cache.get_or_prepare("doomed", &graph, &opts)
        }));
        assert!(unwound.is_err(), "the injected panic reaches the caller");
        // The cache recovered: the next registration prepares and hits.
        let a = cache.get_or_prepare("good", &graph, &opts).unwrap();
        let b = cache.get_or_prepare("good", &graph, &opts).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 1);
    }

    // The budget evicts the least-recently-used unpinned entry; a hit
    // refreshes recency and redirects the eviction to the colder entry.
    #[test]
    fn budget_evicts_least_recently_used_first() {
        let opts = Options::new(Target::DensePulpNn);
        let (ga, gb, gc) = (seeded_graph(1), seeded_graph(2), seeded_graph(3));
        let bytes = artifact_bytes(&ga, &opts);
        // Room for two artifacts, never three.
        let cache = ModelCache::with_budget(bytes * 5 / 2);
        drop(cache.get_or_prepare("a", &ga, &opts).unwrap());
        drop(cache.get_or_prepare("b", &gb, &opts).unwrap());
        // Touch "a" so "b" becomes the LRU entry.
        drop(cache.get_or_prepare("a", &ga, &opts).unwrap());
        drop(cache.get_or_prepare("c", &gc, &opts).unwrap());
        let names: Vec<String> = cache.cached_keys().into_iter().map(|k| k.name).collect();
        assert_eq!(names, ["a", "c"], "the cold entry was evicted");
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.resident_bytes, 2 * bytes as u64);
        assert_eq!(stats.resident_high_water, 2 * bytes as u64);
        // Re-requesting "b" is a fresh miss that evicts today's LRU.
        drop(cache.get_or_prepare("b", &gb, &opts).unwrap());
        let names: Vec<String> = cache.cached_keys().into_iter().map(|k| k.name).collect();
        assert_eq!(names, ["c", "b"], "\"a\" was the LRU entry by then");
        assert_eq!(cache.stats().evictions, 2);
        assert_eq!(cache.misses(), 4, "re-preparing an evicted model is a miss");
    }

    // Entries with live outside holders are pinned: eviction skips them
    // even when they are the LRU, and fails with `OverBudget` once only
    // pinned entries remain.
    #[test]
    fn pinned_entries_are_never_evicted() {
        let opts = Options::new(Target::DensePulpNn);
        let (ga, gb, gc) = (seeded_graph(1), seeded_graph(2), seeded_graph(3));
        let bytes = artifact_bytes(&ga, &opts);
        let cache = ModelCache::with_budget(bytes * 5 / 2);
        let pinned = cache.get_or_prepare("a", &ga, &opts).unwrap(); // held
        drop(cache.get_or_prepare("b", &gb, &opts).unwrap());
        // "a" is the LRU but pinned: "b" is evicted instead.
        drop(cache.get_or_prepare("c", &gc, &opts).unwrap());
        let names: Vec<String> = cache.cached_keys().into_iter().map(|k| k.name).collect();
        assert_eq!(names, ["a", "c"]);
        // Pin "c" too: now nothing can be evicted and a fourth model is
        // refused, leaving the pinned entries untouched.
        let also_pinned = cache.get_or_prepare("c", &gc, &opts).unwrap();
        let err = cache
            .get_or_prepare("d", &seeded_graph(4), &opts)
            .unwrap_err();
        assert!(
            matches!(err, CacheError::OverBudget { required, budget }
                if required == bytes && budget == bytes * 5 / 2),
            "{err:?}"
        );
        let names: Vec<String> = cache.cached_keys().into_iter().map(|k| k.name).collect();
        assert_eq!(names, ["a", "c"], "pinned entries survived the refusal");
        // The held artifacts are still fully usable.
        drop(pinned);
        drop(also_pinned);
    }

    // A model alone bigger than the budget is refused outright with the
    // exact byte accounting, and nothing already cached is disturbed.
    #[test]
    fn over_budget_single_model_is_refused() {
        let opts = Options::new(Target::DensePulpNn);
        let graph = tiny_graph();
        let bytes = artifact_bytes(&graph, &opts);
        let cache = ModelCache::with_budget(bytes - 1);
        let err = cache.get_or_prepare("m", &graph, &opts).unwrap_err();
        assert!(
            matches!(err, CacheError::OverBudget { required, budget }
                if required == bytes && budget == bytes - 1),
            "{err:?}"
        );
        assert!(cache.is_empty());
        // The refusal still paid (and counted) the preparation.
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.stats().resident_bytes, 0);
    }

    // The determinism contract behind the eviction policy: two caches
    // fed the identical lookup sequence agree on every eviction, every
    // counter and every surviving artifact's outputs, bit for bit.
    #[test]
    fn identical_sequences_evict_identically() {
        let opts = Options::new(Target::DensePulpNn);
        let run = |seq: &[usize]| {
            let graphs: Vec<Arc<Graph>> = (0..4).map(|i| seeded_graph(10 + i as u64)).collect();
            let bytes = artifact_bytes(&graphs[0], &opts);
            let cache = ModelCache::with_budget(bytes * 5 / 2);
            let mut outputs = Vec::new();
            let mut contents = Vec::new();
            for &m in seq {
                let name = format!("m{m}");
                let prepared = cache.get_or_prepare(&name, &graphs[m], &opts).unwrap();
                let input =
                    nm_core::Tensor::from_vec(&[16], XorShift::new(99).fill_weights(16, 60))
                        .unwrap();
                let run = prepared.run(&input).unwrap();
                outputs.push((run.output, run.matmul_compute_cycles));
                contents.push(
                    cache
                        .cached_keys()
                        .into_iter()
                        .map(|k| k.name)
                        .collect::<Vec<_>>(),
                );
            }
            (outputs, contents, cache.stats())
        };
        let seq = [0, 1, 2, 0, 3, 1, 2, 2, 0];
        let (out_a, contents_a, stats_a) = run(&seq);
        let (out_b, contents_b, stats_b) = run(&seq);
        assert_eq!(contents_a, contents_b, "eviction order is deterministic");
        assert_eq!(stats_a, stats_b, "counters are deterministic");
        assert!(stats_a.evictions > 0, "the sequence actually churned");
        assert_eq!(out_a, out_b, "outputs and cycle totals are bit-identical");
    }
}
