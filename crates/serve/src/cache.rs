//! The prepared-model cache: compile once per (model, format, options),
//! share everywhere.
//!
//! Preparation ([`PreparedGraph::prepare_shared`]) is the expensive step
//! serving amortizes — kernel selection, tiling, per-tile weight packing
//! and decimation-table decoding. The cache keys prepared artifacts by
//! **model name and full compilation [`Options`]** (which subsume the
//! kernel format via `Options::target`), so registering the same model
//! twice, or for two services, reuses the packed weights; registering it
//! under a different target/format prepares a distinct artifact, exactly
//! like a deployment serving the same network in several formats for
//! comparison.

use crate::fault::{FaultAction, FaultPlan, FaultPoint};
use nm_compiler::{Options, PreparedGraph};
use nm_core::Result;
use nm_nn::graph::Graph;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// The cache key: model name plus the complete compilation options
/// (target format, L1 budget, cost model, emulation path, threads).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelKey {
    /// Caller-chosen model name.
    pub name: String,
    /// The options the artifact was prepared with.
    pub opts: Options,
}

/// One cached artifact: the key, the graph it was prepared from (so a
/// hit can verify the caller is naming the *same* model — see
/// [`get_or_prepare`](ModelCache::get_or_prepare)) and the prepared
/// result.
type CacheEntry = (ModelKey, Arc<Graph>, Arc<PreparedGraph<'static>>);

/// A cache of [`PreparedGraph`]s keyed by [`ModelKey`]. Lookups are
/// get-or-prepare: the first request for a key pays the compile, every
/// later one clones an [`Arc`].
#[derive(Debug, Default)]
pub struct ModelCache {
    entries: Mutex<Vec<CacheEntry>>,
    hits: AtomicU64,
    misses: AtomicU64,
    failed_prepares: AtomicU64,
    /// Deterministic fault injection ([`FaultPoint::Prepare`],
    /// [`FaultPoint::CacheInsert`]); `None` in production.
    faults: Option<Arc<FaultPlan>>,
}

impl ModelCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty cache consulting `faults` at the `prepare` and
    /// `cache_insert` injection points (see [`crate::fault`]).
    pub fn with_faults(faults: Option<Arc<FaultPlan>>) -> Self {
        ModelCache {
            faults,
            ..Self::default()
        }
    }

    /// Returns the prepared artifact for `(name, opts)`, compiling
    /// `graph` on first use. Preparation happens under the cache lock:
    /// concurrent first requests for the same key never duplicate the
    /// packing work (they briefly serialize instead, which is the right
    /// trade for a compile-once cache). Note this serializes *all*
    /// concurrent prepares, different keys included — registration is a
    /// startup-time operation here; a service whose multi-model startup
    /// time matters should prepare graphs concurrently up front
    /// ([`PreparedGraph::prepare_shared`]) before registering, or this
    /// cache wants a per-key in-progress marker.
    ///
    /// # Errors
    /// Propagates preparation failures (tiling or packing errors, e.g.
    /// [`nm_core::Error::OutOfMemory`] for a model whose minimum tile
    /// exceeds the L1 budget); nothing is cached on failure and the
    /// cache stays fully usable for subsequent models. Rejects
    /// ([`nm_core::Error::Unsupported`]) a hit whose cached entry was
    /// prepared from a *different* graph object: the key is the model
    /// name, so silently serving the old graph's weights to a caller
    /// holding a new graph of the same name would produce wrong results
    /// with no error — re-registering a changed model needs a new name
    /// (or options) instead.
    ///
    /// A preparation that *panics* (injected or real) unwinds into the
    /// caller with the entries lock poisoned but the entry list
    /// untouched — later lookups recover the lock and proceed, so one
    /// catastrophic model cannot wedge the cache.
    pub fn get_or_prepare(
        &self,
        name: &str,
        graph: &Arc<Graph>,
        opts: &Options,
    ) -> Result<Arc<PreparedGraph<'static>>> {
        if let Some(plan) = &self.faults {
            match plan.check(FaultPoint::Prepare) {
                Some(FaultAction::Error) => {
                    self.failed_prepares.fetch_add(1, Ordering::Relaxed);
                    return Err(nm_core::Error::Unsupported(
                        "injected fault: prepare".to_string(),
                    ));
                }
                Some(_) => panic!("injected fault: prepare"),
                None => {}
            }
        }
        // Mutations are single pushes after a successful prepare, so a
        // poisoned lock (a panic under it) left the list consistent.
        let mut entries = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some((_, cached_graph, prepared)) = entries
            .iter()
            .find(|(key, _, _)| key.name == name && key.opts == *opts)
        {
            if !Arc::ptr_eq(cached_graph, graph) {
                return Err(nm_core::Error::Unsupported(format!(
                    "model {name:?} is already cached for these options with a \
                     different graph; register changed models under a new name"
                )));
            }
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(prepared));
        }
        // A failed preparation is not a miss: `misses` counts lookups
        // that *paid* a preparation, so the counter moves only once
        // `prepare_shared` succeeds; failures land in `failed_prepares`.
        let prepared = match PreparedGraph::prepare_shared(Arc::clone(graph), opts) {
            Ok(prepared) => Arc::new(prepared),
            Err(e) => {
                self.failed_prepares.fetch_add(1, Ordering::Relaxed);
                return Err(e);
            }
        };
        self.misses.fetch_add(1, Ordering::Relaxed);
        if let Some(plan) = &self.faults {
            match plan.check(FaultPoint::CacheInsert) {
                Some(FaultAction::Error) => {
                    // Nothing is cached; the (successful) preparation is
                    // discarded, exactly like any other insert failure.
                    return Err(nm_core::Error::Unsupported(
                        "injected fault: cache_insert".to_string(),
                    ));
                }
                Some(_) => panic!("injected fault: cache_insert"),
                None => {}
            }
        }
        entries.push((
            ModelKey {
                name: name.to_string(),
                opts: *opts,
            },
            Arc::clone(graph),
            Arc::clone(&prepared),
        ));
        Ok(prepared)
    }

    /// Cached artifacts.
    pub fn len(&self) -> usize {
        self.entries
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that paid a *successful* preparation.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Lookups whose preparation failed (nothing was cached). Tracked
    /// separately from [`misses`](Self::misses) so hit-rate math stays
    /// meaningful when a model repeatedly fails to prepare.
    pub fn failed_prepares(&self) -> u64 {
        self.failed_prepares.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nm_compiler::Target;
    use nm_core::quant::Requant;
    use nm_core::FcGeom;
    use nm_nn::layer::LinearLayer;
    use nm_nn::rng::XorShift;
    use nm_nn::GraphBuilder;

    fn tiny_graph() -> Arc<Graph> {
        let mut b = GraphBuilder::new(&[16]);
        let layer = LinearLayer::new(
            FcGeom::new(16, 8).unwrap(),
            XorShift::new(3).fill_weights(16 * 8, 30),
            Requant::for_dot_len(16),
        )
        .unwrap();
        let out = b.linear(b.input(), layer).unwrap();
        Arc::new(b.finish(out).unwrap())
    }

    #[test]
    fn same_key_prepares_once_and_shares() {
        let cache = ModelCache::new();
        let graph = tiny_graph();
        let opts = Options::new(Target::DensePulpNn);
        let a = cache.get_or_prepare("m", &graph, &opts).unwrap();
        let b = cache.get_or_prepare("m", &graph, &opts).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second lookup shares the artifact");
        assert_eq!((cache.misses(), cache.hits()), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    /// A hit must name the same graph the entry was prepared from:
    /// silently serving stale weights to a caller holding a different
    /// graph of the same name is the one failure mode a name-keyed
    /// cache must refuse loudly.
    #[test]
    fn same_key_different_graph_is_rejected() {
        let cache = ModelCache::new();
        let opts = Options::new(Target::DensePulpNn);
        let v1 = tiny_graph();
        let v2 = tiny_graph(); // same shape, different object/weights
        cache.get_or_prepare("m", &v1, &opts).unwrap();
        let err = cache.get_or_prepare("m", &v2, &opts).unwrap_err();
        assert!(matches!(err, nm_core::Error::Unsupported(_)), "{err:?}");
        // The original registration is untouched and still hits.
        assert!(cache.get_or_prepare("m", &v1, &opts).is_ok());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn options_and_name_are_part_of_the_key() {
        let cache = ModelCache::new();
        let graph = tiny_graph();
        let opts = Options::new(Target::DensePulpNn);
        let a = cache.get_or_prepare("m", &graph, &opts).unwrap();
        // Same model, different execution tier: distinct artifact.
        let mut ref_path = opts;
        ref_path.tier = nm_compiler::ExecTier::Reference;
        let b = cache.get_or_prepare("m", &graph, &ref_path).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        // Different name, same options: also distinct.
        let c = cache.get_or_prepare("m2", &graph, &opts).unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.misses(), 3);
    }

    /// Injected prepare/cache_insert errors fail only their own
    /// registration; the cache serves later (and earlier) models
    /// untouched.
    #[test]
    fn injected_registration_faults_do_not_wedge_the_cache() {
        let plan = Arc::new(
            FaultPlan::new()
                .fail_nth(FaultPoint::Prepare, 1, FaultAction::Error)
                .fail_nth(FaultPoint::CacheInsert, 1, FaultAction::Error),
        );
        let cache = ModelCache::with_faults(Some(Arc::clone(&plan)));
        let graph = tiny_graph();
        let opts = Options::new(Target::DensePulpNn);
        cache.get_or_prepare("a", &graph, &opts).unwrap();
        // Occurrence 1 of prepare: injected error, nothing cached.
        let err = cache.get_or_prepare("b", &graph, &opts).unwrap_err();
        assert!(matches!(err, nm_core::Error::Unsupported(_)), "{err:?}");
        // Occurrence 1 of cache_insert (miss #2): prepared but the
        // insert fails — still nothing cached, still an error.
        let err = cache.get_or_prepare("b", &graph, &opts).unwrap_err();
        assert!(matches!(err, nm_core::Error::Unsupported(_)), "{err:?}");
        // Third try: both one-shot faults are spent; everything works.
        cache.get_or_prepare("b", &graph, &opts).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(plan.fired(), 2);
        // The injected prepare error counted as a failed prepare, not a
        // miss; the cache_insert error prepared successfully (a miss).
        assert_eq!(cache.failed_prepares(), 1);
        assert_eq!(cache.misses(), 3);
    }

    /// Regression test: a *failed* preparation must not count as a cache
    /// miss — `misses` only moves for lookups that paid a successful
    /// prepare, failures land in `failed_prepares`.
    #[test]
    fn failed_prepares_are_counted_separately_from_misses() {
        let cache = ModelCache::new();
        let graph = tiny_graph();
        let mut bad = Options::new(Target::DensePulpNn);
        bad.l1_budget = 8; // no tile can fit: preparation fails
        cache.get_or_prepare("m", &graph, &bad).unwrap_err();
        cache.get_or_prepare("m", &graph, &bad).unwrap_err();
        assert_eq!(
            (cache.hits(), cache.misses(), cache.failed_prepares()),
            (0, 0, 2),
            "failed prepares must not inflate the miss counter"
        );
        assert!(cache.is_empty(), "nothing was cached");
        // A successful registration afterwards: one miss, then a hit;
        // the failure counter stays put.
        let opts = Options::new(Target::DensePulpNn);
        cache.get_or_prepare("m", &graph, &opts).unwrap();
        cache.get_or_prepare("m", &graph, &opts).unwrap();
        assert_eq!(
            (cache.hits(), cache.misses(), cache.failed_prepares()),
            (1, 1, 2)
        );
    }

    /// A *panicking* preparation poisons the entries lock in the
    /// registering thread; the next registration must recover and
    /// proceed instead of cascading the panic — a poisoned lock
    /// degrades the one request, not the cache.
    #[test]
    fn prepare_panic_poisons_nothing_durable() {
        let plan = Arc::new(FaultPlan::new().fail_nth(FaultPoint::Prepare, 0, FaultAction::Panic));
        let cache = ModelCache::with_faults(Some(plan));
        let graph = tiny_graph();
        let opts = Options::new(Target::DensePulpNn);
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cache.get_or_prepare("doomed", &graph, &opts)
        }));
        assert!(unwound.is_err(), "the injected panic reaches the caller");
        // The cache recovered: the next registration prepares and hits.
        let a = cache.get_or_prepare("good", &graph, &opts).unwrap();
        let b = cache.get_or_prepare("good", &graph, &opts).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 1);
    }
}
