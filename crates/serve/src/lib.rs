// The serving layer must never take the process down on a recoverable
// failure, so production code here forbids implicit panic sites; tests
// are exempt (an unwrap in a test IS the assertion).
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
//! # nm-serve
//!
//! A batched inference service over pooled, compile-once
//! [`PreparedGraph`]s — the serving layer the emulation stack feeds:
//! many requests share one prepared model (weights packed and kernel
//! programs decoded exactly once per (model, format, options) cache
//! key), a bounded submission queue applies backpressure by shedding,
//! and a worker pool coalesces same-model requests into batches that
//! execute under the model's [`BatchPlan`]: Linear/activation chains
//! stack into one multi-token pass, conv graphs run layer-major with
//! each conv tile's packed weights staged once per batch, and
//! everything else runs sequentially — with the executed plan reported
//! on every result ([`InferenceResult::mode`]).
//!
//! ```no_run
//! # use nm_serve::{Service, ServiceConfig};
//! # use std::sync::Arc;
//! # fn demo(graph: Arc<nm_nn::graph::Graph>, inputs: Vec<nm_core::Tensor<i8>>) {
//! let service = Service::start(ServiceConfig::default());
//! let opts = nm_compiler::Options::new(nm_compiler::Target::SparseIsa);
//! let model = service.register("mlp", &graph, &opts).unwrap();
//! let tickets: Vec<_> = inputs
//!     .into_iter()
//!     .map(|x| service.submit(model, x).expect("not shed"))
//!     .collect();
//! for t in tickets {
//!     let r = t.wait().unwrap();
//!     // `sim_cycles` is `Some` on the cycle-accurate tiers, `None`
//!     // when the service runs on `ExecTier::Native`.
//!     println!("request {}: {:?} sim cycles", r.id, r.sim_cycles);
//! }
//! service.shutdown();
//! # }
//! ```
//!
//! ## Determinism contract
//!
//! Concurrency and batching are **amortizations, never semantic
//! changes**. A service runs on exactly one execution tier
//! ([`ServiceConfig::tier`], an [`ExecTier`]), and the contract is
//! tiered to match:
//!
//! * **Outputs are gated on every tier.** For any interleaving of
//!   submissions, any worker count, any batch limit and any tier,
//!   every request's output tensor ([`InferenceResult::output`]) is
//!   bit-identical to running the same input through a sequential
//!   [`PreparedGraph::run`] loop on the same prepared model — and the
//!   native tier's outputs are bit-identical to the bulk tier's, since
//!   both tiers execute the *same* kernel bodies (charging is a
//!   zero-sized policy parameter compiled out on native, never a
//!   forked copy of the loop).
//! * **Cycles are gated on the cycle-accurate tiers only.** On
//!   [`ExecTier::Reference`] and [`ExecTier::Bulk`], every request's
//!   simulated cycle total ([`InferenceResult::sim_cycles`], `Some`)
//!   is bit-identical to the sequential run's and to the analytic
//!   plan. On [`ExecTier::Native`] cycles are not simulated at all:
//!   `sim_cycles` is `None`, and the only timing quantities are
//!   wall-clock ([`InferenceResult::latency`]) — faster, but carrying
//!   no simulated meaning.
//!
//! The per-request determinism holds because:
//!
//! * requests are independent — a request's result is a pure function
//!   of (model, options, input), and workers never share mutable
//!   execution state (scratchpads come from a per-model
//!   `nm_platform::ScratchpadPool` that resets pads to the fresh state
//!   on checkin);
//! * batch coalescing routes through [`PreparedGraph::run_batch`],
//!   which executes the graph's [`BatchPlan`]
//!   ([`PreparedGraph::batch_plan`]). Under
//!   [`BatchPlan::TokenCoalesced`] each request is its own token of one
//!   stacked multi-token pass; under [`BatchPlan::ConvBatchMajor`] each
//!   request is its own sweep over every conv tile's held weight
//!   staging, with per-request kernel statistics threaded out of the
//!   batched kernels. Either way each request is a separate sequence of
//!   kernel invocations on the shared staged weights — kernel cycle
//!   counts depend only on geometry and weights, never on activation
//!   values — so per-request outputs and cycle attribution match the
//!   sequential run bit for bit. [`BatchPlan::Sequential`] *is* the
//!   sequential loop;
//! * scheduling affects only *wall-clock* quantities, which are
//!   reported separately ([`InferenceResult::latency`],
//!   [`InferenceResult::batch_size`]) and carry no simulated meaning.
//!   The plan a batch actually executed under is reported as
//!   [`InferenceResult::mode`] — `batch_size > 1` alone does not imply
//!   shared work (see [`BatchPlan::shares_work`]).
//!
//! The contract is enforced end to end by the repo's differential test
//! (`tests/tests/serve_parity.rs`): random graphs × random
//! interleavings × worker counts {1, 2, 3, 8} × batch limits
//! {1, 4, 16} × execution tiers, compared request-by-request against
//! the sequential loop (outputs on every tier, cycles on the
//! cycle-accurate ones) — plus a conv sweep serving the pruned
//! ResNet-18 model under [`BatchPlan::ConvBatchMajor`] across the same
//! grid.
//!
//! ## Overload and shutdown
//!
//! The queue is bounded ([`ServiceConfig::queue_capacity`]); a submit
//! against a full queue first tries to **displace** a queued request of
//! a strictly lower [`Priority`] class (the victim resolves
//! [`ServeError::Preempted`]) and is otherwise **shed**: the caller
//! gets [`SubmitError::Shed`] and the shed is counted in
//! [`ServiceStats::shed`] — requests are refused loudly, never dropped
//! after acceptance. Dispatch is earliest-deadline-first within
//! priority bands. [`Service::drain`] waits for the queue and every
//! in-flight batch; [`Service::shutdown`] (and `Drop`) closes
//! admissions, drains, joins the workers and leaves the queue provably
//! empty.
//!
//! ## Failure model
//!
//! The service promises that **every accepted request resolves** — to a
//! result or a documented error, never a hang — that **failures are
//! isolated to the requests they touch**, and that **degradation under
//! pressure is by design**: overload sheds the least valuable work
//! first, and memory pressure evicts the coldest idle model, never
//! in-flight work. Concretely:
//!
//! * **A panic during batch execution fails at most its own request.**
//!   Batches run under `catch_unwind`; when a batch pass panics, every
//!   rider is re-run individually (results then bit+cycle identical to
//!   the sequential baseline, per the determinism contract above), and
//!   only a request whose *own* re-run panics resolves
//!   [`ServeError::WorkerPanic`] with the panic message. Caught panics
//!   are counted in [`ServiceStats::worker_panics`].
//! * **A worker thread death is survived, within a budget.** A panic
//!   escaping the batch isolation kills only that thread: its held
//!   requests resolve [`ServeError::Canceled`], and a supervisor
//!   respawns a replacement with exponential backoff, spending one unit
//!   of [`ServiceConfig::restart_budget`] per respawn
//!   ([`ServiceStats::restarts`]). Only exhausting the budget (or
//!   failing to spawn a replacement) **poisons** the service
//!   ([`Service::is_poisoned`]): admissions close, queued requests
//!   cancel, and the service stays safe to query and shut down —
//!   further submits return [`SubmitError::Poisoned`], distinct from
//!   the orderly [`SubmitError::Closed`].
//! * **Overload and lateness shed, loudly, by priority.** Requests
//!   carry a [`Priority`] class (`Interactive` > `Batch` >
//!   `BestEffort`); the shed taxonomy is:
//!   `full` — a submit against a queue full of same-or-higher-priority
//!   work is refused with [`SubmitError::Shed`] ([`ServiceStats::shed`],
//!   per class in [`ServiceStats::shed_full_by_class`]); capacity
//!   pressure takes lower classes first, so an `Interactive` request is
//!   never shed while `BestEffort` work occupies a queue slot.
//!   `preempted` — the displaced victim of such a submit resolves
//!   [`ServeError::Preempted`] ([`ServiceStats::shed_preempted`]).
//!   `expired` — a request whose [`Service::submit_with_deadline`]
//!   deadline passes while queued is shed at dispatch with
//!   [`ServeError::DeadlineExceeded`] ([`ServiceStats::shed_expired`]).
//!   `canceled` — a request accepted but never executed (worker death,
//!   poisoning, shutdown race) resolves [`ServeError::Canceled`]
//!   ([`ServiceStats::shed_canceled`]). After a drain, `submitted ==
//!   completed + failed + shed_expired + shed_canceled +
//!   shed_preempted` — nothing is ever silently lost.
//! * **Memory pressure evicts idle models, never in-flight work.** With
//!   a cache byte budget ([`ServiceConfig::cache_budget`]), each
//!   prepared artifact's resident cost (`PreparedGraph::resident_bytes`)
//!   is accounted and inserts evict least-recently-used **unpinned**
//!   entries. The pinning rule: an entry is pinned while any `Arc` to
//!   its artifact lives outside the cache — queued and executing
//!   requests hold one — and eviction only ever drops the cache's own
//!   reference, so running work is never invalidated; an evicted idle
//!   model is transparently re-prepared (a cache miss, possibly
//!   evicting colder models) on its next submit. A model that cannot
//!   fit even after evicting everything unpinned is refused:
//!   [`ServeError::CacheOverBudget`] at registration, or
//!   [`SubmitError::ModelUnavailable`] when re-resolving at submit.
//!   Eviction decisions are a deterministic function of the lookup
//!   sequence ([`CacheStats`] counts `evictions`, `resident_bytes` and
//!   the high-water mark).
//! * **Registration failures don't wedge the service.** A model whose
//!   preparation fails (e.g. [`nm_core::Error::OutOfMemory`] when its
//!   minimum tile exceeds the L1 budget) or panics leaves the cache and
//!   the model table fully usable.
//! * **Lock poisoning is recovered, not cascaded.** Every lock in the
//!   crate is acquired poison-tolerantly
//!   (`unwrap_or_else(PoisonError::into_inner)`); each critical section
//!   is written to leave state consistent at every panic point, so a
//!   poisoned lock degrades at most the panicking request.
//! * **`Drop` is unwind-safe.** Dropping a [`Service`] — including
//!   during another panic's unwind — performs the orderly
//!   close/drain/join without double-panicking or leaving a parked
//!   waiter.
//!
//! The model is exercised deterministically by the [`fault`] module's
//! seeded, counted-occurrence injection plans
//! ([`ServiceConfig::fault_plan`]), the chaos suite in
//! `tests/tests/serve_chaos.rs`, and the Zipf/Poisson overload soak in
//! `tests/tests/serve_overload.rs` (driven by `nm-bench`'s load
//! generator).
//!
//! ## Observability
//!
//! [`Service::metrics_text`] exports everything the service counts in
//! the Prometheus text exposition format — and the export is *gated*:
//! [`metrics::parse_text`] parses it back into a [`MetricsSnapshot`],
//! and the serving suites assert the parsed ledgers equal
//! [`Service::stats`]/[`Service::cache_stats`] exactly, with the
//! five-term shed reconciliation holding on the exported numbers.
//!
//! The exported families:
//!
//! * `nm_serve_requests_{submitted,completed,failed}_total`,
//!   `nm_serve_shed_{full,expired,canceled,preempted}_total` and
//!   `nm_serve_shed_full_by_class_total{class=…}` — the
//!   [`ServiceStats`] ledger, plus `nm_serve_worker_panics_total`,
//!   `nm_serve_worker_restarts_total`, `nm_serve_batches_total` and
//!   the `nm_serve_batch_max_coalesced` gauge;
//! * `nm_serve_cache_{hits,misses,failed_prepares,evictions}_total`
//!   and the `nm_serve_cache_resident_bytes{,_high_water}` gauges —
//!   the [`CacheStats`] ledger;
//! * `nm_serve_queue_depth{,_high_water}` — sampled inside the queue
//!   mutex ([`BoundedQueue::depth_stats`]), never a racy re-count;
//! * `nm_serve_model_requests_{submitted,completed,failed}_total{model=…}`
//!   and `nm_serve_model_shed_{expired,canceled,preempted}_total{model=…}`
//!   — per-model breakdowns, keyed by registered name (aliased
//!   registrations merge into one series);
//! * `nm_serve_request_latency_seconds` — per-model histograms of
//!   wall-clock submit-to-fulfill latency over the static log-spaced
//!   bounds in [`metrics::LATENCY_BUCKETS`] (100 µs → 10 s on a
//!   1–2.5–5 ladder, plus `+Inf`).
//!
//! Determinism caveat: counter values mirror the exactly-reconciling
//! ledgers and the bucket *bounds* are compile-time constants, so for a
//! given request set every line except the histogram *counts* and
//! `_sum` is deterministic; the histogram observations are wall-clock
//! and therefore host-dependent. A scrape may race live traffic — the
//! crate's increment/read ordering guarantees such a scrape is
//! internally consistent ([`MetricsSnapshot::check_internal`]), and a
//! post-drain scrape reconciles exactly
//! ([`MetricsSnapshot::check_quiesced`]).

pub mod cache;
pub mod fault;
pub mod metrics;
pub mod queue;
pub mod service;
mod supervisor;

pub use cache::{CacheError, CacheStats, ModelCache, ModelKey};
pub use fault::{FaultAction, FaultPlan, FaultPoint};
pub use metrics::{MetricsRegistry, MetricsSnapshot, ModelMetricsSnapshot, LATENCY_BUCKETS};
pub use queue::{BoundedQueue, Popped, PushError};
pub use service::{
    ConfigError, InferenceResult, ModelId, Priority, ServeError, Service, ServiceConfig,
    ServiceStats, SubmitError, Ticket,
};

/// Re-exported from `nm_compiler` so serving callers can match on
/// [`InferenceResult::mode`] without a direct compiler dependency.
pub use nm_compiler::BatchPlan;

/// Re-exported from `nm_compiler` so serving callers can pick
/// [`ServiceConfig::tier`] without a direct compiler dependency.
pub use nm_compiler::ExecTier;

#[allow(unused_imports)] // doc links above resolve through this import
use nm_compiler::PreparedGraph;

#[cfg(test)]
mod tests {
    use super::*;
    use nm_compiler::{Options, Target};
    use nm_core::sparsity::Nm;
    use nm_core::Tensor;
    use nm_models::mlp_serve_sparse;
    use nm_nn::rng::XorShift;
    use std::sync::Arc;

    fn inputs(n: usize, c: usize, seed: u64) -> Vec<Tensor<i8>> {
        let mut rng = XorShift::new(seed);
        (0..n)
            .map(|_| Tensor::from_vec(&[c], rng.fill_weights(c, 50)).unwrap())
            .collect()
    }

    /// The crate-level smoke test: a coalescible model served at batch
    /// limit 4 matches the sequential baseline per request, and the
    /// batcher actually coalesced something.
    #[test]
    fn coalesced_service_matches_sequential_runs() {
        let graph = Arc::new(mlp_serve_sparse(&[64, 48, 32], Nm::ONE_OF_EIGHT, 5).unwrap());
        let opts = Options::new(Target::SparseIsa);
        let prepared = PreparedGraph::prepare(&graph, &opts).unwrap();
        let xs = inputs(8, 64, 9);
        let expected: Vec<_> = xs.iter().map(|x| prepared.run(x).unwrap()).collect();

        let service = Service::start(ServiceConfig {
            queue_capacity: 16,
            max_batch: 4,
            workers: 1,
            ..ServiceConfig::default()
        });
        let model = service.register("mlp", &graph, &opts).unwrap();
        // Shape the batches deterministically: enqueue the whole wave
        // while the worker is paused, so the coalescer must see runs of
        // exactly `max_batch` instead of whatever prefix raced in.
        service.pause();
        let tickets: Vec<_> = xs
            .iter()
            .map(|x| service.submit(model, x.clone()).unwrap())
            .collect();
        service.resume();
        for (ticket, want) in tickets.into_iter().zip(&expected) {
            let got = ticket.wait().unwrap();
            assert_eq!(got.output, want.output);
            assert_eq!(got.sim_cycles, Some(want.matmul_compute_cycles));
            assert_eq!(got.batch_size, 4, "8 queued requests over max_batch 4");
            assert_eq!(got.mode, BatchPlan::TokenCoalesced, "MLP chain coalesces");
        }
        let stats = service.shutdown();
        assert_eq!(stats.submitted, 8);
        assert_eq!(stats.completed, 8);
        assert_eq!(stats.shed, 0);
        assert_eq!(stats.batches, 2);
        assert_eq!(stats.max_coalesced, 4, "coalescing is exact when shaped");
    }

    /// A service on [`ExecTier::Native`] serves outputs bit-identical
    /// to the bulk sequential baseline and reports no simulated cycles.
    #[test]
    fn native_tier_service_matches_bulk_outputs_without_cycles() {
        let graph = Arc::new(mlp_serve_sparse(&[64, 48, 32], Nm::ONE_OF_EIGHT, 5).unwrap());
        let opts = Options::new(Target::SparseIsa);
        let prepared = PreparedGraph::prepare(&graph, &opts).unwrap(); // bulk tier
        let xs = inputs(6, 64, 31);
        let expected: Vec<_> = xs.iter().map(|x| prepared.run(x).unwrap()).collect();
        let service = Service::start(ServiceConfig {
            tier: ExecTier::Native,
            ..ServiceConfig::default()
        });
        let model = service.register("mlp", &graph, &opts).unwrap();
        let tickets: Vec<_> = xs
            .iter()
            .map(|x| service.submit(model, x.clone()).unwrap())
            .collect();
        for (t, want) in tickets.into_iter().zip(&expected) {
            let r = t.wait().unwrap();
            assert_eq!(r.output, want.output, "native outputs == bulk outputs");
            assert_eq!(r.sim_cycles, None, "cycles are undefined on native");
        }
        service.shutdown();
    }

    #[test]
    fn full_queue_sheds_and_reports() {
        let graph = Arc::new(mlp_serve_sparse(&[64, 48, 32], Nm::ONE_OF_EIGHT, 5).unwrap());
        let opts = Options::new(Target::SparseIsa);
        // One worker, capacity 2: the worker can hold at most one batch
        // in flight, so pushing many requests at once must shed some.
        let service = Service::start(ServiceConfig {
            queue_capacity: 2,
            max_batch: 1,
            workers: 1,
            ..ServiceConfig::default()
        });
        let model = service.register("mlp", &graph, &opts).unwrap();
        let mut accepted = Vec::new();
        let mut shed = 0u64;
        for x in inputs(64, 64, 11) {
            match service.submit(model, x) {
                Ok(t) => accepted.push(t),
                Err(SubmitError::Shed { capacity }) => {
                    assert_eq!(capacity, 2);
                    shed += 1;
                }
                Err(e) => panic!("unexpected submit error {e:?}"),
            }
        }
        let n = accepted.len() as u64;
        for t in accepted {
            t.wait().unwrap();
        }
        let stats = service.shutdown();
        assert_eq!(stats.shed, shed);
        assert_eq!(stats.submitted, n);
        assert_eq!(stats.completed, n);
        assert_eq!(n + shed, 64, "every request accounted for");
    }

    #[test]
    fn submit_validates_model_and_shape() {
        let graph = Arc::new(mlp_serve_sparse(&[64, 48, 32], Nm::ONE_OF_EIGHT, 5).unwrap());
        let opts = Options::new(Target::SparseIsa);
        let service = Service::start(ServiceConfig::default());
        let model = service.register("mlp", &graph, &opts).unwrap();
        let bad_shape = Tensor::from_vec(&[32], vec![0i8; 32]).unwrap();
        assert!(matches!(
            service.submit(model, bad_shape),
            Err(SubmitError::InvalidInput(_))
        ));
        let ok = Tensor::from_vec(&[64], vec![0i8; 64]).unwrap();
        assert!(matches!(
            service.submit(ModelId(7), ok),
            Err(SubmitError::UnknownModel(ModelId(7)))
        ));
        let stats = service.shutdown();
        assert_eq!(stats.submitted, 0);
    }

    /// Coalescing keys on the prepared artifact, not the ModelId:
    /// requests submitted under two ids that alias one cached model
    /// must still batch together (an id-keyed batcher would silently
    /// produce size-1 batches for interleaved aliased traffic).
    #[test]
    fn aliased_registrations_coalesce_into_one_batch() {
        let graph = Arc::new(mlp_serve_sparse(&[64, 48, 32], Nm::ONE_OF_EIGHT, 5).unwrap());
        let opts = Options::new(Target::SparseIsa);
        let service = Service::start(ServiceConfig {
            queue_capacity: 16,
            max_batch: 8,
            workers: 1,
            ..ServiceConfig::default()
        });
        let a = service.register("mlp", &graph, &opts).unwrap();
        let b = service.register("mlp", &graph, &opts).unwrap();
        assert_ne!(a, b);
        service.pause();
        let tickets: Vec<_> = inputs(8, 64, 23)
            .into_iter()
            .enumerate()
            .map(|(i, x)| {
                let id = if i % 2 == 0 { a } else { b };
                service.submit(id, x).unwrap()
            })
            .collect();
        service.resume();
        for t in tickets {
            let r = t.wait().unwrap();
            assert_eq!(r.batch_size, 8, "aliased ids must share one batch");
            assert!(r.mode.shares_work(), "a shared batch reports its plan");
        }
        let stats = service.shutdown();
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.max_coalesced, 8);
    }

    /// Registering the same (name, options) twice shares one prepared
    /// artifact through the cache; a different options key prepares a
    /// second one. The tier is *not* part of the caller-visible key:
    /// [`ServiceConfig::tier`] overrides it at registration, so options
    /// differing only in tier alias one artifact.
    #[test]
    fn registration_routes_through_the_model_cache() {
        let graph = Arc::new(mlp_serve_sparse(&[64, 48, 32], Nm::ONE_OF_EIGHT, 5).unwrap());
        let opts = Options::new(Target::SparseIsa);
        let service = Service::start(ServiceConfig::default());
        let a = service.register("mlp", &graph, &opts).unwrap();
        let b = service.register("mlp", &graph, &opts).unwrap();
        assert_ne!(a, b, "ids are distinct handles");
        let stats = service.cache_stats();
        assert_eq!((stats.misses, stats.hits), (1, 1), "one prepare, one hit");
        assert!(stats.resident_bytes > 0, "the artifact's bytes are gauged");
        assert_eq!(stats.resident_high_water, stats.resident_bytes);
        let mut tiered = opts;
        tiered.tier = ExecTier::Reference;
        service.register("mlp", &graph, &tiered).unwrap();
        let stats = service.cache_stats();
        assert_eq!(
            (stats.misses, stats.hits),
            (1, 2),
            "the service tier overrides Options::tier in the cache key"
        );
        let other = Options::new(Target::SparseSw);
        service.register("mlp", &graph, &other).unwrap();
        let stats = service.cache_stats();
        assert_eq!((stats.misses, stats.hits), (2, 2));
        assert_eq!(stats.evictions, 0, "unbounded cache never evicts");
        assert_eq!(service.model_count(), 4);
        service.shutdown();
    }

    /// Dropping the service without an explicit shutdown still performs
    /// the orderly close-drain-join (no hang, no lost request).
    #[test]
    fn drop_is_an_orderly_shutdown() {
        let graph = Arc::new(mlp_serve_sparse(&[64, 48, 32], Nm::ONE_OF_EIGHT, 5).unwrap());
        let opts = Options::new(Target::SparseIsa);
        let service = Service::start(ServiceConfig {
            queue_capacity: 32,
            max_batch: 4,
            workers: 2,
            ..ServiceConfig::default()
        });
        let model = service.register("mlp", &graph, &opts).unwrap();
        let tickets: Vec<_> = inputs(6, 64, 13)
            .into_iter()
            .map(|x| service.submit(model, x).unwrap())
            .collect();
        drop(service);
        for t in tickets {
            t.wait().unwrap();
        }
    }
}
