//! The bounded submission queue: backpressure by shedding (lowest class
//! first), ordered same-key batch coalescing on the pop side, and an
//! idle/drain protocol.
//!
//! The queue is the service's only admission point. Capacity is a hard
//! bound — a push against a full queue is **shed** (the item is handed
//! back to the caller, never silently dropped), which is how the service
//! reports overload instead of buffering without limit. Under capacity
//! pressure, [`push_or_displace`] first tries to make room by displacing
//! a queued item of a strictly *lower* class (higher class number) —
//! BestEffort work yields its slot to Interactive work — and only sheds
//! the incoming item when no lower-class item is queued. Workers pop
//! *batches*: the caller supplies a total dispatch order (the service
//! uses priority class, then earliest deadline); the most urgent item
//! leads the batch and further items sharing its key (same prepared
//! model) join in urgency order, up to a batch limit — the coalescing
//! step that lets the executor stage a model's tile weights once per
//! batch. Coalescing trades strict urgency order *across* keys for
//! staging reuse within one key, which is sound because batch members
//! execute independently and bit-identically to sequential runs.
//!
//! Drain/shutdown: [`close`] stops admissions while letting workers
//! finish what is queued (a closed, empty queue returns `None` from
//! [`pop_batch`], which is the worker exit signal); [`wait_idle`] blocks
//! until the queue is empty **and** every popped item has been
//! acknowledged via [`task_done`] — "empty" alone would declare victory
//! while a worker still holds a batch in flight.
//!
//! Deadline shedding: [`pop_batch_or_shed`] takes an expiry predicate
//! and sweeps every already-expired item out of the queue *before*
//! coalescing the dispatch batch — an expired request never occupies a
//! batch slot, and the caller receives the swept items to resolve
//! (fulfill with the documented deadline error and acknowledge). The
//! sweep is lazy: expiry is checked at dispatch time, not by a timer —
//! an idle queue pops (and therefore sweeps) the moment an item
//! arrives, so items only *sit* expired while every worker is busy, and
//! the next pop reaps them.
//!
//! Poisoning: every lock acquisition recovers from a poisoned mutex
//! (`PoisonError::into_inner`) instead of propagating the panic. This
//! is sound because the queue's critical sections leave the state
//! consistent at every panic point — items are moved in and out with
//! single `VecDeque` operations and the counters are adjusted next to
//! them — so a panic elsewhere on a thread that once held the lock must
//! not take the whole service down with it. The one documented
//! exception: the `key`/`expired`/`order`/`class` closures run under
//! the lock and must not panic (the service's closures are trivial
//! field reads).
//!
//! [`close`]: BoundedQueue::close
//! [`pop_batch`]: BoundedQueue::pop_batch
//! [`pop_batch_or_shed`]: BoundedQueue::pop_batch_or_shed
//! [`push_or_displace`]: BoundedQueue::push_or_displace
//! [`wait_idle`]: BoundedQueue::wait_idle
//! [`task_done`]: BoundedQueue::task_done

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, PoisonError};

/// Why a push was rejected; the item is returned to the caller in both
/// cases so nothing is silently dropped.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue is at capacity — the request is shed (backpressure).
    Full(T),
    /// The queue was closed — the service is shutting down.
    Closed(T),
}

/// The result of one [`BoundedQueue::pop_batch_or_shed`]: the coalesced
/// dispatch batch plus the items the expiry sweep shed. Both count as
/// in-flight until acknowledged via
/// [`task_done`](BoundedQueue::task_done) — the caller owes one
/// acknowledge for `batch.len() + expired.len()` items.
#[derive(Debug)]
pub struct Popped<T> {
    /// The most urgent item (per the caller's dispatch order) and every
    /// queued item sharing its key in urgency order, up to the batch
    /// limit, returned in arrival order. Empty only when the sweep shed
    /// everything that was waiting (then `expired` is non-empty).
    pub batch: Vec<T>,
    /// Items removed by the expiry predicate, in queue order; the
    /// caller must resolve them (they were accepted, so they are owed
    /// an answer).
    pub expired: Vec<T>,
}

#[derive(Debug)]
struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
    /// While set, pops block even with items waiting (admissions stay
    /// open) — the batch-shaping gate behind
    /// [`BoundedQueue::pause`]/[`resume`](BoundedQueue::resume).
    paused: bool,
    /// Items popped by workers but not yet acknowledged done.
    in_flight: usize,
    /// Highest `items.len()` ever reached, maintained at the push sites
    /// (inside the same critical section, so it can never lag a depth
    /// the queue actually held). Read by
    /// [`BoundedQueue::depth_stats`] for the exported gauge.
    high_water: usize,
}

/// A bounded MPMC queue with shed-on-full admission, coalescing batch
/// pops and an idle barrier. See the module docs for the protocol.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    capacity: usize,
    state: Mutex<QueueState<T>>,
    not_empty: Condvar,
    idle: Condvar,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue admitting at most `capacity` waiting items.
    ///
    /// # Panics
    /// Panics if `capacity` is zero (every push would shed).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        BoundedQueue {
            capacity,
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
                paused: false,
                in_flight: 0,
                high_water: 0,
            }),
            not_empty: Condvar::new(),
            idle: Condvar::new(),
        }
    }

    /// The admission bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Enqueues `item`, returning the queue depth after the push.
    ///
    /// # Errors
    /// [`PushError::Full`] when the queue is at capacity (the caller
    /// decides the shed policy) and [`PushError::Closed`] after
    /// [`close`](Self::close); the item is returned in both cases.
    pub fn push(&self, item: T) -> Result<usize, PushError<T>> {
        let mut state = self.lock();
        if state.closed {
            return Err(PushError::Closed(item));
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        state.items.push_back(item);
        state.high_water = state.high_water.max(state.items.len());
        self.not_empty.notify_one();
        Ok(state.items.len())
    }

    /// [`push`](Self::push) with class-aware displacement: when the
    /// queue is at capacity, a queued item of a strictly *lower* class
    /// (a numerically higher `class` value) is removed to make room and
    /// handed back as the `Option<T>` for the caller to resolve — the
    /// victim is the lowest-class queued item, breaking ties by the
    /// largest `order` key (the least urgent), then the latest arrival.
    /// The structural guarantee this buys the service: a push can only
    /// fail [`PushError::Full`] when **no** strictly-lower-class item
    /// occupies a slot — an Interactive request is never shed while
    /// BestEffort work is queued.
    ///
    /// # Errors
    /// [`PushError::Full`] when the queue is at capacity and every
    /// queued item is of the same or a more urgent class;
    /// [`PushError::Closed`] after [`close`](Self::close). The incoming
    /// item is returned in both cases.
    pub fn push_or_displace<C, G, O>(
        &self,
        item: T,
        class: C,
        order: G,
    ) -> Result<(usize, Option<T>), PushError<T>>
    where
        C: Fn(&T) -> usize,
        G: Fn(&T) -> O,
        O: Ord,
    {
        let mut state = self.lock();
        if state.closed {
            return Err(PushError::Closed(item));
        }
        if state.items.len() < self.capacity {
            state.items.push_back(item);
            state.high_water = state.high_water.max(state.items.len());
            self.not_empty.notify_one();
            return Ok((state.items.len(), None));
        }
        let incoming = class(&item);
        let victim = (0..state.items.len())
            .filter(|&i| class(&state.items[i]) > incoming)
            .max_by(|&a, &b| {
                (class(&state.items[a]), order(&state.items[a]), a).cmp(&(
                    class(&state.items[b]),
                    order(&state.items[b]),
                    b,
                ))
            });
        if let Some(i) = victim {
            if let Some(displaced) = state.items.remove(i) {
                state.items.push_back(item);
                // Depth is unchanged (1-for-1 swap), but keep the
                // invariant maintenance uniform across push sites.
                state.high_water = state.high_water.max(state.items.len());
                self.not_empty.notify_one();
                return Ok((state.items.len(), Some(displaced)));
            }
        }
        Err(PushError::Full(item))
    }

    /// Blocks until work is available (and the queue is not paused),
    /// then pops a coalesced batch in arrival order: the front item
    /// plus every later item whose `key` matches it, up to `max` items.
    /// Returns `None` once the queue is closed *and* empty — the worker
    /// exit signal; a close overrides a pause so shutdown always
    /// drains. The batch counts as in-flight until
    /// [`task_done`](Self::task_done) acknowledges it.
    pub fn pop_batch<K, F>(&self, max: usize, key: F) -> Option<Vec<T>>
    where
        F: Fn(&T) -> K,
        K: PartialEq,
    {
        // The never-expiring predicate guarantees an empty `expired`;
        // the unit order key makes urgency degenerate to arrival order.
        self.pop_batch_or_shed(max, key, |_| false, |_| ())
            .map(|p| p.batch)
    }

    /// [`pop_batch`](Self::pop_batch) with deadline shedding and a
    /// caller-supplied dispatch order: once work is available, every
    /// queued item matching `expired` is swept out (in queue order)
    /// *before* the dispatch batch is formed. Of what remains, the item
    /// with the smallest `order` key (ties broken by arrival) leads the
    /// batch — the service's key is `(priority class, deadline)`, which
    /// makes this earliest-deadline-first within priority bands — and
    /// further items sharing the leader's `key` join in urgency order
    /// up to `max`; the batch itself is returned in arrival order.
    /// Swept items are returned in [`Popped::expired`] for the caller
    /// to resolve; batch and swept items together count as in-flight
    /// until acknowledged. When the sweep empties the queue,
    /// [`Popped::batch`] is empty and the caller should resolve the
    /// expired items, acknowledge, and pop again.
    pub fn pop_batch_or_shed<K, F, E, G, O>(
        &self,
        max: usize,
        key: F,
        expired: E,
        order: G,
    ) -> Option<Popped<T>>
    where
        F: Fn(&T) -> K,
        K: PartialEq,
        E: Fn(&T) -> bool,
        G: Fn(&T) -> O,
        O: Ord,
    {
        let mut state = self.lock();
        loop {
            if state.closed {
                if state.items.is_empty() {
                    return None;
                }
                break; // drain on close, paused or not
            }
            if !state.paused && !state.items.is_empty() {
                break;
            }
            state = wait_recover(&self.not_empty, state);
        }
        // Expiry sweep: an expired request must not occupy a dispatch
        // slot, and one stuck behind a long same-key run must not wait
        // out another batch before being answered.
        let mut expired_items = Vec::new();
        if state.items.iter().any(&expired) {
            let drained = std::mem::take(&mut state.items);
            for item in drained {
                if expired(&item) {
                    expired_items.push(item);
                } else {
                    state.items.push_back(item);
                }
            }
        }
        let mut batch = Vec::new();
        if !state.items.is_empty() {
            // Urgency order: the caller's key, ties broken by arrival
            // position so equal-urgency traffic stays FIFO and two
            // identical queues always dispatch identically.
            let mut by_urgency: Vec<usize> = (0..state.items.len()).collect();
            by_urgency.sort_by(|&a, &b| {
                order(&state.items[a])
                    .cmp(&order(&state.items[b]))
                    .then(a.cmp(&b))
            });
            let leader = by_urgency[0];
            let k = key(&state.items[leader]);
            let mut selected = vec![false; state.items.len()];
            let mut taken = 0usize;
            for &i in &by_urgency {
                if taken >= max.max(1) {
                    break;
                }
                if key(&state.items[i]) == k {
                    selected[i] = true;
                    taken += 1;
                }
            }
            let drained = std::mem::take(&mut state.items);
            for (i, item) in drained.into_iter().enumerate() {
                if selected[i] {
                    batch.push(item);
                } else {
                    state.items.push_back(item);
                }
            }
        }
        state.in_flight += batch.len() + expired_items.len();
        Some(Popped {
            batch,
            expired: expired_items,
        })
    }

    /// Acknowledges `n` popped items as fully processed; wakes
    /// [`wait_idle`](Self::wait_idle) waiters when the queue becomes
    /// idle.
    pub fn task_done(&self, n: usize) {
        let mut state = self.lock();
        state.in_flight = state
            .in_flight
            .checked_sub(n)
            .unwrap_or_else(|| panic!("task_done({n}) exceeds in-flight items"));
        if state.items.is_empty() && state.in_flight == 0 {
            self.idle.notify_all();
        }
    }

    /// Pauses consumption: pops block even with items waiting, while
    /// pushes keep landing (up to capacity). The batch-shaping gate —
    /// enqueue a whole wave, then [`resume`](Self::resume) and the
    /// coalescing pop sees the entire run of same-key items at once
    /// instead of whatever scheduling raced in. [`close`](Self::close)
    /// overrides a pause so shutdown always drains.
    pub fn pause(&self) {
        self.lock().paused = true;
    }

    /// Resumes consumption after [`pause`](Self::pause), waking every
    /// blocked popper.
    pub fn resume(&self) {
        self.lock().paused = false;
        self.not_empty.notify_all();
    }

    /// Closes the queue: subsequent pushes fail with
    /// [`PushError::Closed`], workers drain what is queued and then see
    /// `None` from [`pop_batch`](Self::pop_batch).
    pub fn close(&self) {
        self.lock().closed = true;
        self.not_empty.notify_all();
        self.idle.notify_all();
    }

    /// Blocks until the queue is empty and no popped batch is still in
    /// flight — every accepted item has been *processed*, regardless of
    /// whether the queue is open, closed, or was closed mid-wait.
    /// Waiting while [`pause`](Self::pause)d with items queued blocks
    /// until someone resumes (or closes — a close overrides a pause in
    /// [`pop_batch`](Self::pop_batch)): idleness means processed, not
    /// parked.
    ///
    /// The guarantee leans on the consumer contract: whoever pops a
    /// batch must acknowledge it via [`task_done`](Self::task_done) on
    /// **every** exit path, panics included (the service's worker holds
    /// a drop guard for exactly this). A consumer that abandons a batch
    /// without acknowledging leaves `in_flight` stuck and wedges
    /// waiters — that is a consumer bug, not a state this method can
    /// distinguish from work in progress.
    pub fn wait_idle(&self) {
        let mut state = self.lock();
        while !(state.items.is_empty() && state.in_flight == 0) {
            state = wait_recover(&self.idle, state);
        }
    }

    /// Waiting items (excludes in-flight batches).
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// `(depth, high_water)` under **one** lock acquisition — the
    /// exported queue gauge. The pair is mutually consistent (depth can
    /// never exceed the high-water mark in the same reading), which a
    /// separate `len()` + racy re-count could not guarantee.
    pub fn depth_stats(&self) -> (usize, usize) {
        let state = self.lock();
        (state.items.len(), state.high_water)
    }

    /// Whether no items are waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Items popped but not yet acknowledged.
    pub fn in_flight(&self) -> usize {
        self.lock().in_flight
    }

    /// Whether [`close`](Self::close) was called.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, QueueState<T>> {
        // Poisoning-tolerant by design; see the module docs.
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// [`Condvar::wait`] with the same poisoning recovery as
/// [`BoundedQueue::lock`].
fn wait_recover<'a, T>(
    cv: &Condvar,
    guard: std::sync::MutexGuard<'a, T>,
) -> std::sync::MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_sheds_at_capacity_and_returns_the_item() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.push(1).unwrap(), 1);
        assert_eq!(q.push(2).unwrap(), 2);
        match q.push(3) {
            Err(PushError::Full(item)) => assert_eq!(item, 3),
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn pop_batch_coalesces_same_key_items_across_the_queue() {
        let q = BoundedQueue::new(8);
        for item in [(0, 'a'), (0, 'b'), (1, 'c'), (0, 'd')] {
            q.push(item).unwrap();
        }
        // The front item leads; every queued model-0 item joins its
        // batch (in arrival order), capped by max — a same-key item
        // behind a different key is pulled forward for staging reuse.
        let batch = q.pop_batch(4, |&(m, _)| m).unwrap();
        assert_eq!(batch, vec![(0, 'a'), (0, 'b'), (0, 'd')]);
        let batch = q.pop_batch(4, |&(m, _)| m).unwrap();
        assert_eq!(batch, vec![(1, 'c')]);
        // `max` still caps the coalesced run.
        for item in [(2, 'x'), (2, 'y'), (2, 'z')] {
            q.push(item).unwrap();
        }
        let batch = q.pop_batch(2, |&(m, _)| m).unwrap();
        assert_eq!(batch, vec![(2, 'x'), (2, 'y')]);
    }

    // The caller's dispatch order picks the batch leader: with a
    // (class, deadline) key the most urgent item runs first even from
    // the back of the queue, and its same-key peers join the batch.
    #[test]
    fn pop_batch_or_shed_dispatches_in_priority_then_deadline_order() {
        let q = BoundedQueue::new(8);
        // (model, class, deadline)
        for item in [(0, 1, 50), (1, 0, 90), (0, 1, 10), (1, 0, 20)] {
            q.push(item).unwrap();
        }
        let order = |&(_, c, d): &(u32, u32, u32)| (c, d);
        let key = |&(m, _, _): &(u32, u32, u32)| m;
        // Class 0 wins over class 1 despite arriving later; both model-1
        // items coalesce into the leader's batch, in arrival order.
        let p = q.pop_batch_or_shed(8, key, |_| false, order).unwrap();
        assert_eq!(p.batch, vec![(1, 0, 90), (1, 0, 20)]);
        q.task_done(2);
        // Within the remaining class, the earlier deadline leads.
        let p = q.pop_batch_or_shed(1, key, |_| false, order).unwrap();
        assert_eq!(p.batch, vec![(0, 1, 10)]);
        q.task_done(1);
        let p = q.pop_batch_or_shed(1, key, |_| false, order).unwrap();
        assert_eq!(p.batch, vec![(0, 1, 50)]);
        q.task_done(1);
    }

    // Displacement: a full queue makes room for a more urgent class by
    // handing back the least-urgent lowest-class item, and only reports
    // Full when no strictly-lower-class item is queued.
    #[test]
    fn push_or_displace_sheds_lowest_class_first() {
        let q = BoundedQueue::new(2);
        let class = |&(c, _): &(u32, u32)| c as usize;
        let order = |&(c, d): &(u32, u32)| (c, d);
        // (class, deadline)
        q.push((2, 10)).unwrap();
        q.push((2, 30)).unwrap();
        // Full; an incoming class-0 item displaces the least urgent
        // class-2 item (the later deadline).
        let (depth, displaced) = q.push_or_displace((0, 99), class, order).unwrap();
        assert_eq!(depth, 2);
        assert_eq!(displaced, Some((2, 30)));
        // An incoming class-1 item displaces the remaining class-2 one.
        let (_, displaced) = q.push_or_displace((1, 5), class, order).unwrap();
        assert_eq!(displaced, Some((2, 10)));
        // Queue now holds classes {0, 1}: a class-1 push finds no
        // strictly lower class and is shed, a class-0 push displaces
        // the class-1 item.
        match q.push_or_displace((1, 1), class, order) {
            Err(PushError::Full(item)) => assert_eq!(item, (1, 1)),
            other => panic!("expected Full, got {other:?}"),
        }
        let (_, displaced) = q.push_or_displace((0, 1), class, order).unwrap();
        assert_eq!(displaced, Some((1, 5)));
        // Top class among equals: never displaced, only shed.
        match q.push_or_displace((0, 0), class, order) {
            Err(PushError::Full(item)) => assert_eq!(item, (0, 0)),
            other => panic!("expected Full, got {other:?}"),
        }
        // Below capacity it is a plain push: nothing displaced.
        let p = q.pop_batch_or_shed(8, |_| (), |_| false, order).unwrap();
        q.task_done(p.batch.len());
        let (_, displaced) = q.push_or_displace((2, 7), class, order).unwrap();
        assert_eq!(displaced, None);
    }

    #[test]
    fn close_drains_then_signals_exit() {
        let q = BoundedQueue::new(4);
        q.push(7).unwrap();
        q.close();
        match q.push(8) {
            Err(PushError::Closed(item)) => assert_eq!(item, 8),
            other => panic!("expected Closed, got {other:?}"),
        }
        // Queued work is still handed out after close...
        assert_eq!(q.pop_batch(4, |_| ()).unwrap(), vec![7]);
        q.task_done(1);
        // ...and only then does the queue report exhaustion.
        assert!(q.pop_batch(4, |_| ()).is_none());
    }

    #[test]
    fn wait_idle_accounts_for_in_flight_batches() {
        let q = BoundedQueue::new(4);
        q.push(1).unwrap();
        q.push(1).unwrap();
        let batch = q.pop_batch(4, |&k| k).unwrap();
        assert!(q.is_empty(), "popped everything");
        assert_eq!(q.in_flight(), 2);
        std::thread::scope(|scope| {
            let t = scope.spawn(|| q.wait_idle());
            // The batch is still in flight; give the waiter a chance to
            // block, then acknowledge and expect it to wake.
            std::thread::yield_now();
            q.task_done(batch.len());
            t.join().unwrap();
        });
        assert_eq!(q.in_flight(), 0);
    }

    /// Pause parks consumers with items waiting; resume hands the whole
    /// accumulated run to one coalescing pop — the deterministic
    /// batch-shaping the service tests and benches rely on.
    #[test]
    fn pause_gates_pops_until_resume() {
        let q = BoundedQueue::new(8);
        q.pause();
        for item in [(0, 'a'), (0, 'b'), (0, 'c')] {
            q.push(item).unwrap();
        }
        std::thread::scope(|scope| {
            let popper = scope.spawn(|| q.pop_batch(8, |&(m, _)| m));
            // The popper must be parked despite three waiting items;
            // resume releases the whole run as one batch.
            std::thread::yield_now();
            assert_eq!(q.len(), 3, "paused queue kept its items");
            q.resume();
            let batch = popper.join().unwrap().unwrap();
            assert_eq!(batch, vec![(0, 'a'), (0, 'b'), (0, 'c')]);
        });
    }

    /// Close overrides pause: shutdown must drain a paused queue.
    #[test]
    fn close_drains_even_while_paused() {
        let q = BoundedQueue::new(4);
        q.pause();
        q.push(5).unwrap();
        q.close();
        assert_eq!(q.pop_batch(4, |_| ()).unwrap(), vec![5]);
        q.task_done(1);
        assert!(q.pop_batch(4, |_| ()).is_none());
    }

    /// `wait_idle` must NOT return just because the queue closed while
    /// a healthy batch is still in flight: drain-after-close is the
    /// natural shutdown sequence, and releasing the drainer early would
    /// let it read stats mid-batch. Idleness requires the acknowledge.
    #[test]
    fn close_does_not_release_wait_idle_while_work_is_in_flight() {
        let q = BoundedQueue::new(4);
        q.push(1).unwrap();
        let batch = q.pop_batch(4, |&k: &u32| k).unwrap();
        std::thread::scope(|scope| {
            let waiter = scope.spawn(|| q.wait_idle());
            std::thread::yield_now();
            q.close();
            // Closed, but the batch is unacknowledged: the waiter must
            // still be blocked. Prove it by completing the handshake
            // and observing the join only succeeds after task_done.
            std::thread::yield_now();
            assert_eq!(q.in_flight(), 1);
            q.task_done(batch.len());
            waiter.join().unwrap();
        });
        assert_eq!(q.in_flight(), 0);
    }

    #[test]
    fn blocked_pop_wakes_on_push() {
        let q = BoundedQueue::new(4);
        std::thread::scope(|scope| {
            let t = scope.spawn(|| q.pop_batch(4, |&k: &u32| k));
            std::thread::yield_now();
            q.push(9).unwrap();
            assert_eq!(t.join().unwrap().unwrap(), vec![9]);
        });
    }

    /// Expired items are swept before the batch is coalesced — even
    /// expired items sitting *behind* the front run, so a stalled
    /// client deep in the queue is answered at the next dispatch, not
    /// after every batch ahead of it. Both groups count in flight.
    #[test]
    fn pop_batch_or_shed_sweeps_expired_before_coalescing() {
        let q = BoundedQueue::new(8);
        // (key, expired)
        for item in [(0, false), (0, true), (0, false), (1, true), (1, false)] {
            q.push(item).unwrap();
        }
        let p = q
            .pop_batch_or_shed(8, |&(k, _): &(u32, bool)| k, |&(_, e)| e, |_| ())
            .unwrap();
        assert_eq!(p.expired, vec![(0, true), (1, true)], "queue-order sweep");
        assert_eq!(p.batch, vec![(0, false), (0, false)], "front run survives");
        assert_eq!(q.in_flight(), 4, "batch + expired are all in flight");
        q.task_done(4);
        assert_eq!(q.pop_batch(8, |&(k, _)| k).unwrap(), vec![(1, false)]);
        q.task_done(1);
        q.wait_idle();
    }

    /// A sweep that empties the queue returns an empty batch with the
    /// expired items — the caller resolves them, acknowledges and loops.
    #[test]
    fn all_expired_pop_returns_empty_batch() {
        let q = BoundedQueue::new(4);
        q.push(1u32).unwrap();
        q.push(2).unwrap();
        let p = q.pop_batch_or_shed(4, |&k| k, |_| true, |_| ()).unwrap();
        assert!(p.batch.is_empty());
        assert_eq!(p.expired, vec![1, 2]);
        assert_eq!(q.in_flight(), 2);
        q.task_done(2);
        q.wait_idle();
    }

    /// The depth gauge pair: high-water tracks the maximum depth ever
    /// held (through pops it does not decay), the two values come from
    /// one lock acquisition, and a displacement at capacity (a 1-for-1
    /// swap) does not inflate it.
    #[test]
    fn depth_stats_tracks_high_water_through_pops_and_displacement() {
        let q = BoundedQueue::new(3);
        assert_eq!(q.depth_stats(), (0, 0));
        q.push((2u32, 1u32)).unwrap();
        q.push((2, 2)).unwrap();
        assert_eq!(q.depth_stats(), (2, 2));
        let batch = q.pop_batch(8, |_| ()).unwrap();
        q.task_done(batch.len());
        assert_eq!(q.depth_stats(), (0, 2), "high water survives the drain");
        // Refill to capacity, then displace: depth stays at capacity and
        // the high-water mark does not overshoot it.
        let class = |&(c, _): &(u32, u32)| c as usize;
        let order = |&(c, d): &(u32, u32)| (c, d);
        for d in 0..3 {
            q.push((2, d)).unwrap();
        }
        assert_eq!(q.depth_stats(), (3, 3));
        let (_, displaced) = q.push_or_displace((0, 9), class, order).unwrap();
        assert!(displaced.is_some());
        assert_eq!(q.depth_stats(), (3, 3), "a 1-for-1 swap adds no depth");
    }

    /// A panic on a thread holding the queue lock must not wedge every
    /// later caller: the lock recovers (the queue's critical sections
    /// leave consistent state) instead of cascading the panic.
    #[test]
    fn poisoned_lock_recovers_instead_of_cascading() {
        let q = std::sync::Arc::new(BoundedQueue::new(4));
        q.push(1u32).unwrap();
        let qp = std::sync::Arc::clone(&q);
        let _ = std::thread::spawn(move || {
            let _guard = qp.state.lock().unwrap();
            panic!("poison the queue mutex");
        })
        .join();
        // Every entry point still works on the poisoned mutex.
        assert_eq!(q.len(), 1);
        q.push(2).unwrap();
        assert_eq!(q.pop_batch(4, |_| ()).unwrap(), vec![1, 2]);
        q.task_done(2);
        q.wait_idle();
    }
}
