//! Worker supervision: thread-level panic containment, bounded respawn
//! with exponential backoff, and service poisoning only when the
//! restart budget is exhausted.
//!
//! The per-batch `catch_unwind` in the worker loop contains ordinary
//! request-level panics, so a worker thread dies only when something
//! escapes that isolation — an injected `worker_spawn`/kill fault, or a
//! genuine bug in the dispatch path itself. Every worker runs under a
//! [`RespawnOnPanic`] drop guard: when the thread unwinds, the guard
//! (running during the unwind, on the dying thread) asks the supervisor
//! for a replacement. Each respawn consumes one unit of
//! [`ServiceConfig::restart_budget`](crate::ServiceConfig) and starts
//! after an exponentially growing backoff
//! ([`ServiceConfig::restart_backoff`](crate::ServiceConfig) doubled
//! per consecutive restart, capped at 32×) so a crash-looping worker
//! cannot spin the host. Only when the budget is spent — or a
//! replacement thread cannot be spawned at all — does the supervisor
//! **poison** the service: admissions close, everything still queued is
//! canceled (waiters unblock with
//! [`ServeError::Canceled`](crate::ServeError), counted in the
//! `canceled` shed class), and the service stays answerable but dead.
//! A single worker panic is never fatal; running out of the budget is.
//!
//! Shutdown joins through the supervisor's handle list, which a dying
//! worker appends its replacement to *before* it exits — the join loop
//! re-checks the list after every join, so replacements spawned during
//! shutdown are joined too (they observe the closed, drained queue and
//! exit immediately). Join panics are swallowed: a worker death was
//! already accounted (restart/poison counters) when it happened, and
//! resurfacing it during `Drop` while another panic unwinds would abort
//! the process.

use crate::fault::FaultPoint;
use crate::service::{cancel_queued, worker_loop, ServiceInner};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// Supervision state owned by the service; see the module docs.
#[derive(Debug, Default)]
pub(crate) struct Supervisor {
    handles: Mutex<Vec<JoinHandle<()>>>,
    /// Restart-budget units consumed.
    spent: Mutex<u32>,
    /// Monotonic worker-name counter (initial pool + respawns).
    next_index: AtomicUsize,
    poisoned: AtomicBool,
}

impl Supervisor {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Whether a worker death exhausted the restart budget (or a
    /// respawn failed) and the service was taken down.
    pub(crate) fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::SeqCst)
    }

    /// Spawns one supervised worker thread for `inner`, delayed by
    /// `backoff`. The thread consults the `worker_spawn` fault point
    /// (any armed action kills the fresh worker — which the guard then
    /// treats like any other death) and runs the worker loop under the
    /// respawn guard.
    pub(crate) fn spawn_worker(
        inner: &Arc<ServiceInner>,
        backoff: Duration,
    ) -> std::io::Result<()> {
        let index = inner.supervisor.next_index.fetch_add(1, Ordering::SeqCst);
        let arc = Arc::clone(inner);
        let handle = std::thread::Builder::new()
            .name(format!("nm-serve-worker-{index}"))
            .spawn(move || {
                if !backoff.is_zero() {
                    std::thread::sleep(backoff);
                }
                let _guard = RespawnOnPanic { inner: &arc };
                if let Some(plan) = arc.config.fault_plan.as_deref() {
                    if plan.check(FaultPoint::WorkerSpawn).is_some() {
                        panic!("injected fault: worker_spawn");
                    }
                }
                worker_loop(&arc);
            })?;
        inner
            .supervisor
            .handles
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(handle);
        Ok(())
    }

    /// Joins every worker, including replacements spawned while joining.
    /// Never panics — safe to run during another panic's unwind.
    pub(crate) fn join_all(&self) {
        loop {
            let handle = self
                .handles
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop();
            match handle {
                // Swallow join panics: the death was accounted when the
                // guard ran, and resurfacing inside Drop could abort.
                Some(handle) => drop(handle.join()),
                None => break,
            }
        }
    }

    /// Handles one worker death (called on the dying thread, during its
    /// unwind): spend budget and respawn, or poison the service.
    fn worker_died(inner: &Arc<ServiceInner>) {
        let spent = {
            let mut spent = inner
                .supervisor
                .spent
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if *spent >= inner.config.restart_budget {
                None
            } else {
                *spent += 1;
                Some(*spent)
            }
        };
        match spent {
            None => poison(inner),
            Some(nth) => {
                inner.stats.restarts.fetch_add(1, Ordering::SeqCst);
                let backoff = inner
                    .config
                    .restart_backoff
                    .saturating_mul(1u32 << nth.saturating_sub(1).min(5));
                if Supervisor::spawn_worker(inner, backoff).is_err() {
                    poison(inner)
                }
            }
        }
    }
}

/// Takes the service down after an unrecoverable worker loss: closes
/// admissions and cancels everything queued so no waiter hangs on a
/// consumer that will never come back.
fn poison(inner: &ServiceInner) {
    inner.supervisor.poisoned.store(true, Ordering::SeqCst);
    cancel_queued(&inner.queue);
}

/// Runs on every worker-thread exit; acts only when the thread is
/// unwinding from a panic (a normal exit — closed, drained queue — is
/// not a death).
struct RespawnOnPanic<'a> {
    inner: &'a Arc<ServiceInner>,
}

impl Drop for RespawnOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            Supervisor::worker_died(self.inner);
        }
    }
}
