//! First-class serving observability: per-model counters and
//! fixed-bucket latency histograms, exported in the Prometheus text
//! exposition format by [`Service::metrics_text`] — and *gated*, not
//! just printed: [`parse_text`] parses an export back into a
//! [`MetricsSnapshot`] whose ledgers the test suites assert equal to
//! the service's own [`ServiceStats`]/[`CacheStats`], exactly.
//!
//! ## What is exported
//!
//! * Every [`ServiceStats`] counter and gauge (`nm_serve_requests_*`,
//!   `nm_serve_shed_*` including the per-class full-shed breakdown,
//!   `nm_serve_worker_*`, `nm_serve_batches_total`,
//!   `nm_serve_batch_max_coalesced`).
//! * Every [`CacheStats`] counter and byte gauge (`nm_serve_cache_*`).
//! * Queue depth and its high-water mark
//!   (`nm_serve_queue_depth{,_high_water}`), sampled inside the queue
//!   mutex — never a racy re-count.
//! * Per-model request breakdowns (`nm_serve_model_requests_*`,
//!   `nm_serve_model_shed_*`), keyed by the *registered name* so
//!   aliased [`ModelId`]s sharing one cached artifact merge into one
//!   `model="…"` series.
//! * Per-model wall-clock latency histograms
//!   (`nm_serve_request_latency_seconds`) over the static log-spaced
//!   bounds in [`LATENCY_BUCKETS`], fed from each completed request's
//!   submit-to-fulfill latency at fulfill time. Only *completed*
//!   requests are observed, so at quiescence the histogram count equals
//!   the model's completed counter.
//!
//! ## Determinism
//!
//! Bucket *bounds* are compile-time constants, so the set of lines and
//! their order is deterministic for a given request set; the counter
//! lines are deterministic too (they mirror the exactly-reconciling
//! ledgers). The bucket *counts* and the `_sum` line are wall-clock
//! quantities and therefore host-dependent — everything else is not.
//!
//! ## Torn-scrape consistency
//!
//! A scrape may run while requests are in flight. The increment order
//! (global counter before per-model counter before histogram) and the
//! snapshot read order (histograms first, then per-model counters, then
//! queue/cache gauges, then [`ServiceStats`] with `submitted` last)
//! guarantee that any mid-run snapshot satisfies
//! [`MetricsSnapshot::check_internal`]: terminal classes never exceed
//! `submitted`, per-model counters never exceed their global
//! counterparts, and histogram counts never exceed `completed`. After a
//! drain the export is *exact*: [`MetricsSnapshot::check_quiesced`]
//! asserts equality with the ledgers and the five-term reconciliation
//! `submitted == completed + failed + shed_expired + shed_canceled +
//! shed_preempted`.
//!
//! [`Service::metrics_text`]: crate::service::Service::metrics_text
//! [`ServiceStats`]: crate::service::ServiceStats
//! [`CacheStats`]: crate::cache::CacheStats
//! [`ModelId`]: crate::service::ModelId

use crate::cache::CacheStats;
use crate::service::{Priority, ServiceStats};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock};
use std::time::Duration;

/// The static log-spaced latency bucket bounds: `(nanoseconds, label)`
/// pairs spanning 100 µs to 10 s on a 1–2.5–5 decade ladder, plus the
/// implicit `+Inf` bucket. The labels are the exact `le` strings
/// rendered into the export, so the text is deterministic — no float
/// formatting is involved.
pub const LATENCY_BUCKETS: [(u64, &str); 16] = [
    (100_000, "0.0001"),
    (250_000, "0.00025"),
    (500_000, "0.0005"),
    (1_000_000, "0.001"),
    (2_500_000, "0.0025"),
    (5_000_000, "0.005"),
    (10_000_000, "0.01"),
    (25_000_000, "0.025"),
    (50_000_000, "0.05"),
    (100_000_000, "0.1"),
    (250_000_000, "0.25"),
    (500_000_000, "0.5"),
    (1_000_000_000, "1"),
    (2_500_000_000, "2.5"),
    (5_000_000_000, "5"),
    (10_000_000_000, "10"),
];

/// Live per-model counters and the latency histogram, keyed by the
/// registered model *name* (aliased registrations share one handle).
/// Opaque outside the crate; the service increments it at the
/// submit/fulfill/shed sites and `MetricsRegistry::snapshot_models`
/// reads it in the torn-safe order (see the module docs).
#[derive(Debug, Default)]
pub struct ModelMetrics {
    name: String,
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    shed_expired: AtomicU64,
    shed_canceled: AtomicU64,
    shed_preempted: AtomicU64,
    bucket_counts: [AtomicU64; LATENCY_BUCKETS.len()],
    latency_count: AtomicU64,
    latency_sum_nanos: AtomicU64,
}

impl ModelMetrics {
    /// Counts an accepted request. Call *after* the global `submitted`
    /// increment; undo with [`unrecord_submitted`](Self::unrecord_submitted)
    /// (per-model first) if the push is then rejected.
    pub(crate) fn record_submitted(&self) {
        self.submitted.fetch_add(1, Ordering::SeqCst);
    }

    /// Reverts [`record_submitted`](Self::record_submitted) when the
    /// queue rejects the push. Call *before* the global decrement so
    /// `per-model <= global` holds at every instant.
    pub(crate) fn unrecord_submitted(&self) {
        self.submitted.fetch_sub(1, Ordering::SeqCst);
    }

    /// Counts a completion and observes its latency. Call *after* the
    /// global `completed` increment. Write order inside (completed,
    /// then count, then bucket, then sum) pairs with the snapshot read
    /// order to keep mid-run scrapes consistent.
    pub(crate) fn record_completed(&self, latency: Duration) {
        self.completed.fetch_add(1, Ordering::SeqCst);
        self.latency_count.fetch_add(1, Ordering::SeqCst);
        let nanos = u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX);
        if let Some(i) = LATENCY_BUCKETS
            .iter()
            .position(|&(bound, _)| nanos <= bound)
        {
            self.bucket_counts[i].fetch_add(1, Ordering::SeqCst);
        }
        self.latency_sum_nanos.fetch_add(nanos, Ordering::SeqCst);
    }

    /// Counts an execution failure (after the global increment).
    pub(crate) fn record_failed(&self) {
        self.failed.fetch_add(1, Ordering::SeqCst);
    }

    /// Counts a deadline shed at dispatch (after the global increment).
    pub(crate) fn record_expired(&self) {
        self.shed_expired.fetch_add(1, Ordering::SeqCst);
    }

    /// Counts a cancellation (after the global increment) — fired from
    /// the [`Pending`](crate::service) drop guard wherever it runs.
    pub(crate) fn record_canceled(&self) {
        self.shed_canceled.fetch_add(1, Ordering::SeqCst);
    }

    /// Counts a displacement victim (after the global increment).
    pub(crate) fn record_preempted(&self) {
        self.shed_preempted.fetch_add(1, Ordering::SeqCst);
    }

    /// Reads the counters in the torn-safe order: histogram buckets,
    /// then the histogram count and sum, then the terminal-class
    /// counters, then `submitted` last.
    fn snapshot(&self) -> ModelMetricsSnapshot {
        let mut buckets = [0u64; LATENCY_BUCKETS.len()];
        for (slot, counter) in buckets.iter_mut().zip(&self.bucket_counts) {
            *slot = counter.load(Ordering::SeqCst);
        }
        let latency_count = self.latency_count.load(Ordering::SeqCst);
        let latency_sum_nanos = self.latency_sum_nanos.load(Ordering::SeqCst);
        let completed = self.completed.load(Ordering::SeqCst);
        let failed = self.failed.load(Ordering::SeqCst);
        let shed_expired = self.shed_expired.load(Ordering::SeqCst);
        let shed_canceled = self.shed_canceled.load(Ordering::SeqCst);
        let shed_preempted = self.shed_preempted.load(Ordering::SeqCst);
        let submitted = self.submitted.load(Ordering::SeqCst);
        ModelMetricsSnapshot {
            model: self.name.clone(),
            buckets,
            latency_count,
            latency_sum_nanos,
            submitted,
            completed,
            failed,
            shed_expired,
            shed_canceled,
            shed_preempted,
        }
    }
}

/// The per-model metric slots, owned by the service. Handles are
/// deduplicated by model name, so re-registrations (and `ModelId`s
/// aliasing one cached artifact) feed one series.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    models: RwLock<Vec<Arc<ModelMetrics>>>,
}

impl MetricsRegistry {
    /// The metric handle for `name`, created on first use.
    pub(crate) fn handle(&self, name: &str) -> Arc<ModelMetrics> {
        {
            let models = self.models.read().unwrap_or_else(PoisonError::into_inner);
            if let Some(m) = models.iter().find(|m| m.name == name) {
                return Arc::clone(m);
            }
        }
        let mut models = self.models.write().unwrap_or_else(PoisonError::into_inner);
        if let Some(m) = models.iter().find(|m| m.name == name) {
            return Arc::clone(m);
        }
        let m = Arc::new(ModelMetrics {
            name: name.to_string(),
            ..ModelMetrics::default()
        });
        models.push(Arc::clone(&m));
        m
    }

    /// Per-model snapshots in registration order (the torn-safe read
    /// order starts here — call this before reading queue, cache or
    /// service counters).
    pub(crate) fn snapshot_models(&self) -> Vec<ModelMetricsSnapshot> {
        self.models
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|m| m.snapshot())
            .collect()
    }
}

/// One model's exported counters and histogram, as read (or parsed
/// back) from the text exposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelMetricsSnapshot {
    /// The registered model name (the `model` label value).
    pub model: String,
    /// Non-cumulative counts per finite bucket of [`LATENCY_BUCKETS`]
    /// (the export renders them cumulatively; [`parse_text`] undoes
    /// that). Completions slower than the last bound land only in the
    /// implicit `+Inf` bucket, i.e. in `latency_count`.
    pub buckets: [u64; LATENCY_BUCKETS.len()],
    /// Total latency observations (`_count`, also the `+Inf` bucket).
    pub latency_count: u64,
    /// Sum of observed latencies in nanoseconds (`_sum` renders as
    /// seconds with 9 fixed decimals, so the round trip is exact).
    pub latency_sum_nanos: u64,
    /// Accepted requests for this model.
    pub submitted: u64,
    /// Completed requests (each also observed by the histogram).
    pub completed: u64,
    /// Requests fulfilled with an execution error.
    pub failed: u64,
    /// Deadline sheds at dispatch.
    pub shed_expired: u64,
    /// Cancellations (worker death, poisoning, shutdown).
    pub shed_canceled: u64,
    /// Displacement victims.
    pub shed_preempted: u64,
}

impl ModelMetricsSnapshot {
    fn terminal_sum(&self) -> u64 {
        self.completed + self.failed + self.shed_expired + self.shed_canceled + self.shed_preempted
    }
}

/// Everything one scrape exports, as a value: build it with
/// [`Service::metrics_snapshot`], render it with
/// [`render`](Self::render), or recover it from text with
/// [`parse_text`]. Equality is field-exact, which is what the gating
/// tests assert.
///
/// [`Service::metrics_snapshot`]: crate::service::Service::metrics_snapshot
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Per-model series in registration order.
    pub models: Vec<ModelMetricsSnapshot>,
    /// Waiting requests at scrape time (sampled under the queue mutex).
    pub queue_depth: u64,
    /// Highest queue depth ever observed (same lock acquisition as
    /// `queue_depth`, so the pair is consistent).
    pub queue_depth_high_water: u64,
    /// The cache ledger, verbatim.
    pub cache: CacheStats,
    /// The service ledger, verbatim (`submitted` read last).
    pub service: ServiceStats,
}

const F_SUBMITTED: &str = "nm_serve_requests_submitted_total";
const F_COMPLETED: &str = "nm_serve_requests_completed_total";
const F_FAILED: &str = "nm_serve_requests_failed_total";
const F_SHED_FULL: &str = "nm_serve_shed_full_total";
const F_SHED_FULL_CLASS: &str = "nm_serve_shed_full_by_class_total";
const F_SHED_EXPIRED: &str = "nm_serve_shed_expired_total";
const F_SHED_CANCELED: &str = "nm_serve_shed_canceled_total";
const F_SHED_PREEMPTED: &str = "nm_serve_shed_preempted_total";
const F_WORKER_PANICS: &str = "nm_serve_worker_panics_total";
const F_RESTARTS: &str = "nm_serve_worker_restarts_total";
const F_BATCHES: &str = "nm_serve_batches_total";
const F_MAX_COALESCED: &str = "nm_serve_batch_max_coalesced";
const F_QUEUE_DEPTH: &str = "nm_serve_queue_depth";
const F_QUEUE_HIGH: &str = "nm_serve_queue_depth_high_water";
const F_CACHE_HITS: &str = "nm_serve_cache_hits_total";
const F_CACHE_MISSES: &str = "nm_serve_cache_misses_total";
const F_CACHE_FAILED: &str = "nm_serve_cache_failed_prepares_total";
const F_CACHE_EVICTIONS: &str = "nm_serve_cache_evictions_total";
const F_CACHE_RESIDENT: &str = "nm_serve_cache_resident_bytes";
const F_CACHE_RESIDENT_HIGH: &str = "nm_serve_cache_resident_bytes_high_water";
const F_M_SUBMITTED: &str = "nm_serve_model_requests_submitted_total";
const F_M_COMPLETED: &str = "nm_serve_model_requests_completed_total";
const F_M_FAILED: &str = "nm_serve_model_requests_failed_total";
const F_M_EXPIRED: &str = "nm_serve_model_shed_expired_total";
const F_M_CANCELED: &str = "nm_serve_model_shed_canceled_total";
const F_M_PREEMPTED: &str = "nm_serve_model_shed_preempted_total";
const F_LATENCY: &str = "nm_serve_request_latency_seconds";

/// Escapes a label value per the exposition format (`\` → `\\`,
/// `"` → `\"`, newline → `\n`).
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn family(out: &mut String, name: &str, kind: &str, help: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

fn plain(out: &mut String, name: &str, value: u64) {
    let _ = writeln!(out, "{name} {value}");
}

fn labeled(out: &mut String, name: &str, label: &str, label_value: &str, value: u64) {
    let _ = writeln!(
        out,
        "{name}{{{label}=\"{}\"}} {value}",
        escape_label(label_value)
    );
}

/// Renders nanoseconds as seconds with 9 fixed decimals — exact, so
/// the parse round trip reproduces the stored value bit for bit.
fn nanos_as_secs(nanos: u64) -> String {
    format!("{}.{:09}", nanos / 1_000_000_000, nanos % 1_000_000_000)
}

/// Accessor projecting one counter out of a per-model snapshot — the
/// render/check tables below pair each with its family name.
type ModelField = fn(&ModelMetricsSnapshot) -> u64;

impl MetricsSnapshot {
    /// The Prometheus text exposition of this snapshot. Line set and
    /// order are deterministic (see the module docs for which *values*
    /// are host-dependent).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let s = &self.service;
        let per_model: [(&str, &str, ModelField); 6] = [
            (F_M_SUBMITTED, "Accepted requests per model.", |m| {
                m.submitted
            }),
            (F_M_COMPLETED, "Completed requests per model.", |m| {
                m.completed
            }),
            (F_M_FAILED, "Failed requests per model.", |m| m.failed),
            (F_M_EXPIRED, "Deadline sheds at dispatch per model.", |m| {
                m.shed_expired
            }),
            (F_M_CANCELED, "Canceled requests per model.", |m| {
                m.shed_canceled
            }),
            (F_M_PREEMPTED, "Displacement victims per model.", |m| {
                m.shed_preempted
            }),
        ];

        family(
            &mut out,
            F_SUBMITTED,
            "counter",
            "Requests accepted into the queue.",
        );
        plain(&mut out, F_SUBMITTED, s.submitted);
        family(
            &mut out,
            F_COMPLETED,
            "counter",
            "Requests fulfilled with a result.",
        );
        plain(&mut out, F_COMPLETED, s.completed);
        family(
            &mut out,
            F_FAILED,
            "counter",
            "Requests fulfilled with an execution error.",
        );
        plain(&mut out, F_FAILED, s.failed);
        family(
            &mut out,
            F_SHED_FULL,
            "counter",
            "Submissions refused at the full queue.",
        );
        plain(&mut out, F_SHED_FULL, s.shed);
        family(
            &mut out,
            F_SHED_FULL_CLASS,
            "counter",
            "Full-queue sheds by the rejected request's priority class.",
        );
        for p in Priority::ALL {
            labeled(
                &mut out,
                F_SHED_FULL_CLASS,
                "class",
                p.label(),
                s.shed_full_by_class[p.rank()],
            );
        }
        family(
            &mut out,
            F_SHED_EXPIRED,
            "counter",
            "Accepted requests shed at dispatch past their deadline.",
        );
        plain(&mut out, F_SHED_EXPIRED, s.shed_expired);
        family(
            &mut out,
            F_SHED_CANCELED,
            "counter",
            "Accepted requests canceled before execution.",
        );
        plain(&mut out, F_SHED_CANCELED, s.shed_canceled);
        family(
            &mut out,
            F_SHED_PREEMPTED,
            "counter",
            "Accepted requests displaced by a higher-priority submit.",
        );
        plain(&mut out, F_SHED_PREEMPTED, s.shed_preempted);
        family(
            &mut out,
            F_WORKER_PANICS,
            "counter",
            "Panics caught by the per-batch isolation.",
        );
        plain(&mut out, F_WORKER_PANICS, s.worker_panics);
        family(
            &mut out,
            F_RESTARTS,
            "counter",
            "Worker threads respawned by the supervisor.",
        );
        plain(&mut out, F_RESTARTS, s.restarts);
        family(&mut out, F_BATCHES, "counter", "Batches executed.");
        plain(&mut out, F_BATCHES, s.batches);
        family(
            &mut out,
            F_MAX_COALESCED,
            "gauge",
            "Largest batch coalesced so far.",
        );
        plain(&mut out, F_MAX_COALESCED, s.max_coalesced);
        family(
            &mut out,
            F_QUEUE_DEPTH,
            "gauge",
            "Waiting requests, sampled under the queue mutex.",
        );
        plain(&mut out, F_QUEUE_DEPTH, self.queue_depth);
        family(
            &mut out,
            F_QUEUE_HIGH,
            "gauge",
            "Highest queue depth ever observed.",
        );
        plain(&mut out, F_QUEUE_HIGH, self.queue_depth_high_water);
        family(
            &mut out,
            F_CACHE_HITS,
            "counter",
            "Model-cache lookups served from the cache.",
        );
        plain(&mut out, F_CACHE_HITS, self.cache.hits);
        family(
            &mut out,
            F_CACHE_MISSES,
            "counter",
            "Model-cache lookups that paid a successful preparation.",
        );
        plain(&mut out, F_CACHE_MISSES, self.cache.misses);
        family(
            &mut out,
            F_CACHE_FAILED,
            "counter",
            "Model-cache lookups whose preparation failed.",
        );
        plain(&mut out, F_CACHE_FAILED, self.cache.failed_prepares);
        family(
            &mut out,
            F_CACHE_EVICTIONS,
            "counter",
            "Cache entries dropped under the byte budget.",
        );
        plain(&mut out, F_CACHE_EVICTIONS, self.cache.evictions);
        family(
            &mut out,
            F_CACHE_RESIDENT,
            "gauge",
            "Resident bytes of everything currently cached.",
        );
        plain(&mut out, F_CACHE_RESIDENT, self.cache.resident_bytes);
        family(
            &mut out,
            F_CACHE_RESIDENT_HIGH,
            "gauge",
            "Highest resident_bytes ever observed.",
        );
        plain(
            &mut out,
            F_CACHE_RESIDENT_HIGH,
            self.cache.resident_high_water,
        );

        for (name, help, get) in per_model {
            family(&mut out, name, "counter", help);
            for m in &self.models {
                labeled(&mut out, name, "model", &m.model, get(m));
            }
        }

        family(
            &mut out,
            F_LATENCY,
            "histogram",
            "Wall-clock submit-to-fulfill latency of completed requests (host-dependent).",
        );
        for m in &self.models {
            let escaped = escape_label(&m.model);
            let mut cumulative = 0u64;
            for ((_, le), count) in LATENCY_BUCKETS.iter().zip(&m.buckets) {
                cumulative += count;
                let _ = writeln!(
                    out,
                    "{F_LATENCY}_bucket{{model=\"{escaped}\",le=\"{le}\"}} {cumulative}"
                );
            }
            let _ = writeln!(
                out,
                "{F_LATENCY}_bucket{{model=\"{escaped}\",le=\"+Inf\"}} {}",
                m.latency_count
            );
            let _ = writeln!(
                out,
                "{F_LATENCY}_sum{{model=\"{escaped}\"}} {}",
                nanos_as_secs(m.latency_sum_nanos)
            );
            let _ = writeln!(
                out,
                "{F_LATENCY}_count{{model=\"{escaped}\"}} {}",
                m.latency_count
            );
        }
        out
    }

    /// The invariants every scrape must satisfy, *including* a mid-run
    /// scrape taken while requests are in flight (the write/read
    /// ordering in the module docs is what makes them hold):
    ///
    /// * terminal classes never exceed `submitted` (globally and per
    ///   model), and the per-class full-shed breakdown never exceeds
    ///   the `shed` aggregate;
    /// * per-model counters never exceed their global counterparts;
    /// * a model's histogram count never exceeds its `completed`, and
    ///   its finite buckets never exceed the count;
    /// * gauges respect their high-water marks.
    ///
    /// # Errors
    /// The violated invariant, named.
    pub fn check_internal(&self) -> Result<(), String> {
        let s = &self.service;
        let terminals =
            s.completed + s.failed + s.shed_expired + s.shed_canceled + s.shed_preempted;
        if terminals > s.submitted {
            return Err(format!(
                "terminal classes exceed submitted: {terminals} > {}",
                s.submitted
            ));
        }
        let by_class: u64 = s.shed_full_by_class.iter().sum();
        if by_class > s.shed {
            return Err(format!(
                "per-class full sheds exceed the aggregate: {by_class} > {}",
                s.shed
            ));
        }
        if self.queue_depth > self.queue_depth_high_water {
            return Err(format!(
                "queue depth {} exceeds its high-water mark {}",
                self.queue_depth, self.queue_depth_high_water
            ));
        }
        if self.cache.resident_bytes > self.cache.resident_high_water {
            return Err(format!(
                "resident bytes {} exceed the high-water mark {}",
                self.cache.resident_bytes, self.cache.resident_high_water
            ));
        }
        let sums: [(&str, ModelField, u64); 6] = [
            ("submitted", |m| m.submitted, s.submitted),
            ("completed", |m| m.completed, s.completed),
            ("failed", |m| m.failed, s.failed),
            ("shed_expired", |m| m.shed_expired, s.shed_expired),
            ("shed_canceled", |m| m.shed_canceled, s.shed_canceled),
            ("shed_preempted", |m| m.shed_preempted, s.shed_preempted),
        ];
        for (what, get, global) in sums {
            let sum: u64 = self.models.iter().map(get).sum();
            if sum > global {
                return Err(format!(
                    "per-model {what} sum exceeds the global counter: {sum} > {global}"
                ));
            }
        }
        for m in &self.models {
            if m.terminal_sum() > m.submitted {
                return Err(format!(
                    "model {:?}: terminal classes exceed submitted: {} > {}",
                    m.model,
                    m.terminal_sum(),
                    m.submitted
                ));
            }
            if m.latency_count > m.completed {
                return Err(format!(
                    "model {:?}: histogram count exceeds completed: {} > {}",
                    m.model, m.latency_count, m.completed
                ));
            }
            let finite: u64 = m.buckets.iter().sum();
            if finite > m.latency_count {
                return Err(format!(
                    "model {:?}: finite buckets exceed the histogram count: {finite} > {}",
                    m.model, m.latency_count
                ));
            }
        }
        Ok(())
    }

    /// The *exact* gating check for a quiesced scrape (taken after a
    /// drain, with no traffic racing it): everything
    /// [`check_internal`](Self::check_internal) demands, plus field
    /// equality with the service's own ledgers, the five-term
    /// reconciliation `submitted == completed + failed + shed_expired +
    /// shed_canceled + shed_preempted` (globally and per model),
    /// per-model sums equal to the global counters, per-class full
    /// sheds summing to the aggregate, and histogram counts equal to
    /// `completed` per model.
    ///
    /// # Errors
    /// The violated contract, named.
    pub fn check_quiesced(&self, service: &ServiceStats, cache: &CacheStats) -> Result<(), String> {
        self.check_internal()?;
        if self.service != *service {
            return Err(format!(
                "exported service ledger differs: {:?} != {service:?}",
                self.service
            ));
        }
        if self.cache != *cache {
            return Err(format!(
                "exported cache ledger differs: {:?} != {cache:?}",
                self.cache
            ));
        }
        let s = &self.service;
        let terminals =
            s.completed + s.failed + s.shed_expired + s.shed_canceled + s.shed_preempted;
        if terminals != s.submitted {
            return Err(format!(
                "five-term reconciliation fails on the export: {terminals} != {}",
                s.submitted
            ));
        }
        let by_class: u64 = s.shed_full_by_class.iter().sum();
        if by_class != s.shed {
            return Err(format!(
                "per-class full sheds do not sum to the aggregate: {by_class} != {}",
                s.shed
            ));
        }
        let sums: [(&str, ModelField, u64); 6] = [
            ("submitted", |m| m.submitted, s.submitted),
            ("completed", |m| m.completed, s.completed),
            ("failed", |m| m.failed, s.failed),
            ("shed_expired", |m| m.shed_expired, s.shed_expired),
            ("shed_canceled", |m| m.shed_canceled, s.shed_canceled),
            ("shed_preempted", |m| m.shed_preempted, s.shed_preempted),
        ];
        for (what, get, global) in sums {
            let sum: u64 = self.models.iter().map(get).sum();
            if sum != global {
                return Err(format!(
                    "per-model {what} sum does not reconcile: {sum} != {global}"
                ));
            }
        }
        for m in &self.models {
            if m.terminal_sum() != m.submitted {
                return Err(format!(
                    "model {:?}: five-term reconciliation fails: {} != {}",
                    m.model,
                    m.terminal_sum(),
                    m.submitted
                ));
            }
            if m.latency_count != m.completed {
                return Err(format!(
                    "model {:?}: histogram count {} != completed {}",
                    m.model, m.latency_count, m.completed
                ));
            }
        }
        Ok(())
    }
}

/// One parsed sample line: name, labels, raw value text.
struct Sample {
    name: String,
    labels: Vec<(String, String)>,
    value: String,
}

/// Splits one non-comment exposition line into a [`Sample`], honoring
/// escapes inside quoted label values.
fn parse_sample(line: &str) -> Result<Sample, String> {
    let bad = |what: &str| format!("{what} in metric line {line:?}");
    let Some(brace) = line.find('{') else {
        let mut it = line.split_whitespace();
        let name = it.next().ok_or_else(|| bad("missing name"))?.to_string();
        let value = it.next().ok_or_else(|| bad("missing value"))?.to_string();
        if it.next().is_some() {
            return Err(bad("trailing tokens"));
        }
        return Ok(Sample {
            name,
            labels: Vec::new(),
            value,
        });
    };
    let name = line[..brace].to_string();
    let mut labels = Vec::new();
    let mut chars = line[brace + 1..].chars().peekable();
    loop {
        if chars.peek() == Some(&'}') {
            chars.next();
            break;
        }
        let mut key = String::new();
        for c in chars.by_ref() {
            if c == '=' {
                break;
            }
            key.push(c);
        }
        if chars.next() != Some('"') {
            return Err(bad("label value is not quoted"));
        }
        let mut value = String::new();
        loop {
            match chars.next() {
                Some('\\') => match chars.next() {
                    Some('\\') => value.push('\\'),
                    Some('"') => value.push('"'),
                    Some('n') => value.push('\n'),
                    _ => return Err(bad("unknown escape")),
                },
                Some('"') => break,
                Some(c) => value.push(c),
                None => return Err(bad("unterminated label value")),
            }
        }
        labels.push((key, value));
        if chars.peek() == Some(&',') {
            chars.next();
        }
    }
    let value = chars.collect::<String>().trim().to_string();
    if value.is_empty() {
        return Err(bad("missing value"));
    }
    Ok(Sample {
        name,
        labels,
        value,
    })
}

fn parse_u64(value: &str, what: &str) -> Result<u64, String> {
    value
        .parse::<u64>()
        .map_err(|e| format!("{what}: unparsable value {value:?}: {e}"))
}

/// Parses a `_sum` value ("secs.nanos9") back to nanoseconds, exactly.
fn parse_secs_to_nanos(value: &str) -> Result<u64, String> {
    let (secs, frac) = value
        .split_once('.')
        .ok_or_else(|| format!("latency sum {value:?} is not secs.frac"))?;
    if frac.len() != 9 {
        return Err(format!("latency sum {value:?} must carry 9 decimals"));
    }
    let secs = parse_u64(secs, "latency sum seconds")?;
    let nanos = parse_u64(frac, "latency sum fraction")?;
    secs.checked_mul(1_000_000_000)
        .and_then(|n| n.checked_add(nanos))
        .ok_or_else(|| format!("latency sum {value:?} overflows"))
}

fn find_plain(samples: &[Sample], name: &str) -> Result<u64, String> {
    let s = samples
        .iter()
        .find(|s| s.name == name && s.labels.is_empty())
        .ok_or_else(|| format!("missing metric {name}"))?;
    parse_u64(&s.value, name)
}

fn find_labeled<'a>(
    samples: &'a [Sample],
    name: &str,
    label: &str,
    value: &str,
) -> Result<&'a Sample, String> {
    samples
        .iter()
        .find(|s| s.name == name && s.labels.iter().any(|(k, v)| k == label && v == value))
        .ok_or_else(|| format!("missing metric {name}{{{label}={value:?}}}"))
}

fn find_model(samples: &[Sample], name: &str, model: &str) -> Result<u64, String> {
    let s = find_labeled(samples, name, "model", model)?;
    parse_u64(&s.value, name)
}

/// Parses a [`MetricsSnapshot::render`] export back into the snapshot
/// value — the gating direction: the test suites assert the parsed
/// ledgers equal the service's own, exactly.
///
/// # Errors
/// A message naming the malformed or missing line. Valid mid-run
/// scrapes always parse; semantic invariants are
/// [`MetricsSnapshot::check_internal`]'s job, except the structural
/// ones a histogram cannot violate (cumulative buckets must be
/// monotone, and the `+Inf` bucket must equal `_count`).
pub fn parse_text(text: &str) -> Result<MetricsSnapshot, String> {
    let mut samples = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        samples.push(parse_sample(line)?);
    }
    let service = ServiceStats {
        submitted: find_plain(&samples, F_SUBMITTED)?,
        completed: find_plain(&samples, F_COMPLETED)?,
        failed: find_plain(&samples, F_FAILED)?,
        shed: find_plain(&samples, F_SHED_FULL)?,
        shed_full_by_class: {
            let mut by_class = [0u64; 3];
            for p in Priority::ALL {
                let s = find_labeled(&samples, F_SHED_FULL_CLASS, "class", p.label())?;
                by_class[p.rank()] = parse_u64(&s.value, F_SHED_FULL_CLASS)?;
            }
            by_class
        },
        shed_expired: find_plain(&samples, F_SHED_EXPIRED)?,
        shed_canceled: find_plain(&samples, F_SHED_CANCELED)?,
        shed_preempted: find_plain(&samples, F_SHED_PREEMPTED)?,
        worker_panics: find_plain(&samples, F_WORKER_PANICS)?,
        restarts: find_plain(&samples, F_RESTARTS)?,
        batches: find_plain(&samples, F_BATCHES)?,
        max_coalesced: find_plain(&samples, F_MAX_COALESCED)?,
    };
    let cache = CacheStats {
        hits: find_plain(&samples, F_CACHE_HITS)?,
        misses: find_plain(&samples, F_CACHE_MISSES)?,
        failed_prepares: find_plain(&samples, F_CACHE_FAILED)?,
        evictions: find_plain(&samples, F_CACHE_EVICTIONS)?,
        resident_bytes: find_plain(&samples, F_CACHE_RESIDENT)?,
        resident_high_water: find_plain(&samples, F_CACHE_RESIDENT_HIGH)?,
    };
    let queue_depth = find_plain(&samples, F_QUEUE_DEPTH)?;
    let queue_depth_high_water = find_plain(&samples, F_QUEUE_HIGH)?;

    // Model order is the export order of the per-model submitted family.
    let names: Vec<String> = samples
        .iter()
        .filter(|s| s.name == F_M_SUBMITTED)
        .filter_map(|s| {
            s.labels
                .iter()
                .find(|(k, _)| k == "model")
                .map(|(_, v)| v.clone())
        })
        .collect();
    let mut models = Vec::with_capacity(names.len());
    for name in names {
        let latency_count = {
            let count_name = format!("{F_LATENCY}_count");
            let s = find_labeled(&samples, &count_name, "model", &name)?;
            parse_u64(&s.value, &count_name)?
        };
        let inf = {
            let bucket_name = format!("{F_LATENCY}_bucket");
            let s = samples
                .iter()
                .find(|s| {
                    s.name == bucket_name
                        && s.labels.iter().any(|(k, v)| k == "model" && v == &name)
                        && s.labels.iter().any(|(k, v)| k == "le" && v == "+Inf")
                })
                .ok_or_else(|| format!("missing +Inf bucket for model {name:?}"))?;
            parse_u64(&s.value, &bucket_name)?
        };
        if inf != latency_count {
            return Err(format!(
                "model {name:?}: +Inf bucket {inf} != _count {latency_count}"
            ));
        }
        let mut buckets = [0u64; LATENCY_BUCKETS.len()];
        let mut previous = 0u64;
        let bucket_name = format!("{F_LATENCY}_bucket");
        for (slot, (_, le)) in buckets.iter_mut().zip(LATENCY_BUCKETS.iter()) {
            let s = samples
                .iter()
                .find(|s| {
                    s.name == bucket_name
                        && s.labels.iter().any(|(k, v)| k == "model" && v == &name)
                        && s.labels.iter().any(|(k, v)| k == "le" && v == le)
                })
                .ok_or_else(|| format!("missing le={le} bucket for model {name:?}"))?;
            let cumulative = parse_u64(&s.value, &bucket_name)?;
            *slot = cumulative
                .checked_sub(previous)
                .ok_or_else(|| format!("model {name:?}: cumulative bucket le={le} decreases"))?;
            previous = cumulative;
        }
        let latency_sum_nanos = {
            let sum_name = format!("{F_LATENCY}_sum");
            let s = find_labeled(&samples, &sum_name, "model", &name)?;
            parse_secs_to_nanos(&s.value)?
        };
        models.push(ModelMetricsSnapshot {
            buckets,
            latency_count,
            latency_sum_nanos,
            submitted: find_model(&samples, F_M_SUBMITTED, &name)?,
            completed: find_model(&samples, F_M_COMPLETED, &name)?,
            failed: find_model(&samples, F_M_FAILED, &name)?,
            shed_expired: find_model(&samples, F_M_EXPIRED, &name)?,
            shed_canceled: find_model(&samples, F_M_CANCELED, &name)?,
            shed_preempted: find_model(&samples, F_M_PREEMPTED, &name)?,
            model: name,
        });
    }
    Ok(MetricsSnapshot {
        models,
        queue_depth,
        queue_depth_high_water,
        cache,
        service,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> MetricsSnapshot {
        let mut buckets = [0u64; LATENCY_BUCKETS.len()];
        buckets[2] = 3;
        buckets[7] = 2;
        MetricsSnapshot {
            models: vec![
                ModelMetricsSnapshot {
                    // A name exercising every escape class.
                    model: "mo\"del\\a\nb".to_string(),
                    buckets,
                    latency_count: 6, // one observation beyond 10s: +Inf only
                    latency_sum_nanos: 12_345_678_901,
                    submitted: 11,
                    completed: 6,
                    failed: 1,
                    shed_expired: 2,
                    shed_canceled: 1,
                    shed_preempted: 1,
                },
                ModelMetricsSnapshot {
                    model: "plain".to_string(),
                    buckets: [0; LATENCY_BUCKETS.len()],
                    latency_count: 0,
                    latency_sum_nanos: 0,
                    submitted: 2,
                    completed: 0,
                    failed: 0,
                    shed_expired: 0,
                    shed_canceled: 2,
                    shed_preempted: 0,
                },
            ],
            queue_depth: 3,
            queue_depth_high_water: 9,
            cache: CacheStats {
                hits: 5,
                misses: 4,
                failed_prepares: 1,
                evictions: 2,
                resident_bytes: 1000,
                resident_high_water: 1500,
            },
            service: ServiceStats {
                submitted: 13,
                completed: 6,
                failed: 1,
                shed: 4,
                shed_full_by_class: [0, 1, 3],
                shed_expired: 2,
                shed_canceled: 3,
                shed_preempted: 1,
                worker_panics: 1,
                restarts: 1,
                batches: 4,
                max_coalesced: 3,
            },
        }
    }

    #[test]
    fn bucket_bounds_are_strictly_increasing_and_label_consistent() {
        for pair in LATENCY_BUCKETS.windows(2) {
            assert!(pair[0].0 < pair[1].0, "{pair:?}");
        }
        // Every label parses back to its nanosecond bound.
        for (nanos, label) in LATENCY_BUCKETS {
            let secs: f64 = label.parse().unwrap();
            let label_nanos = (secs * 1e9).round() as u64;
            assert_eq!(label_nanos, nanos, "label {label} != {nanos}ns");
        }
    }

    #[test]
    fn render_parse_round_trip_is_exact() {
        let snapshot = sample_snapshot();
        let text = snapshot.render();
        let parsed = parse_text(&text).unwrap();
        assert_eq!(parsed, snapshot);
        // And the round trip is a fixed point of rendering.
        assert_eq!(parsed.render(), text);
    }

    #[test]
    fn sample_snapshot_passes_internal_checks_but_is_not_quiesced_consistent() {
        let snapshot = sample_snapshot();
        snapshot.check_internal().unwrap();
        // The per-model canceled sum (3) matches, but model "plain"'s
        // terminal sum equals its submitted, as does the global ledger:
        // quiesced consistency holds for this fixture too.
        snapshot
            .check_quiesced(&snapshot.service, &snapshot.cache)
            .unwrap();
        // A mismatched ledger is named.
        let mut other = snapshot.service;
        other.completed += 1;
        let err = snapshot
            .check_quiesced(&other, &snapshot.cache)
            .unwrap_err();
        assert!(err.contains("service ledger"), "{err}");
    }

    #[test]
    fn check_internal_names_the_violated_invariant() {
        let mut snapshot = sample_snapshot();
        snapshot.service.completed = 0; // per-model completed now exceeds it
        let err = snapshot.check_internal().unwrap_err();
        assert!(err.contains("per-model completed"), "{err}");

        let mut snapshot = sample_snapshot();
        snapshot.service.submitted = 1;
        let err = snapshot.check_internal().unwrap_err();
        assert!(err.contains("exceed submitted"), "{err}");

        let mut snapshot = sample_snapshot();
        snapshot.models[0].latency_count = snapshot.models[0].completed + 1;
        let err = snapshot.check_internal().unwrap_err();
        assert!(err.contains("histogram count"), "{err}");

        let mut snapshot = sample_snapshot();
        snapshot.queue_depth = snapshot.queue_depth_high_water + 1;
        let err = snapshot.check_internal().unwrap_err();
        assert!(err.contains("high-water"), "{err}");
    }

    #[test]
    fn registry_deduplicates_handles_by_name() {
        let registry = MetricsRegistry::default();
        let a = registry.handle("m");
        let b = registry.handle("m");
        assert!(Arc::ptr_eq(&a, &b), "aliased names share one series");
        let c = registry.handle("other");
        assert!(!Arc::ptr_eq(&a, &c));
        a.record_submitted();
        a.record_completed(Duration::from_millis(2));
        let models = registry.snapshot_models();
        assert_eq!(models.len(), 2);
        assert_eq!(models[0].submitted, 1);
        assert_eq!(models[0].completed, 1);
        assert_eq!(models[0].latency_count, 1);
        // 2ms lands in the (1ms, 2.5ms] bucket.
        assert_eq!(models[0].buckets[4], 1);
        assert_eq!(models[1].submitted, 0);
    }

    #[test]
    fn latency_sum_renders_and_parses_exactly() {
        assert_eq!(nanos_as_secs(0), "0.000000000");
        assert_eq!(nanos_as_secs(1), "0.000000001");
        assert_eq!(nanos_as_secs(12_345_678_901), "12.345678901");
        for nanos in [0, 1, 999_999_999, 1_000_000_000, u64::MAX / 2] {
            assert_eq!(parse_secs_to_nanos(&nanos_as_secs(nanos)).unwrap(), nanos);
        }
        assert!(
            parse_secs_to_nanos("1.5").is_err(),
            "short fractions refuse"
        );
    }

    #[test]
    fn observations_beyond_the_last_bound_land_only_in_inf() {
        let registry = MetricsRegistry::default();
        let m = registry.handle("slow");
        m.record_submitted();
        m.record_completed(Duration::from_secs(11));
        let snap = &registry.snapshot_models()[0];
        assert_eq!(snap.buckets.iter().sum::<u64>(), 0);
        assert_eq!(snap.latency_count, 1);
    }
}
