//! Deterministic fault injection for the serving stack.
//!
//! Chaos testing a concurrent service with timers or random chance
//! produces unreproducible failures; this module replaces both with a
//! **counted occurrence** model. Each instrumented site in the service
//! is a named [`FaultPoint`]; every time execution reaches a point the
//! plan's per-point occurrence counter is advanced atomically, and an
//! armed spec fires when its point reaches its configured occurrence
//! index. A spec fires **exactly once** ([`FaultPlan::fired`] counts
//! them), so a fault plan describes a finite, enumerable set of
//! injected failures: the *n*-th event to reach a point fails, whatever
//! wall-clock schedule the threads happened to run — which thread or
//! request absorbs the fault may vary with scheduling, but the number
//! and kind of injected failures never does, and every downstream
//! accounting invariant can therefore be asserted exactly.
//!
//! Plans are built explicitly ([`FaultPlan::fail_nth`]) when a test
//! pins a precise scenario, or derived from a seed
//! ([`FaultPlan::seeded`]) when a chaos sweep wants many distinct but
//! reproducible fault mixes — same seed, same plan, bit for bit.
//!
//! The plan is threaded through
//! [`ServiceConfig::fault_plan`](crate::ServiceConfig) and consulted by
//! the model cache (`prepare`, `cache_insert`), the worker loop
//! (`batch_run`) and the supervisor (`worker_spawn`). A `None` plan
//! costs nothing on the hot path.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// A named injection site in the serving stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultPoint {
    /// Entry of [`ModelCache::get_or_prepare`](crate::ModelCache::get_or_prepare):
    /// one occurrence per registration lookup, hit or miss.
    Prepare,
    /// The worker's batch execution: one occurrence per popped batch,
    /// plus one per individual re-run after a batch-level panic (so a
    /// spec can deterministically target the isolation retry path).
    BatchRun,
    /// The cache insert after a successful preparation.
    CacheInsert,
    /// Worker thread startup — both the initial pool spawn and every
    /// supervisor respawn. Any action here kills the new worker
    /// immediately, exercising the restart budget.
    WorkerSpawn,
}

impl FaultPoint {
    const COUNT: usize = 4;

    fn index(self) -> usize {
        match self {
            FaultPoint::Prepare => 0,
            FaultPoint::BatchRun => 1,
            FaultPoint::CacheInsert => 2,
            FaultPoint::WorkerSpawn => 3,
        }
    }
}

impl std::fmt::Display for FaultPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            FaultPoint::Prepare => "prepare",
            FaultPoint::BatchRun => "batch_run",
            FaultPoint::CacheInsert => "cache_insert",
            FaultPoint::WorkerSpawn => "worker_spawn",
        };
        f.write_str(name)
    }
}

/// What an armed fault does when its occurrence comes up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic at the point. For `batch_run` the panic lands *inside* the
    /// per-batch isolation (`catch_unwind`), so it exercises the
    /// individual re-run path; for `prepare`/`cache_insert` it unwinds
    /// into the registering caller (poisoning the cache lock, which the
    /// cache must tolerate); for `worker_spawn` it kills the new worker.
    Panic,
    /// Return the point's documented error instead of panicking:
    /// `prepare`/`cache_insert` fail the registration with
    /// [`Error::Unsupported`](nm_core::Error::Unsupported), `batch_run`
    /// fails the batch like a kernel error
    /// ([`ServeError::Run`](crate::ServeError::Run)). At `worker_spawn`
    /// (no error channel) it behaves like [`Panic`](Self::Panic).
    Error,
    /// Panic *outside* the per-batch isolation, killing the worker
    /// thread mid-traffic — the batch it held is canceled by the ticket
    /// drop guards and the supervisor spends restart budget respawning.
    /// Only distinct from [`Panic`](Self::Panic) at `batch_run`;
    /// elsewhere it behaves like `Panic`.
    KillWorker,
}

#[derive(Debug)]
struct FaultSpec {
    point: FaultPoint,
    nth: u64,
    action: FaultAction,
    fired: AtomicBool,
}

/// A reproducible set of injected failures; see the module docs for the
/// occurrence model.
#[derive(Debug, Default)]
pub struct FaultPlan {
    specs: Vec<FaultSpec>,
    counters: [AtomicU64; FaultPoint::COUNT],
}

fn xorshift64(mut s: u64) -> u64 {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    s
}

impl FaultPlan {
    /// An empty plan (injects nothing until armed via
    /// [`fail_nth`](Self::fail_nth)).
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms `action` at the `nth` occurrence (0-based) of `point`.
    /// Builder-style; duplicate `(point, nth)` pairs are allowed but
    /// only one of them fires (each occurrence triggers at most one
    /// spec).
    #[must_use]
    pub fn fail_nth(mut self, point: FaultPoint, nth: u64, action: FaultAction) -> Self {
        self.specs.push(FaultSpec {
            point,
            nth,
            action,
            fired: AtomicBool::new(false),
        });
        self
    }

    /// Derives `faults` specs deterministically from `seed`: points are
    /// weighted toward `batch_run`/`worker_spawn` (the paths a running
    /// service actually exercises — `prepare`/`cache_insert` only fire
    /// if registrations happen while the plan is live), occurrence
    /// indices land in `0..16` (bumped past collisions so every spec
    /// can fire), and actions mix panics, errors and worker kills. The
    /// same seed always yields the same plan — the property the chaos
    /// tests and the bench chaos knobs lean on; see
    /// `crates/bench/README.md` for how seeds are chosen.
    pub fn seeded(seed: u64, faults: usize) -> Self {
        // XOR with an odd constant is a bijection (distinct seeds stay
        // distinct), and the guard avoids xorshift's zero fixed point.
        let mut s = seed ^ 0x9E37_79B9_7F4A_7C15;
        if s == 0 {
            s = 1;
        }
        let mut plan = FaultPlan::new();
        let mut used: Vec<(FaultPoint, u64)> = Vec::new();
        for _ in 0..faults {
            s = xorshift64(s);
            let point = match s % 8 {
                0 => FaultPoint::Prepare,
                1 => FaultPoint::CacheInsert,
                2 | 3 => FaultPoint::WorkerSpawn,
                _ => FaultPoint::BatchRun,
            };
            s = xorshift64(s);
            let mut nth = s % 16;
            while used.contains(&(point, nth)) {
                nth += 1;
            }
            used.push((point, nth));
            s = xorshift64(s);
            let action = match (point, s % 4) {
                (FaultPoint::BatchRun, 0) => FaultAction::KillWorker,
                (_, 1) => FaultAction::Error,
                _ => FaultAction::Panic,
            };
            plan = plan.fail_nth(point, nth, action);
        }
        plan
    }

    /// Advances `point`'s occurrence counter and returns the action to
    /// perform if a not-yet-fired spec matches this occurrence. Called
    /// by the instrumented sites; thread-safe and lock-free.
    pub fn check(&self, point: FaultPoint) -> Option<FaultAction> {
        let n = self.counters[point.index()].fetch_add(1, Ordering::SeqCst);
        for spec in &self.specs {
            if spec.point == point && spec.nth == n && !spec.fired.swap(true, Ordering::SeqCst) {
                return Some(spec.action);
            }
        }
        None
    }

    /// Specs armed in the plan.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Specs that have fired so far.
    pub fn fired(&self) -> usize {
        self.specs
            .iter()
            .filter(|s| s.fired.load(Ordering::SeqCst))
            .count()
    }

    /// Occurrences counted at `point` so far.
    pub fn occurrences(&self, point: FaultPoint) -> u64 {
        self.counters[point.index()].load(Ordering::SeqCst)
    }

    /// The armed specs as plain data `(point, nth, action)` — for
    /// asserting seeded reproducibility and for chaos-run logging.
    pub fn describe(&self) -> Vec<(FaultPoint, u64, FaultAction)> {
        self.specs
            .iter()
            .map(|s| (s.point, s.nth, s.action))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_fire_exactly_once_at_their_occurrence() {
        let plan = FaultPlan::new()
            .fail_nth(FaultPoint::BatchRun, 2, FaultAction::Panic)
            .fail_nth(FaultPoint::Prepare, 0, FaultAction::Error);
        // First prepare occurrence trips the prepare spec.
        assert_eq!(plan.check(FaultPoint::Prepare), Some(FaultAction::Error));
        assert_eq!(plan.check(FaultPoint::Prepare), None);
        // Batch occurrences 0 and 1 pass, 2 trips, later ones pass.
        assert_eq!(plan.check(FaultPoint::BatchRun), None);
        assert_eq!(plan.check(FaultPoint::BatchRun), None);
        assert_eq!(plan.check(FaultPoint::BatchRun), Some(FaultAction::Panic));
        assert_eq!(plan.check(FaultPoint::BatchRun), None);
        assert_eq!(plan.fired(), 2);
        assert_eq!(plan.occurrences(FaultPoint::BatchRun), 4);
        assert_eq!(plan.occurrences(FaultPoint::WorkerSpawn), 0);
    }

    #[test]
    fn points_count_independently() {
        let plan = FaultPlan::new().fail_nth(FaultPoint::CacheInsert, 1, FaultAction::Panic);
        // Heavy traffic on other points never advances cache_insert.
        for _ in 0..10 {
            assert_eq!(plan.check(FaultPoint::BatchRun), None);
        }
        assert_eq!(plan.check(FaultPoint::CacheInsert), None);
        assert_eq!(
            plan.check(FaultPoint::CacheInsert),
            Some(FaultAction::Panic)
        );
    }

    /// The seeded constructor is the reproducibility contract: the same
    /// seed must derive the identical plan, different seeds should
    /// diverge, and every spec must be fireable (unique (point, nth)).
    #[test]
    fn seeded_plans_are_reproducible_and_collision_free() {
        let a = FaultPlan::seeded(42, 8);
        let b = FaultPlan::seeded(42, 8);
        assert_eq!(a.describe(), b.describe());
        assert_eq!(a.len(), 8);
        let c = FaultPlan::seeded(43, 8);
        assert_ne!(a.describe(), c.describe());
        // No two specs share (point, nth): all 8 can fire.
        let mut keys: Vec<_> = a.describe().iter().map(|&(p, n, _)| (p, n)).collect();
        keys.sort_by_key(|&(p, n)| (p.index(), n));
        keys.dedup();
        assert_eq!(keys.len(), 8);
        // Seed 0 must not degenerate (xorshift zero fixed point).
        assert_eq!(FaultPlan::seeded(0, 4).len(), 4);
    }
}
