//! Shared helpers for the cross-crate integration tests.

use nm_nn::rng::XorShift;

/// Deterministic random int8 buffer.
pub fn random_i8(n: usize, seed: u64) -> Vec<i8> {
    XorShift::new(seed).fill_weights(n, 42)
}

/// Forces a dense buffer into an exact N:M pattern (exactly N non-zeros
/// per block), so sparsity detection picks the intended pattern.
pub fn make_exact_nm(w: &mut [i8], rows: usize, cols: usize, nm: nm_core::sparsity::Nm) {
    nm_core::sparsity::prune_magnitude(w, rows, cols, nm).expect("shape ok");
    for row in w.chunks_mut(cols) {
        for block in row.chunks_mut(nm.m()) {
            if block.iter().all(|&v| v == 0) {
                block[0] = 1;
            }
        }
    }
}
