//! Shared helpers for the cross-crate integration tests.

use nm_nn::rng::XorShift;

/// Deterministic random int8 buffer.
pub fn random_i8(n: usize, seed: u64) -> Vec<i8> {
    XorShift::new(seed).fill_weights(n, 42)
}

/// Forces a dense buffer into an exact N:M pattern (exactly N non-zeros
/// per block), so sparsity detection picks the intended pattern.
pub fn make_exact_nm(w: &mut [i8], rows: usize, cols: usize, nm: nm_core::sparsity::Nm) {
    nm_core::sparsity::prune_magnitude(w, rows, cols, nm).expect("shape ok");
    for row in w.chunks_mut(cols) {
        for block in row.chunks_mut(nm.m()) {
            if block.iter().all(|&v| v == 0) {
                block[0] = 1;
            }
        }
    }
}

/// A small conv → ReLU → global-avg-pool → linear graph over a
/// `[spatial, spatial, 8]` input, with exact-`nm` 8→16-channel conv
/// weights and an exact-`nm` 16→`classes` classifier — the shared
/// fixture of the serving tests' **non-coalescible** (conv) path.
/// Weight seeds derive from `seed`, so distinct seeds give distinct
/// models of the same shape.
pub fn sparse_conv_fc_graph(
    spatial: usize,
    classes: usize,
    nm: nm_core::sparsity::Nm,
    seed: u64,
) -> nm_nn::graph::Graph {
    use nm_core::quant::Requant;
    use nm_core::{ConvGeom, FcGeom};
    use nm_nn::layer::{ConvLayer, LinearLayer};

    let mut cw = random_i8(16 * 3 * 3 * 8, seed);
    make_exact_nm(&mut cw, 16, 3 * 3 * 8, nm);
    let conv = ConvLayer::new(
        ConvGeom::square(8, 16, spatial, 3, 1, 1).expect("valid conv geometry"),
        cw,
        Requant::for_dot_len(3 * 3 * 8),
    )
    .expect("valid conv layer");
    let mut fcw = random_i8(classes * 16, seed + 2);
    make_exact_nm(&mut fcw, classes, 16, nm);
    let fc = LinearLayer::new(
        FcGeom::new(16, classes).expect("valid fc geometry"),
        fcw,
        Requant::for_dot_len(16),
    )
    .expect("valid fc layer");
    let mut b = nm_nn::GraphBuilder::new(&[spatial, spatial, 8]);
    let x = b.conv(b.input(), conv).expect("conv node");
    let x = b.relu(x).expect("relu node");
    let x = b.global_avg_pool(x).expect("pool node");
    let out = b.linear(x, fc).expect("linear node");
    b.finish(out).expect("valid graph")
}
