//! End-to-end integration: a residual CNN and a tiny ViT compiled and
//! executed tile-by-tile on the simulated cluster must be bit-identical
//! to the reference executor, for every target; sparse targets must be
//! faster and smaller.

use nm_compiler::exec::run_emulated;
use nm_compiler::plan::{compile, Options};
use nm_compiler::Target;
use nm_core::quant::Requant;
use nm_core::sparsity::Nm;
use nm_core::{ConvGeom, FcGeom, Tensor};
use nm_integration::make_exact_nm;
use nm_models::vit::vit_tiny_for_tests;
use nm_nn::graph::{Graph, GraphBuilder, OpKind};
use nm_nn::layer::{ConvLayer, LinearLayer};
use nm_nn::prune::{prune_graph, weight_sparsity};
use nm_nn::rng::XorShift;

/// A residual CNN exercising conv, pointwise shortcut, pooling and FC.
fn residual_cnn(nm: Option<Nm>, seed: u64) -> Graph {
    let mut rng = XorShift::new(seed);
    let mut conv = |c: usize, k: usize, i: usize, f: usize, s: usize, p: usize| {
        let geom = ConvGeom::square(c, k, i, f, s, p).unwrap();
        let mut w = rng.fill_weights(geom.weight_elems(), 30);
        if let Some(nm) = nm {
            if f != 1 && geom.patch_len().is_multiple_of(nm.m()) {
                make_exact_nm(&mut w, geom.k, geom.patch_len(), nm);
            }
        }
        ConvLayer::new(geom, w, Requant::for_dot_len(geom.patch_len())).unwrap()
    };
    let c1 = conv(16, 16, 8, 3, 1, 1);
    let c2 = conv(16, 16, 8, 3, 1, 1);
    let c3 = conv(16, 32, 8, 3, 2, 1); // strided
    let pw = conv(16, 32, 8, 1, 2, 0); // pointwise shortcut (stays dense)
    let mut rng2 = XorShift::new(seed ^ 0x77);
    let mut fcw = rng2.fill_weights(32 * 8, 30);
    if let Some(nm) = nm {
        if 32 % nm.m() == 0 {
            make_exact_nm(&mut fcw, 8, 32, nm);
        }
    }
    let fc = LinearLayer::new(FcGeom::new(32, 8).unwrap(), fcw, Requant::for_dot_len(32)).unwrap();

    let mut b = GraphBuilder::new(&[8, 8, 16]);
    let x0 = b.input();
    let x1 = b.conv(x0, c1).unwrap();
    let x1 = b.relu(x1).unwrap();
    let x2 = b.conv(x1, c2).unwrap();
    let x2 = b.add(x2, x0).unwrap();
    let x3 = b.conv(x2, c3).unwrap();
    let sc = b.conv(x2, pw).unwrap();
    let x3 = b.add(x3, sc).unwrap();
    let x3 = b.relu(x3).unwrap();
    let x4 = b.global_avg_pool(x3).unwrap();
    let out = b.linear(x4, fc).unwrap();
    b.finish(out).unwrap()
}

#[test]
fn residual_cnn_bit_exact_across_all_targets() {
    let mut rng = XorShift::new(5);
    let input = Tensor::from_vec(&[8, 8, 16], rng.fill_weights(8 * 8 * 16, 50)).unwrap();
    for nm in [None, Some(Nm::ONE_OF_EIGHT), Some(Nm::ONE_OF_FOUR)] {
        let g = residual_cnn(nm, 1);
        let reference = nm_nn::execute(&g, &input).unwrap();
        for target in Target::ALL {
            let run = run_emulated(&g, &input, &Options::new(target)).unwrap();
            assert_eq!(run.output, reference, "{target:?} {nm:?}");
        }
    }
}

#[test]
fn emulated_compute_matches_analytic_plan() {
    let mut rng = XorShift::new(6);
    let input = Tensor::from_vec(&[8, 8, 16], rng.fill_weights(8 * 8 * 16, 50)).unwrap();
    let g = residual_cnn(Some(Nm::ONE_OF_EIGHT), 2);
    for target in Target::ALL {
        let opts = Options::new(target);
        let run = run_emulated(&g, &input, &opts).unwrap();
        let planned: u64 = compile(&g, &opts)
            .unwrap()
            .layers
            .iter()
            .filter(|l| l.choice.is_some())
            .map(|l| l.compute_cycles)
            .sum();
        assert_eq!(run.matmul_compute_cycles, planned, "{target:?}");
    }
}

#[test]
fn sparse_compilation_is_faster_and_smaller() {
    let g_dense = residual_cnn(None, 3);
    let g_sparse = residual_cnn(Some(Nm::ONE_OF_SIXTEEN), 3);
    let dense = compile(&g_dense, &Options::new(Target::DensePulpNn)).unwrap();
    let sw = compile(&g_sparse, &Options::new(Target::SparseSw)).unwrap();
    let isa = compile(&g_sparse, &Options::new(Target::SparseIsa)).unwrap();
    assert!(sw.total_cycles() < dense.total_cycles());
    assert!(isa.total_cycles() < sw.total_cycles());
    assert!(isa.total_weight_bytes() < dense.total_weight_bytes());
    assert!(weight_sparsity(&g_sparse) > weight_sparsity(&g_dense));
}

#[test]
fn tiny_vit_compiles_and_executes_consistently() {
    let g = vit_tiny_for_tests(4).unwrap();
    let mut rng = XorShift::new(7);
    let input = Tensor::from_vec(&[16, 16, 3], rng.fill_weights(16 * 16 * 3, 50)).unwrap();
    let reference = nm_nn::execute(&g, &input).unwrap();
    let run = run_emulated(&g, &input, &Options::new(Target::DensePulpNn)).unwrap();
    assert_eq!(run.output, reference);
    let report = compile(&g, &Options::new(Target::DensePulpNn)).unwrap();
    assert!(report.total_cycles() > 0);
    // Attention layers are present and costed.
    assert!(report
        .layers
        .iter()
        .any(|l| l.op_name == "attention" && l.cycles > 0));
}

#[test]
fn pruned_graph_layers_are_recognized_as_sparse() {
    let mut g = residual_cnn(None, 9);
    let nm = Nm::ONE_OF_EIGHT;
    prune_graph(&mut g, nm, |_, op| {
        matches!(op, OpKind::Conv2d(l) if !l.geom.is_pointwise() && l.geom.patch_len() % 8 == 0)
    })
    .unwrap();
    let report = compile(&g, &Options::new(Target::SparseIsa)).unwrap();
    let sparse_layers = report
        .layers
        .iter()
        .filter(|l| l.choice.is_some_and(|c| c.nm().is_some()))
        .count();
    assert!(sparse_layers >= 3, "got {sparse_layers}");
}
