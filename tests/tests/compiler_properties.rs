//! Property tests over the compiler: tilings always fit L1 and cover
//! the iteration space; the interleaved layout halves weight DMA
//! transactions without ever being slower.

use nm_compiler::plan::{conv_tile_specs, plan_conv, Options};
use nm_compiler::tiling::{conv_tile_l1_bytes, tile_conv, tile_fc, weight_tile_bytes};
use nm_compiler::{KernelChoice, Target};
use nm_core::sparsity::Nm;
use nm_core::{ConvGeom, FcGeom};
use proptest::prelude::*;

fn choice_strategy() -> impl Strategy<Value = KernelChoice> {
    prop_oneof![
        Just(KernelChoice::ConvDense1x2),
        Just(KernelChoice::ConvDensePulpNn),
        Just(KernelChoice::ConvSparseSw(Nm::ONE_OF_EIGHT)),
        Just(KernelChoice::ConvSparseIsa(Nm::ONE_OF_EIGHT)),
        Just(KernelChoice::ConvSparseIsa(Nm::ONE_OF_SIXTEEN)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn conv_tilings_fit_and_cover(
        choice in choice_strategy(),
        c_blocks in 1usize..8,
        k in 4usize..128,
        i in 4usize..17,
    ) {
        let c = 16 * c_blocks;
        let geom = ConvGeom::square(c, k, i, 3, 1, 1).unwrap();
        let budget = 128 * 1024;
        let Ok(t) = tile_conv(&geom, &choice, budget, 8) else {
            // Only acceptable when even the minimum tile cannot fit.
            let min = conv_tile_l1_bytes(&geom, &choice, 1, 2, 8, true);
            prop_assert!(min > budget);
            return Ok(());
        };
        prop_assert!(t.l1_bytes <= budget);
        // Tiles cover the output exactly once.
        let specs = conv_tile_specs(&geom, &t);
        let covered: usize = specs.iter().map(|s| s.geom.oy() * s.geom.ox() * s.geom.k).sum();
        prop_assert_eq!(covered, geom.output_elems());
        // Every tile geometry is itself feasible.
        for s in &specs {
            prop_assert!(s.geom.k <= t.k_tile);
            prop_assert!(s.geom.oy() <= t.oy_tile);
        }
    }

    #[test]
    fn fc_tilings_fit(
        c_blocks in 1usize..65,
        k in 2usize..513,
        sparse in any::<bool>(),
    ) {
        let c = 16 * c_blocks;
        let k = k * 2;
        let geom = FcGeom::new(c, k).unwrap();
        let choice = if sparse {
            KernelChoice::FcSparseIsa(Nm::ONE_OF_EIGHT)
        } else {
            KernelChoice::FcDense
        };
        let budget = 128 * 1024;
        let t = tile_fc(&geom, &choice, budget).unwrap();
        prop_assert!(t.l1_bytes <= budget);
        prop_assert!(t.k_tile >= 1 && t.k_tile <= geom.k);
        if sparse {
            prop_assert_eq!(t.k_tile % 2, 0);
        }
        // Sparse weight tiles are never larger than dense ones.
        prop_assert!(
            weight_tile_bytes(&choice, t.k_tile, c)
                <= weight_tile_bytes(&KernelChoice::FcDense, t.k_tile, c)
        );
    }

    #[test]
    fn interleaving_never_hurts(
        c_blocks in 1usize..5,
        k in 8usize..64,
    ) {
        let c = 16 * c_blocks;
        let geom = ConvGeom::square(c, k, 8, 3, 1, 1).unwrap();
        let choice = KernelChoice::ConvSparseIsa(Nm::ONE_OF_EIGHT);
        let mut opts = Options::new(Target::SparseIsa);
        let inter = plan_conv(0, &geom, choice, &opts).unwrap();
        opts.interleaved_weights = false;
        let split = plan_conv(0, &geom, choice, &opts).unwrap();
        prop_assert_eq!(split.weight_dma_transactions, 2 * inter.weight_dma_transactions);
        prop_assert!(inter.cycles <= split.cycles);
        prop_assert!(inter.dma_cycles <= split.dma_cycles);
    }
}
