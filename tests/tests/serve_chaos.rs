//! Chaos suite for the fault-tolerant serving layer: seeded,
//! counted-occurrence fault plans (`nm_serve::fault`) injected into
//! multi-threaded traffic. What must hold under any scheduling:
//!
//! * every request that survives the faults is **bit+cycle identical**
//!   to a sequential `PreparedGraph::run` of the same input (the
//!   determinism contract is not weakened by recovery paths);
//! * every request that does not survive resolves to a documented error
//!   — `Canceled`, `WorkerPanic`, `DeadlineExceeded` — never a hang
//!   (every wait in this file is bounded and the bound is asserted);
//! * the accounting reconciles exactly: accepted requests partition
//!   into completed/failed/shed_expired/shed_canceled, rejected ones
//!   were reported to their submitter;
//! * the service keeps serving afterwards (unless the scenario is
//!   *designed* to poison it, in which case it refuses new work and
//!   still shuts down cleanly).
//!
//! Runs in CI's release profile as a named step; the request counts are
//! sized to also pass in debug on one core.

use nm_compiler::{ExecTier, Options, PreparedGraph, Target};
use nm_core::sparsity::Nm;
use nm_core::Tensor;
use nm_integration::sparse_conv_fc_graph;
use nm_models::mlp_serve_sparse;
use nm_nn::rng::XorShift;
use nm_serve::{
    FaultAction, FaultPlan, FaultPoint, Priority, ServeError, Service, ServiceConfig, SubmitError,
};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SUBMITTERS: usize = 4;
const REQUESTS_PER_SUBMITTER: usize = 50;
/// Per-ticket wait bound; hitting it means a request hung, the one
/// thing the failure model forbids.
const HANG_BOUND: Duration = Duration::from_secs(60);

/// The input of submitter `t`'s `i`-th request to model `m` — a pure
/// function of the coordinates, so the expected output is computable
/// outside the race (same convention as `serve_stress.rs`).
fn request_input(shape: &[usize], t: usize, i: usize, m: usize) -> Tensor<i8> {
    let elems: usize = shape.iter().product();
    let seed = 7000 + (t as u64) * 1000 + (i as u64) * 10 + m as u64;
    Tensor::from_vec(shape, XorShift::new(seed).fill_weights(elems, 50)).unwrap()
}

/// The tentpole scenario: two models, four submitter threads, two
/// workers, and a five-spec plan spanning registration (`prepare`),
/// batch execution (in-isolation panics *and* an out-of-isolation
/// worker kill) and worker startup — while every 10th request carries
/// an already-expired deadline. Survivors must match the sequential
/// baseline bit for bit, every casualty must carry a documented error
/// within the hang bound, the ledger must reconcile exactly, and the
/// service must still be serving when the dust settles.
#[test]
fn seeded_faults_spare_survivors_and_account_for_every_casualty() {
    let nm = Nm::ONE_OF_EIGHT;
    let graphs = [
        Arc::new(mlp_serve_sparse(&[64, 48, 32], nm, 5).unwrap()),
        Arc::new(sparse_conv_fc_graph(8, 4, nm, 21)),
    ];
    let opts = Options::new(Target::SparseIsa);
    let prepared: Vec<_> = graphs
        .iter()
        .map(|g| PreparedGraph::prepare(g, &opts).unwrap())
        .collect();

    // Occurrence bookkeeping behind the spec choices: prepare 0 and 1
    // are the two setup registrations below, so prepare#2 is the
    // mid-traffic "doomed" one; worker_spawn 0 and 1 are the initial
    // pool, so worker_spawn#1 kills one starting worker; batch_run
    // indices are spread far enough apart that the re-run occurrences a
    // panic inserts (its batch size, right after it) cannot swallow the
    // later specs.
    let plan = Arc::new(
        FaultPlan::new()
            .fail_nth(FaultPoint::Prepare, 2, FaultAction::Error)
            .fail_nth(FaultPoint::BatchRun, 2, FaultAction::Panic)
            .fail_nth(FaultPoint::BatchRun, 18, FaultAction::KillWorker)
            .fail_nth(FaultPoint::BatchRun, 34, FaultAction::Panic)
            .fail_nth(FaultPoint::WorkerSpawn, 1, FaultAction::Panic),
    );
    let service = Service::start(ServiceConfig {
        queue_capacity: 8,
        max_batch: 2,
        workers: 2,
        restart_budget: 4,
        restart_backoff: Duration::from_millis(1),
        tier: ExecTier::Bulk,
        fault_plan: Some(Arc::clone(&plan)),
        ..ServiceConfig::default()
    });
    let ids: Vec<_> = graphs
        .iter()
        .enumerate()
        .map(|(m, g)| service.register(&format!("chaos-{m}"), g, &opts).unwrap())
        .collect();

    // (submitter, request, model, deadline?, outcome)
    type Outcome = (
        usize,
        usize,
        usize,
        bool,
        Result<(Tensor<i8>, Option<u64>), ServeError>,
    );

    let (outcomes, full_sheds) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..SUBMITTERS)
            .map(|t| {
                let (service, graphs, ids) = (&service, &graphs, &ids);
                scope.spawn(move || {
                    let mut rng = XorShift::new(300 + t as u64);
                    let mut shed = 0u64;
                    let mut tickets = Vec::new();
                    for i in 0..REQUESTS_PER_SUBMITTER {
                        let m = (rng.next_u64() % 2) as usize;
                        let input = request_input(graphs[m].input_shape(), t, i, m);
                        // Every 10th request is born past its deadline:
                        // a guaranteed member of the `expired` shed
                        // class if accepted at all.
                        let late = i % 10 == 9;
                        let deadline = late.then(Instant::now);
                        match service.submit_with_deadline(ids[m], input, deadline, Priority::Batch)
                        {
                            Ok(ticket) => tickets.push((t, i, m, late, ticket)),
                            Err(SubmitError::Shed { capacity }) => {
                                assert_eq!(capacity, 8);
                                shed += 1;
                            }
                            Err(e) => panic!("unexpected submit error: {e:?}"),
                        }
                    }
                    let waits = Instant::now();
                    let done: Vec<Outcome> = tickets
                        .into_iter()
                        .map(|(t, i, m, late, ticket)| {
                            let r = ticket
                                .wait_timeout(HANG_BOUND)
                                .map(|r| (r.output, r.sim_cycles));
                            (t, i, m, late, r)
                        })
                        .collect();
                    assert!(
                        waits.elapsed() < HANG_BOUND,
                        "a ticket consumed the whole hang bound — request hung"
                    );
                    (done, shed)
                })
            })
            .collect();

        // Mid-traffic, the third registration absorbs the injected
        // prepare fault: the caller sees the documented error and the
        // cache/model table stay usable (asserted after the join).
        std::thread::sleep(Duration::from_millis(2));
        let doomed = service.register("doomed", &graphs[0], &opts);
        match doomed {
            Err(ServeError::Run(nm_core::Error::Unsupported(msg))) => {
                assert!(msg.contains("injected fault"), "{msg}")
            }
            other => panic!("doomed registration must fail injected, got {other:?}"),
        }

        let mut outcomes = Vec::new();
        let mut sheds = 0u64;
        for h in handles {
            let (done, shed) = h.join().unwrap();
            outcomes.extend(done);
            sheds += shed;
        }
        (outcomes, sheds)
    });

    // Post-traffic liveness + occurrence top-up: keep serving single
    // requests until every armed spec has had its occurrence (the main
    // wave almost always suffices; this removes the dependence on how
    // many requests the undersized queue accepted). These requests are
    // verified like any others.
    let mut extra = Vec::new();
    for i in 0..200usize {
        if plan.fired() == plan.len() && i >= 4 {
            break;
        }
        let input = request_input(graphs[0].input_shape(), 9, i, 0);
        match service.submit(ids[0], input) {
            Ok(t) => extra.push((9usize, i, 0usize, false, t)),
            Err(e) => panic!("service stopped accepting after the faults: {e:?}"),
        }
        if extra.len() % 4 == 0 {
            service.drain();
        }
    }
    service.drain();
    let outcomes: Vec<Outcome> = outcomes
        .into_iter()
        .chain(extra.into_iter().map(|(t, i, m, late, ticket)| {
            let r = ticket
                .wait_timeout(HANG_BOUND)
                .map(|r| (r.output, r.sim_cycles));
            (t, i, m, late, r)
        }))
        .collect();

    assert_eq!(plan.fired(), plan.len(), "every armed fault fired");
    assert!(!service.is_poisoned(), "budget 4 covers the two kills");

    // Classify and verify. Survivors: bit+cycle identical to the
    // sequential baseline. Casualties: documented errors only, each of
    // the expected class.
    let (mut ok, mut canceled, mut expired, mut panicked) = (0u64, 0u64, 0u64, 0u64);
    for (t, i, m, late, outcome) in &outcomes {
        match outcome {
            Ok((output, sim_cycles)) => {
                assert!(!*late, "expired-deadline request executed: t={t} i={i}");
                let input = request_input(graphs[*m].input_shape(), *t, *i, *m);
                let want = prepared[*m].run(&input).unwrap();
                assert_eq!(output, &want.output, "t={t} i={i} m={m}");
                assert_eq!(
                    *sim_cycles,
                    Some(want.matmul_compute_cycles),
                    "t={t} i={i} m={m}"
                );
                ok += 1;
            }
            Err(ServeError::DeadlineExceeded) => {
                // Only born-late requests may land here; for anything
                // else this is the waiter's hang bound, i.e. a hang.
                assert!(
                    *late,
                    "non-deadline request hit the hang bound: t={t} i={i}"
                );
                expired += 1;
            }
            Err(ServeError::Canceled) => canceled += 1,
            Err(ServeError::WorkerPanic(msg)) => {
                assert!(msg.contains("injected fault"), "{msg}");
                panicked += 1;
            }
            Err(e) => panic!("undocumented failure t={t} i={i}: {e:?}"),
        }
    }
    // Exactly one kill-worker spec, batches at most 2 wide: the dead
    // worker took 1..=2 requests with it, nobody else was canceled.
    assert!(
        (1..=2).contains(&canceled),
        "kill-worker must cancel its held batch only, canceled={canceled}"
    );

    // Tentpole gate: the drain above quiesced the service, so the
    // Prometheus export must parse back to the exact ledgers — under
    // the full five-spec fault plan, not just on the happy path.
    let metrics_text = service.metrics_text();
    let parsed = nm_serve::metrics::parse_text(&metrics_text)
        .unwrap_or_else(|e| panic!("chaos-soak metrics export must parse: {e}"));
    parsed
        .check_quiesced(&service.stats(), &service.cache_stats())
        .unwrap_or_else(|e| panic!("chaos-soak metrics export must reconcile exactly: {e}"));

    let stats = service.shutdown();
    let accepted = outcomes.len() as u64;
    assert_eq!(stats.submitted, accepted);
    assert_eq!(stats.shed, full_sheds, "every full-queue shed was reported");
    assert_eq!(stats.completed, ok);
    assert_eq!(stats.shed_expired, expired);
    assert_eq!(stats.shed_canceled, canceled);
    assert_eq!(stats.failed, panicked, "only WorkerPanic fails here");
    assert_eq!(
        stats.completed
            + stats.failed
            + stats.shed_expired
            + stats.shed_canceled
            + stats.shed_preempted,
        stats.submitted,
        "accepted requests partition exactly into the shed/failure ledgers"
    );
    assert_eq!(
        stats.shed_preempted, 0,
        "uniform-priority traffic never displaces anything"
    );
    // Two thread deaths (worker_spawn panic at startup + the kill),
    // both respawned within budget; at least the two armed in-isolation
    // panics were caught.
    assert_eq!(stats.restarts, 2);
    assert!(stats.worker_panics >= 2, "panics={}", stats.worker_panics);
}

/// Exhausting the restart budget is the one fault that takes the
/// service down — and even that must be orderly: held requests cancel,
/// admissions close, `is_poisoned` reports it, shutdown still works.
#[test]
fn restart_budget_exhaustion_poisons_without_hanging_anyone() {
    let nm = Nm::ONE_OF_EIGHT;
    let graph = Arc::new(mlp_serve_sparse(&[64, 48, 32], nm, 5).unwrap());
    let opts = Options::new(Target::SparseIsa);
    let service = Service::start(ServiceConfig {
        queue_capacity: 8,
        max_batch: 8,
        workers: 1,
        restart_budget: 0,
        restart_backoff: Duration::from_millis(1),
        tier: ExecTier::Bulk,
        fault_plan: Some(Arc::new(FaultPlan::new().fail_nth(
            FaultPoint::BatchRun,
            0,
            FaultAction::KillWorker,
        ))),
        ..ServiceConfig::default()
    });
    let model = service.register("m", &graph, &opts).unwrap();
    // Shape one batch holding all three requests, then let the sole
    // worker pop it and die with it in hand.
    service.pause();
    let tickets: Vec<_> = (0..3)
        .map(|i| {
            let input = request_input(&[64], 0, i, 0);
            service.submit(model, input).unwrap()
        })
        .collect();
    service.resume();
    for t in tickets {
        assert!(matches!(
            t.wait_timeout(HANG_BOUND),
            Err(ServeError::Canceled)
        ));
    }
    // The cancellations land during the worker's unwind, slightly
    // before the supervisor records the poisoning — bounded spin.
    let t = Instant::now();
    while !service.is_poisoned() {
        assert!(
            t.elapsed() < Duration::from_secs(10),
            "poisoning never landed"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    // Satellite pin: a poisoned service is *distinguishable* from an
    // orderly-closed one. Both submission entry points must report
    // `Poisoned` — not `Closed`, and certainly not `Shed` — so a client
    // can stop retrying a service that died under it.
    let input = request_input(&[64], 0, 9, 0);
    assert!(matches!(
        service.submit(model, input),
        Err(SubmitError::Poisoned)
    ));
    let input = request_input(&[64], 0, 10, 0);
    assert!(matches!(
        service.submit_with_deadline(
            model,
            input,
            Some(Instant::now() + Duration::from_secs(1)),
            Priority::Interactive,
        ),
        Err(SubmitError::Poisoned)
    ));
    // And the books still balance after the refusals: the poisoned
    // submissions were never accepted, so they appear in no ledger.
    let stats = service.stats();
    assert_eq!(
        stats.completed
            + stats.failed
            + stats.shed_expired
            + stats.shed_canceled
            + stats.shed_preempted,
        stats.submitted,
        "a poisoned service still reconciles exactly"
    );
    // And so does its metrics export: poisoning closes admissions but
    // must not tear the observability surface — the scrape still
    // parses and still matches the ledgers it refuses to grow.
    let metrics_text = service.metrics_text();
    let parsed = nm_serve::metrics::parse_text(&metrics_text)
        .unwrap_or_else(|e| panic!("a poisoned service's export must still parse: {e}"));
    parsed
        .check_quiesced(&stats, &service.cache_stats())
        .unwrap_or_else(|e| panic!("a poisoned service's export must still reconcile: {e}"));
    let stats = service.shutdown();
    assert_eq!(stats.shed_canceled, 3, "the held batch, nothing else");
    assert_eq!(stats.restarts, 0);
    assert_eq!(stats.completed, 0);
}

/// Single worker, single batch: with the scheduling pinned, the panic
/// isolation's behavior is exact — a batch-level panic fails nobody,
/// the per-request re-runs produce bit-identical results, and only the
/// one request whose own re-run panics resolves `WorkerPanic`.
#[test]
fn batch_panic_isolation_is_exact_when_scheduling_is_pinned() {
    let nm = Nm::ONE_OF_EIGHT;
    let graph = Arc::new(mlp_serve_sparse(&[64, 48, 32], nm, 5).unwrap());
    let opts = Options::new(Target::SparseIsa);
    let prepared = PreparedGraph::prepare(&graph, &opts).unwrap();
    // Occurrence 0 is the only batch's check (panic → isolate); the
    // re-runs then take occurrences 1..=4 in batch order, so occurrence
    // 2 is precisely request #1's individual re-run.
    let service = Service::start(ServiceConfig {
        queue_capacity: 8,
        max_batch: 4,
        workers: 1,
        restart_budget: 2,
        restart_backoff: Duration::from_millis(1),
        tier: ExecTier::Bulk,
        fault_plan: Some(Arc::new(
            FaultPlan::new()
                .fail_nth(FaultPoint::BatchRun, 0, FaultAction::Panic)
                .fail_nth(FaultPoint::BatchRun, 2, FaultAction::Panic),
        )),
        ..ServiceConfig::default()
    });
    let model = service.register("m", &graph, &opts).unwrap();
    service.pause();
    let tickets: Vec<_> = (0..4)
        .map(|i| {
            let input = request_input(&[64], 0, i, 0);
            service.submit(model, input).unwrap()
        })
        .collect();
    service.resume();
    for (i, ticket) in tickets.into_iter().enumerate() {
        match ticket.wait_timeout(HANG_BOUND) {
            Ok(r) => {
                assert_ne!(i, 1, "request 1's re-run must panic");
                let want = prepared.run(&request_input(&[64], 0, i, 0)).unwrap();
                assert_eq!(r.output, want.output, "survivor {i} diverged");
                assert_eq!(r.sim_cycles, Some(want.matmul_compute_cycles));
                assert_eq!(r.batch_size, 1, "survivors came from re-runs");
            }
            Err(ServeError::WorkerPanic(msg)) => {
                assert_eq!(i, 1, "only request 1 was armed to fail");
                assert!(msg.contains("injected fault"), "{msg}");
            }
            Err(e) => panic!("request {i}: undocumented failure {e:?}"),
        }
    }
    let stats = service.shutdown();
    assert_eq!(stats.completed, 3);
    assert_eq!(stats.failed, 1);
    assert_eq!(stats.worker_panics, 2, "batch pass + request 1's re-run");
    assert_eq!(stats.restarts, 0, "no thread died");
    assert_eq!(stats.shed_canceled, 0);
}

/// Satellite regression: dropping a service with queued requests from
/// inside a panicking scope. The `Drop` must not double-panic (which
/// would abort and eat the original panic), must not hang, and must
/// leave no parked waiter: the queued tickets all resolve.
#[test]
fn dropping_a_loaded_service_during_unwind_is_orderly() {
    let nm = Nm::ONE_OF_EIGHT;
    let graph = Arc::new(mlp_serve_sparse(&[64, 48, 32], nm, 5).unwrap());
    let opts = Options::new(Target::SparseIsa);
    let service = Service::start(ServiceConfig {
        queue_capacity: 8,
        max_batch: 4,
        workers: 2,
        ..ServiceConfig::default()
    });
    let model = service.register("m", &graph, &opts).unwrap();
    service.pause();
    let tickets: Vec<_> = (0..3)
        .map(|i| {
            let input = request_input(&[64], 0, i, 0);
            service.submit(model, input).unwrap()
        })
        .collect();
    // The panic wins the scope; the service drops mid-unwind with three
    // requests queued behind a paused pool.
    let payload = catch_unwind(AssertUnwindSafe(move || {
        let _held = service;
        panic!("outer panic while a loaded service is in scope");
    }))
    .expect_err("the closure panics");
    assert_eq!(
        payload.downcast_ref::<&str>().copied(),
        Some("outer panic while a loaded service is in scope"),
        "the original panic survived the service drop"
    );
    // Close overrides pause, so the drop drained the queue: every
    // ticket resolves (executed on the way down), none hangs.
    for (i, ticket) in tickets.into_iter().enumerate() {
        match ticket.wait_timeout(HANG_BOUND) {
            Ok(_) | Err(ServeError::Canceled) => {}
            Err(e) => panic!("ticket {i} resolved strangely: {e:?}"),
        }
    }
}

/// `Ticket::wait_timeout` against a healthy but slow (paused) service:
/// the caller's bound fires without cancelling the request server-side
/// — the request still runs and is counted, its result discarded.
#[test]
fn wait_timeout_gives_up_without_cancelling_the_request() {
    let nm = Nm::ONE_OF_EIGHT;
    let graph = Arc::new(mlp_serve_sparse(&[64, 48, 32], nm, 5).unwrap());
    let opts = Options::new(Target::SparseIsa);
    let service = Service::start(ServiceConfig {
        queue_capacity: 8,
        max_batch: 4,
        workers: 1,
        ..ServiceConfig::default()
    });
    let model = service.register("m", &graph, &opts).unwrap();
    service.pause();
    let abandoned = service
        .submit(model, request_input(&[64], 0, 0, 0))
        .unwrap();
    let kept = service
        .submit(model, request_input(&[64], 0, 1, 0))
        .unwrap();
    // Nothing is executing (paused): the waiter's bound must fire.
    assert!(matches!(
        abandoned.wait_timeout(Duration::from_millis(30)),
        Err(ServeError::DeadlineExceeded)
    ));
    service.resume();
    kept.wait_timeout(HANG_BOUND)
        .expect("the kept request completes");
    let stats = service.shutdown();
    assert_eq!(
        stats.completed, 2,
        "the abandoned request still ran to completion server-side"
    );
    assert_eq!(stats.shed_expired, 0, "no server-side deadline was set");
}
