//! Property tests for the `xDecimate` XFU: the RT-level datapath must
//! gather exactly the bytes a software offset decoder selects, for every
//! flavour and any csr phase.

use nm_rtl::{DecimateMode, DecimateXfu};
use proptest::prelude::*;

fn mode_strategy() -> impl Strategy<Value = DecimateMode> {
    prop_oneof![
        Just(DecimateMode::OneOfFour),
        Just(DecimateMode::OneOfEight),
        Just(DecimateMode::OneOfSixteen)
    ]
}

/// Software reference: offset i of a packed word.
fn decode_offset(mode: DecimateMode, word: u32, idx: u32) -> u32 {
    match mode {
        DecimateMode::OneOfFour => (word >> ((idx % 16) * 2)) & 0x3,
        _ => (word >> ((idx % 8) * 4)) & 0xF,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn xfu_gathers_what_the_decoder_selects(
        mode in mode_strategy(),
        rs1 in 0u32..1024,
        words in proptest::collection::vec(any::<u32>(), 1..8),
        calls in 1usize..40,
    ) {
        // Memory: identity-ish pattern so addresses are recoverable.
        let mem: Vec<u8> = (0..65536).map(|i| (i % 251) as u8).collect();
        let mut xfu = DecimateXfu::new();
        let mut regs = [0u32; 2];
        for call in 0..calls {
            let csr = u32::from(xfu.csr());
            let word = words[(call / 8) % words.len()];
            let expected_offset = decode_offset(mode, word, csr & 0xF);
            let expected_block = csr >> 1;
            let expected_addr = rs1 + mode.m() * expected_block + expected_offset;
            let lane = (csr >> 1) & 3;
            let q = call % 2;
            let rd = regs[q];
            let got = xfu.execute(mode, rs1, word, rd, |a| mem[a as usize]);
            // The selected byte landed in the selected lane.
            let byte = ((got >> (lane * 8)) & 0xFF) as u8;
            prop_assert_eq!(byte, mem[expected_addr as usize]);
            // Other lanes are untouched.
            for l in 0..4u32 {
                if l != lane {
                    prop_assert_eq!((got >> (l * 8)) & 0xFF, (rd >> (l * 8)) & 0xFF);
                }
            }
            regs[q] = got;
            prop_assert_eq!(u32::from(xfu.csr()), csr + 1);
        }
    }

    #[test]
    fn clear_restarts_the_sequence(
        mode in mode_strategy(),
        warmup in 0usize..40,
        rs2 in any::<u32>(),
    ) {
        let mem: Vec<u8> = (0..4096).map(|i| i as u8).collect();
        let mut a = DecimateXfu::new();
        for _ in 0..warmup {
            a.execute(mode, 0, rs2, 0, |x| mem[x as usize % mem.len()]);
        }
        a.clear();
        let mut b = DecimateXfu::new();
        let ra = a.execute(mode, 64, rs2, 0, |x| mem[x as usize % mem.len()]);
        let rb = b.execute(mode, 64, rs2, 0, |x| mem[x as usize % mem.len()]);
        prop_assert_eq!(ra, rb);
        prop_assert_eq!(a.csr(), b.csr());
    }
}
