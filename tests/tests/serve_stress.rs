//! Concurrency stress test for the batched inference service: seeded
//! multi-threaded submitters hammer two models through a deliberately
//! undersized queue. The assertions are the service's bookkeeping
//! invariants — no request lost, none duplicated, every shed reported,
//! drain/shutdown leaves the queue empty — plus the determinism
//! contract under contention. Runs in CI's release test profile (and in
//! debug, with the same request counts — the models are tiny).

use nm_compiler::{Options, PreparedGraph, Target};
use nm_core::sparsity::Nm;
use nm_core::Tensor;
use nm_integration::sparse_conv_fc_graph;
use nm_models::mlp_serve_sparse;
use nm_nn::graph::Graph;
use nm_nn::rng::XorShift;
use nm_serve::{Service, ServiceConfig, SubmitError};
use std::collections::HashSet;
use std::sync::Arc;

const SUBMITTERS: usize = 4;
const REQUESTS_PER_SUBMITTER: usize = 50;

/// A tiny conv graph so the stress mix covers the non-coalescible
/// executor path too.
fn tiny_conv_graph(nm: Nm) -> Arc<Graph> {
    Arc::new(sparse_conv_fc_graph(8, 4, nm, 21))
}

/// The input of submitter `t`'s `i`-th request to model `m` — a pure
/// function of the coordinates, so the expected output is computable
/// independently of the race.
fn request_input(shape: &[usize], t: usize, i: usize, m: usize) -> Tensor<i8> {
    let elems: usize = shape.iter().product();
    let seed = 5000 + (t as u64) * 1000 + (i as u64) * 10 + m as u64;
    Tensor::from_vec(shape, XorShift::new(seed).fill_weights(elems, 50)).unwrap()
}

#[test]
fn concurrent_submitters_lose_nothing_and_drain_clean() {
    let nm = Nm::ONE_OF_EIGHT;
    let graphs = [
        Arc::new(mlp_serve_sparse(&[64, 48, 32], nm, 5).unwrap()),
        tiny_conv_graph(nm),
    ];
    let opts = Options::new(Target::SparseIsa);
    // Ground truth per (model): outputs as a function of the input, via
    // a sequential prepared run outside the service.
    let prepared: Vec<_> = graphs
        .iter()
        .map(|g| PreparedGraph::prepare(g, &opts).unwrap())
        .collect();

    // Undersized queue + small batches: contention must produce sheds.
    let service = Service::start(ServiceConfig {
        queue_capacity: 8,
        max_batch: 4,
        workers: 2,
        ..ServiceConfig::default()
    });
    let ids: Vec<_> = graphs
        .iter()
        .enumerate()
        .map(|(m, g)| service.register(&format!("stress-{m}"), g, &opts).unwrap())
        .collect();

    // One completed request as the submitter recorded it: (submitter,
    // request index, model, response id, output, cycles — `Some` here
    // because the default service tier is cycle-accurate).
    type Completed = (usize, usize, usize, u64, Tensor<i8>, Option<u64>);

    // Each submitter fires its whole request stream without waiting
    // (so the undersized queue actually overflows), records every shed,
    // then waits for its own accepted tickets.
    let results: Vec<(Vec<Completed>, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..SUBMITTERS)
            .map(|t| {
                let (service, graphs, ids) = (&service, &graphs, &ids);
                scope.spawn(move || {
                    let mut rng = XorShift::new(900 + t as u64);
                    let mut shed = 0u64;
                    let mut tickets = Vec::new();
                    for i in 0..REQUESTS_PER_SUBMITTER {
                        let m = (rng.next_u64() % 2) as usize;
                        let input = request_input(graphs[m].input_shape(), t, i, m);
                        match service.submit(ids[m], input) {
                            Ok(ticket) => tickets.push((t, i, m, ticket)),
                            Err(SubmitError::Shed { capacity }) => {
                                assert_eq!(capacity, 8);
                                shed += 1;
                            }
                            Err(e) => panic!("unexpected submit error: {e:?}"),
                        }
                    }
                    let done: Vec<_> = tickets
                        .into_iter()
                        .map(|(t, i, m, ticket)| {
                            let id = ticket.id();
                            let r = ticket.wait().expect("accepted request completes");
                            assert_eq!(r.id, id, "response routed to its ticket");
                            (t, i, m, r.id, r.output, r.sim_cycles)
                        })
                        .collect();
                    (done, shed)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Every request is accounted for: accepted + shed == attempted.
    let accepted: u64 = results.iter().map(|(done, _)| done.len() as u64).sum();
    let shed: u64 = results.iter().map(|(_, s)| s).sum();
    assert_eq!(
        accepted + shed,
        (SUBMITTERS * REQUESTS_PER_SUBMITTER) as u64,
        "requests lost or invented"
    );
    assert!(
        shed > 0,
        "the undersized queue never shed — no backpressure exercised"
    );
    assert!(accepted > 0, "everything shed — nothing exercised");

    // No duplication: service-assigned ids are unique across threads.
    let unique: HashSet<u64> = results
        .iter()
        .flat_map(|(done, _)| done.iter().map(|&(_, _, _, id, _, _)| id))
        .collect();
    assert_eq!(unique.len() as u64, accepted, "duplicated response ids");

    // Determinism under contention: every response equals the
    // sequential run of its request's input.
    for (done, _) in &results {
        for (t, i, m, _, output, sim_cycles) in done {
            let input = request_input(graphs[*m].input_shape(), *t, *i, *m);
            let want = prepared[*m].run(&input).unwrap();
            assert_eq!(output, &want.output, "t={t} i={i} m={m}");
            assert_eq!(
                *sim_cycles,
                Some(want.matmul_compute_cycles),
                "t={t} i={i} m={m}"
            );
        }
    }

    // Drain leaves nothing queued or in flight; the final stats agree
    // with the per-thread tallies and the sheds were all counted.
    service.drain();
    assert_eq!(service.queue_depth(), 0, "drain left requests queued");
    let stats = service.shutdown();
    assert_eq!(stats.submitted, accepted);
    assert_eq!(stats.completed, accepted);
    assert_eq!(stats.shed, shed);
    assert_eq!(stats.failed, 0);
    assert!(stats.batches >= 1);
    assert!(stats.max_coalesced >= 1);
}

/// Submissions racing a shutdown. The submitter fires without waiting
/// (so sheds are genuinely reachable and tickets are outstanding when
/// the close lands) and stops at the first `Closed`. What must hold for
/// any timing: every attempt resolves to exactly one of
/// accepted/shed/closed, every *accepted* ticket completes even though
/// the service closed while it was in flight (close drains, never
/// drops), and the final counters reconcile with the submitter's tally.
#[test]
fn shutdown_races_submissions_without_losing_requests() {
    let nm = Nm::ONE_OF_EIGHT;
    let graph = Arc::new(mlp_serve_sparse(&[64, 48, 32], nm, 5).unwrap());
    let opts = Options::new(Target::SparseIsa);
    let service = Service::start(ServiceConfig {
        queue_capacity: 16,
        max_batch: 4,
        workers: 2,
        ..ServiceConfig::default()
    });
    let model = service.register("race", &graph, &opts).unwrap();

    let (accepted, shed, closed, attempts) = std::thread::scope(|scope| {
        let service = &service;
        let submitter = scope.spawn(move || {
            let mut tickets = Vec::new();
            let (mut shed, mut closed, mut attempts) = (0u64, 0u64, 0u64);
            for i in 0..200usize {
                attempts += 1;
                let input = request_input(&[64], 0, i, 0);
                match service.submit(model, input) {
                    Ok(ticket) => tickets.push(ticket),
                    Err(SubmitError::Shed { .. }) => shed += 1,
                    Err(SubmitError::Closed) => {
                        closed += 1;
                        break;
                    }
                    Err(e) => panic!("unexpected submit error: {e:?}"),
                }
            }
            let accepted = tickets.len() as u64;
            // Accepted-before-close requests must complete after the
            // close — this wait crosses the close boundary for every
            // ticket still in flight when it landed.
            for ticket in tickets {
                ticket.wait().expect("accepted request completes");
            }
            (accepted, shed, closed, attempts)
        });
        // Let the submitter make progress, then close underneath it.
        std::thread::sleep(std::time::Duration::from_millis(2));
        service.close();
        submitter.join().unwrap()
    });
    // Every attempt resolved exactly one way; nothing vanished.
    assert_eq!(accepted + shed + closed, attempts);
    assert!(closed <= 1, "the submitter stops at the first Closed");
    // Drain after close must not hang; shutdown's counters agree with
    // the submitter's tally.
    service.drain();
    let stats = service.shutdown();
    assert_eq!(stats.submitted, accepted);
    assert_eq!(stats.completed, accepted);
    assert_eq!(stats.shed, shed, "every shed was reported to the submitter");
    assert_eq!(stats.failed, 0);
}
