//! Failure-injection tests: every layer of the stack must reject bad
//! inputs with the documented error, not panic or silently mis-compute.

use nm_compiler::{compile, Options, Target};
use nm_core::format::{ChannelNmMatrix, NmMatrix, OffsetLayout};
use nm_core::quant::Requant;
use nm_core::sparsity::Nm;
use nm_core::{ConvGeom, Error, FcGeom};
use nm_integration::random_i8;
use nm_isa::CostModel;
use nm_kernels::conv::sparse_sw::{conv_sparse_sw, SparseConvJob};
use nm_kernels::conv::ConvJob;
use nm_kernels::layout::{stage_conv_dense, stage_conv_sparse, stage_fc_channelwise};
use nm_kernels::Ctx;
use nm_platform::{Cluster, Scratchpad};

#[test]
fn l1_exhaustion_reports_out_of_memory_with_sizes() {
    let mut l1 = Scratchpad::new("l1", 1024);
    let geom = ConvGeom::square(32, 32, 16, 3, 1, 1).unwrap();
    let input = vec![0i8; geom.input_elems()];
    let weights = vec![0i8; geom.weight_elems()];
    match stage_conv_dense(&mut l1, &geom, &input, &weights, 8) {
        Err(Error::OutOfMemory {
            requested,
            available,
        }) => {
            assert!(requested > available);
            assert!(available <= 1024);
        }
        other => panic!("expected OutOfMemory, got {other:?}"),
    }
    // A failed staging must not leave the allocator unusable.
    assert!(l1.alloc(16, 4).is_ok());
}

#[test]
fn sparse_staging_rejects_mismatched_matrix() {
    let mut l1 = Scratchpad::new("l1", 256 * 1024);
    let geom = ConvGeom::square(16, 4, 6, 3, 1, 1).unwrap();
    let input = vec![0i8; geom.input_elems()];
    // Matrix with the wrong number of rows.
    let w = NmMatrix::from_dense(
        &vec![0i8; 2 * geom.patch_len()],
        2,
        geom.patch_len(),
        Nm::ONE_OF_EIGHT,
        OffsetLayout::Plain,
    )
    .unwrap();
    assert!(matches!(
        stage_conv_sparse(&mut l1, &geom, &input, &w, 8),
        Err(Error::ShapeMismatch(_))
    ));
}

#[test]
fn kernels_reject_geometry_pattern_mismatch_before_touching_memory() {
    // patch 27 not divisible by 8 — must fail validation in analytic
    // and emulated mode alike, without partial output.
    let geom = ConvGeom::square(3, 2, 5, 3, 1, 1).unwrap();
    let job = SparseConvJob {
        conv: ConvJob {
            geom,
            requant: Requant::IDENTITY,
            bufs: Default::default(),
        },
        nm: Nm::ONE_OF_EIGHT,
    };
    let cluster = Cluster::new(4, CostModel::default());
    assert!(matches!(
        conv_sparse_sw(&mut Ctx::Analytic, &job, &cluster),
        Err(Error::ShapeMismatch(_))
    ));
    let mut l1 = Scratchpad::new("l1", 64 * 1024);
    assert!(matches!(
        conv_sparse_sw(&mut Ctx::Mem(&mut l1), &job, &cluster),
        Err(Error::ShapeMismatch(_))
    ));
}

#[test]
fn channel_format_rejects_interleaved_and_bad_rows() {
    let dense = vec![0i8; 4 * 16];
    assert!(matches!(
        ChannelNmMatrix::from_dense(&dense, 4, 16, &[None; 4], OffsetLayout::Interleaved),
        Err(Error::Unsupported(_))
    ));
    assert!(matches!(
        ChannelNmMatrix::from_dense(&dense, 4, 16, &[None; 3], OffsetLayout::Plain),
        Err(Error::ShapeMismatch(_))
    ));
}

#[test]
fn fc_channelwise_staging_checks_both_operands() {
    let geom = FcGeom::new(32, 4).unwrap();
    let w = ChannelNmMatrix::from_dense(&[0i8; 4 * 32], 4, 32, &[None; 4], OffsetLayout::Plain)
        .unwrap();
    let mut l1 = Scratchpad::new("l1", 64 * 1024);
    // Wrong input length.
    assert!(matches!(
        stage_fc_channelwise(&mut l1, &geom, &[0i8; 16], &w),
        Err(Error::ShapeMismatch(_))
    ));
    // Wrong K.
    let geom_bad = FcGeom::new(32, 5).unwrap();
    assert!(matches!(
        stage_fc_channelwise(&mut l1, &geom_bad, &[0i8; 32], &w),
        Err(Error::ShapeMismatch(_))
    ));
}

#[test]
fn compiler_surfaces_untileable_layers() {
    use nm_nn::graph::GraphBuilder;
    use nm_nn::layer::ConvLayer;
    // A single-output-row conv whose one unsplittable tile exceeds a
    // tiny L1 budget.
    let geom = ConvGeom::new(512, 16, 64, 1, 3, 1, 1, 0).unwrap();
    let w = random_i8(geom.weight_elems(), 3);
    let conv = ConvLayer::new(geom, w, Requant::IDENTITY).unwrap();
    let mut b = GraphBuilder::new(&[1, 64, 512]);
    let x = b.conv(b.input(), conv).unwrap();
    let g = b.finish(x).unwrap();
    let mut opts = Options::new(Target::DensePulpNn);
    opts.l1_budget = 4 * 1024;
    let err = compile(&g, &opts);
    assert!(err.is_err(), "4 KiB L1 cannot hold a 512-channel row tile");
}

#[test]
fn pattern_violations_carry_their_location_through_the_stack() {
    // Two non-zeros in one 1:4 block, deep inside the tensor.
    let geom = ConvGeom::square(16, 4, 4, 3, 1, 1).unwrap();
    let mut w = vec![0i8; geom.weight_elems()];
    let row = 2;
    let block = 7;
    w[row * geom.patch_len() + block * 4] = 1;
    w[row * geom.patch_len() + block * 4 + 1] = 2;
    match NmMatrix::from_dense(
        &w,
        geom.k,
        geom.patch_len(),
        Nm::ONE_OF_FOUR,
        OffsetLayout::Plain,
    ) {
        Err(Error::PatternViolation {
            row: r,
            block: b,
            found,
            allowed,
        }) => {
            assert_eq!((r, b, found, allowed), (row, block, 2, 1));
        }
        other => panic!("expected located PatternViolation, got {other:?}"),
    }
}

/// Serve-layer failure surface: a model whose minimum tile exceeds the
/// L1 budget must fail `Service::register` with the compiler's
/// `OutOfMemory` — and the failure must not wedge the service's
/// ModelCache: the same service then registers and serves a good model.
#[test]
fn serve_registration_surfaces_oom_without_wedging_the_cache() {
    use nm_models::mlp_serve_sparse;
    use nm_serve::{Service, ServiceConfig};
    use std::sync::Arc;

    let graph = Arc::new(mlp_serve_sparse(&[64, 48, 32], Nm::ONE_OF_EIGHT, 5).unwrap());
    let service = Service::start(ServiceConfig::default());

    // 64 B of L1 cannot hold even the minimum FC tile.
    let mut starved = Options::new(Target::SparseIsa);
    starved.l1_budget = 64;
    match service.register("starved", &graph, &starved) {
        Err(nm_serve::ServeError::Run(Error::OutOfMemory {
            requested,
            available,
        })) => {
            assert!(requested > available);
            assert!(available <= 64);
        }
        other => panic!("expected OutOfMemory, got {other:?}"),
    }
    assert_eq!(service.model_count(), 0, "failed registration left a slot");

    // The cache is not wedged: a sane registration on the same service
    // prepares, serves, and the earlier failure was never cached.
    let opts = Options::new(Target::SparseIsa);
    let model = service.register("good", &graph, &opts).unwrap();
    let input = nm_core::Tensor::from_vec(&[64], vec![1i8; 64]).unwrap();
    let ticket = service.submit(model, input).unwrap();
    ticket.wait().expect("the good model serves");
    // The starved attempt is a *failed prepare*, not a miss (a miss is
    // only counted once preparation succeeds); one artifact exists.
    let cache = service.cache_stats();
    assert_eq!(cache.hits, 0);
    assert_eq!(cache.misses, 1);
    assert_eq!(cache.failed_prepares, 1);
    assert_eq!(cache.evictions, 0, "an unbudgeted cache never evicts");
    assert!(cache.resident_bytes > 0, "the good artifact is resident");
    assert_eq!(service.model_count(), 1);
    service.shutdown();
}

/// The same resilience under *injected* preparation faults: an armed
/// `prepare` error fails exactly one registration; retrying succeeds
/// and the service serves.
#[test]
fn serve_registration_survives_injected_prepare_fault() {
    use nm_models::mlp_serve_sparse;
    use nm_serve::{FaultAction, FaultPlan, FaultPoint, Service, ServiceConfig};
    use std::sync::Arc;

    let graph = Arc::new(mlp_serve_sparse(&[64, 48, 32], Nm::ONE_OF_EIGHT, 5).unwrap());
    let service = Service::start(ServiceConfig {
        fault_plan: Some(Arc::new(FaultPlan::new().fail_nth(
            FaultPoint::Prepare,
            0,
            FaultAction::Error,
        ))),
        ..ServiceConfig::default()
    });
    let opts = Options::new(Target::SparseIsa);
    let err = service.register("m", &graph, &opts).unwrap_err();
    assert!(
        matches!(err, nm_serve::ServeError::Run(Error::Unsupported(_))),
        "{err:?}"
    );
    // The one-shot fault is spent; the same registration now works.
    let model = service.register("m", &graph, &opts).unwrap();
    let input = nm_core::Tensor::from_vec(&[64], vec![1i8; 64]).unwrap();
    service.submit(model, input).unwrap().wait().unwrap();
    service.shutdown();
}

#[test]
fn scratchpad_bus_errors_panic_like_hardware() {
    // Out-of-range access is a simulated bus error — a panic, not UB.
    let l1 = Scratchpad::new("l1", 64);
    let result = std::panic::catch_unwind(|| nm_isa::Memory::load_u8(&l1, 64));
    assert!(result.is_err());
}
