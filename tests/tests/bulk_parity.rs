//! Parity tests for the bulk fast path (`Ctx::MemBulk`): against the
//! per-instruction reference (`Ctx::Mem`) every kernel must be
//! **bit-exact on the whole scratchpad** and **exact on every statistic**
//! (cycles, instret, per-class counts, MACs) — for the default cost model
//! *and* a fully stalled one, since the fast path batches stall cycles it
//! never individually pays. Against `Ctx::Analytic` (default model) the
//! cycle and instruction totals must also agree.
//!
//! Coverage per kernel: {1:4, 1:8, 1:16} × {chunk-only, chunk+tail,
//! tiny/tail-only} geometries, plus the dense baselines, the
//! per-channel mixed kernels, the related-work baseline formats
//! (CSR / dCSR / blockwise, across sparsities and with empty rows) and
//! the end-to-end compiled executor.

use nm_core::format::{
    BlockwiseMatrix, ChannelNmMatrix, CsrMatrix, DcsrMatrix, NmMatrix, OffsetLayout,
};
use nm_core::quant::Requant;
use nm_core::sparsity::Nm;
use nm_core::{ConvGeom, FcGeom};
use nm_isa::CostModel;
use nm_kernels::baseline::blockwise::{fc_blockwise, stage_blockwise_fc};
use nm_kernels::baseline::csr::{fc_csr, stage_csr_fc};
use nm_kernels::baseline::dcsr::{fc_dcsr, stage_dcsr_fc};
use nm_kernels::conv::dense::{conv_dense_1x2, conv_dense_4x2};
use nm_kernels::conv::per_channel::{conv_channel_mixed, ChannelConvJob, ChannelEngine};
use nm_kernels::conv::sparse_isa::conv_sparse_isa;
use nm_kernels::conv::sparse_sw::{conv_sparse_sw, SparseConvJob};
use nm_kernels::conv::{im2col_only, ConvJob};
use nm_kernels::fc::dense::fc_dense;
use nm_kernels::fc::per_channel::{fc_channel_mixed, ChannelFcJob};
use nm_kernels::fc::sparse_isa::fc_sparse_isa;
use nm_kernels::fc::sparse_sw::{fc_sparse_sw, SparseFcJob};
use nm_kernels::fc::FcJob;
use nm_kernels::layout::{
    stage_conv_channelwise, stage_conv_dense, stage_conv_sparse, stage_fc_channelwise,
    stage_fc_dense, stage_fc_sparse,
};
use nm_kernels::testdata::{random_data, random_sparse_data};
use nm_kernels::{Ctx, KernelStats};
use nm_platform::{Cluster, Scratchpad};

/// A cost model where every knob is distinct and non-zero, so a fast
/// path that batches stalls or penalties incorrectly cannot hide.
fn stalled_model() -> CostModel {
    CostModel {
        base: 1,
        load_stall: 2,
        branch_taken_penalty: 3,
        outer_loop_instrs: 3,
        kernel_overhead_instrs: 60,
        ..CostModel::VEGA
    }
}

/// Runs `kernel` on the reference and bulk paths over clones of the same
/// staged scratchpad and asserts full-memory bit-exactness plus exact
/// stats equality; returns the (shared) stats for further checks.
fn assert_mem_parity<F>(l1: &Scratchpad, costs: CostModel, cores: usize, kernel: F) -> KernelStats
where
    F: Fn(&mut Ctx<'_>, &Cluster) -> KernelStats,
{
    let cluster = Cluster::new(cores, costs);
    let mut l1_ref = l1.clone();
    let mut l1_bulk = l1.clone();
    let reference = kernel(&mut Ctx::Mem(&mut l1_ref), &cluster);
    let bulk = kernel(&mut Ctx::MemBulk(&mut l1_bulk), &cluster);
    assert_eq!(
        l1_ref.bytes(),
        l1_bulk.bytes(),
        "scratchpad contents diverged"
    );
    assert_eq!(reference, bulk, "stats diverged");
    bulk
}

/// Adds the analytic cross-check (valid for the default, stall-free
/// model): cycle and instruction totals agree with charge-only mode.
fn assert_full_parity<F>(l1: &Scratchpad, cores: usize, kernel: F)
where
    F: Fn(&mut Ctx<'_>, &Cluster) -> KernelStats,
{
    let emulated = assert_mem_parity(l1, CostModel::default(), cores, &kernel);
    let analytic = kernel(
        &mut Ctx::Analytic,
        &Cluster::new(cores, CostModel::default()),
    );
    assert_eq!(
        emulated.cycles(),
        analytic.cycles(),
        "analytic cycles diverged"
    );
    assert_eq!(
        emulated.cluster.total_instret(),
        analytic.cluster.total_instret(),
        "analytic instret diverged"
    );
    assert_eq!(
        emulated.cluster.total_macs(),
        analytic.cluster.total_macs(),
        "analytic macs diverged"
    );
    assert_mem_parity(l1, stalled_model(), cores, &kernel);
}

/// FC geometries per pattern: chunk-only, chunk + tail, tail-only tiny.
fn fc_geoms(nm: Nm) -> [FcGeom; 3] {
    let m = nm.m();
    [
        FcGeom::new(8 * m, 6).unwrap(), // nz = 8: chunks only
        FcGeom::new(5 * m, 4).unwrap(), // nz = 5: chunk + tail
        FcGeom::new(m, 2).unwrap(),     // nz = 1: tail only
    ]
}

/// Conv geometries per pattern: chunk-only (even positions), chunk +
/// tail (odd positions, single-patch fallback), tiny tail-only.
fn conv_geoms(nm: Nm) -> [ConvGeom; 3] {
    let m = nm.m();
    [
        ConvGeom::square(4 * m, 4, 4, 1, 1, 0).unwrap(), // nz = 4: chunks only
        ConvGeom::square(m, 3, 5, 3, 1, 1).unwrap(),     // nz = 9: chunks + tail
        ConvGeom::square(m, 1, 3, 1, 1, 0).unwrap(),     // nz = 1: tail only, odd positions
    ]
}

#[test]
fn fc_dense_bulk_parity() {
    for geom in [
        FcGeom::new(64, 16).unwrap(),
        FcGeom::new(30, 7).unwrap(),
        FcGeom::new(5, 1).unwrap(),
    ] {
        let input = random_data(geom.c, 3);
        let weights = random_data(geom.weight_elems(), 17);
        let rq = Requant::for_dot_len(geom.c);
        let mut l1 = Scratchpad::new("l1", 512 * 1024);
        let bufs = stage_fc_dense(&mut l1, &geom, &input, &weights).unwrap();
        let job = FcJob {
            geom,
            requant: rq,
            bufs,
        };
        assert_full_parity(&l1, 4, |ctx, cluster| fc_dense(ctx, &job, cluster).unwrap());
    }
}

#[test]
fn fc_sparse_sw_bulk_parity() {
    for nm in Nm::KERNEL_PATTERNS {
        for geom in fc_geoms(nm) {
            let input = random_data(geom.c, 9);
            let dense = random_data(geom.weight_elems(), 23);
            let w = NmMatrix::prune_from_dense(&dense, geom.k, geom.c, nm, OffsetLayout::Plain)
                .unwrap();
            let rq = Requant::for_dot_len((geom.c / nm.m()).max(1));
            let mut l1 = Scratchpad::new("l1", 512 * 1024);
            let bufs = stage_fc_sparse(&mut l1, &geom, &input, &w).unwrap();
            let job = SparseFcJob {
                fc: FcJob {
                    geom,
                    requant: rq,
                    bufs,
                },
                nm,
            };
            assert_full_parity(&l1, 4, |ctx, cluster| {
                fc_sparse_sw(ctx, &job, cluster).unwrap()
            });
        }
    }
}

#[test]
fn fc_sparse_isa_bulk_parity() {
    for nm in Nm::KERNEL_PATTERNS {
        for geom in fc_geoms(nm) {
            let input = random_data(geom.c, 31);
            let dense = random_data(geom.weight_elems(), 41);
            let w =
                NmMatrix::prune_from_dense(&dense, geom.k, geom.c, nm, OffsetLayout::Interleaved)
                    .unwrap();
            let rq = Requant::for_dot_len((geom.c / nm.m()).max(1));
            let mut l1 = Scratchpad::new("l1", 512 * 1024);
            let bufs = stage_fc_sparse(&mut l1, &geom, &input, &w).unwrap();
            let job = SparseFcJob {
                fc: FcJob {
                    geom,
                    requant: rq,
                    bufs,
                },
                nm,
            };
            assert_full_parity(&l1, 4, |ctx, cluster| {
                fc_sparse_isa(ctx, &job, cluster).unwrap()
            });
        }
    }
}

/// Geometry / sparsity grid for the three related-work baseline formats:
/// K = 7 leaves ragged per-core ranges on a 4-core cluster, and the
/// sparsities cover short deltas, escaped dCSR deltas and near-dense rows.
fn baseline_cases() -> Vec<(FcGeom, Vec<i8>)> {
    let geom = FcGeom::new(96, 7).unwrap();
    let mut cases: Vec<(FcGeom, Vec<i8>)> = [3usize, 8, 17]
        .iter()
        .map(|&keep| (geom, random_sparse_data(geom.weight_elems(), keep, 29)))
        .collect();
    // All-zero weights: every row empty on every format.
    cases.push((FcGeom::new(32, 5).unwrap(), vec![0i8; 32 * 5]));
    cases
}

#[test]
fn fc_csr_bulk_parity() {
    for (geom, dense) in baseline_cases() {
        let input = random_data(geom.c, 47);
        let w = CsrMatrix::from_dense(&dense, geom.k, geom.c).unwrap();
        let fc = FcJob {
            geom,
            requant: Requant::for_dot_len(12),
            bufs: Default::default(),
        };
        let mut l1 = Scratchpad::new("l1", 512 * 1024);
        let job = stage_csr_fc(&mut l1, &fc, &input, &w).unwrap();
        assert_full_parity(&l1, 4, |ctx, cluster| fc_csr(ctx, &job, cluster).unwrap());
    }
}

#[test]
fn fc_dcsr_bulk_parity() {
    for (geom, dense) in baseline_cases() {
        let input = random_data(geom.c, 53);
        let w = DcsrMatrix::from_dense(&dense, geom.k, geom.c).unwrap();
        let fc = FcJob {
            geom,
            requant: Requant::for_dot_len(12),
            bufs: Default::default(),
        };
        let mut l1 = Scratchpad::new("l1", 512 * 1024);
        let job = stage_dcsr_fc(&mut l1, &fc, &input, &w).unwrap();
        assert_full_parity(&l1, 4, |ctx, cluster| fc_dcsr(ctx, &job, cluster).unwrap());
    }
}

#[test]
fn fc_blockwise_bulk_parity() {
    let geom = FcGeom::new(96, 7).unwrap();
    for keep in [2usize, 8, 24] {
        let input = random_data(geom.c, 59);
        let dense = random_data(geom.weight_elems(), 61);
        let w = BlockwiseMatrix::prune_from_dense(&dense, geom.k, geom.c, 4, keep).unwrap();
        let fc = FcJob {
            geom,
            requant: Requant::for_dot_len(16),
            bufs: Default::default(),
        };
        let mut l1 = Scratchpad::new("l1", 512 * 1024);
        let job = stage_blockwise_fc(&mut l1, &fc, &input, &w).unwrap();
        assert_full_parity(&l1, 4, |ctx, cluster| {
            fc_blockwise(ctx, &job, cluster).unwrap()
        });
    }
    // All-zero weights: every row keeps no blocks.
    let geom = FcGeom::new(32, 5).unwrap();
    let w =
        BlockwiseMatrix::from_dense(&vec![0i8; geom.weight_elems()], geom.k, geom.c, 4).unwrap();
    let fc = FcJob {
        geom,
        requant: Requant::IDENTITY,
        bufs: Default::default(),
    };
    let mut l1 = Scratchpad::new("l1", 64 * 1024);
    let input = random_data(geom.c, 67);
    let job = stage_blockwise_fc(&mut l1, &fc, &input, &w).unwrap();
    assert_full_parity(&l1, 4, |ctx, cluster| {
        fc_blockwise(ctx, &job, cluster).unwrap()
    });
}

#[test]
fn conv_dense_bulk_parity() {
    for geom in [
        ConvGeom::square(8, 4, 6, 3, 1, 1).unwrap(),
        ConvGeom::square(3, 9, 5, 3, 1, 1).unwrap(), // C tail + K % 4, odd positions
        ConvGeom::square(4, 2, 7, 3, 2, 1).unwrap(), // strided
    ] {
        let input = random_data(geom.input_elems(), 7);
        let weights = random_data(geom.weight_elems(), 13);
        let rq = Requant::for_dot_len(geom.patch_len());
        let mut l1 = Scratchpad::new("l1", 512 * 1024);
        let bufs = stage_conv_dense(&mut l1, &geom, &input, &weights, 4).unwrap();
        let job = ConvJob {
            geom,
            requant: rq,
            bufs,
        };
        assert_full_parity(&l1, 4, |ctx, cluster| {
            conv_dense_1x2(ctx, &job, cluster).unwrap()
        });
        assert_full_parity(&l1, 4, |ctx, cluster| {
            conv_dense_4x2(ctx, &job, cluster).unwrap()
        });
    }
}

#[test]
fn conv_sparse_sw_bulk_parity() {
    for nm in Nm::KERNEL_PATTERNS {
        for geom in conv_geoms(nm) {
            let input = random_data(geom.input_elems(), 3);
            let dense = random_data(geom.weight_elems(), 11);
            let w = NmMatrix::prune_from_dense(
                &dense,
                geom.k,
                geom.patch_len(),
                nm,
                OffsetLayout::Plain,
            )
            .unwrap();
            let rq = Requant::for_dot_len((geom.patch_len() / nm.m()).max(1));
            let mut l1 = Scratchpad::new("l1", 512 * 1024);
            let bufs = stage_conv_sparse(&mut l1, &geom, &input, &w, 4).unwrap();
            let job = SparseConvJob {
                conv: ConvJob {
                    geom,
                    requant: rq,
                    bufs,
                },
                nm,
            };
            assert_full_parity(&l1, 4, |ctx, cluster| {
                conv_sparse_sw(ctx, &job, cluster).unwrap()
            });
        }
    }
}

#[test]
fn conv_sparse_isa_bulk_parity() {
    for nm in Nm::KERNEL_PATTERNS {
        for geom in conv_geoms(nm) {
            let input = random_data(geom.input_elems(), 21);
            let dense = random_data(geom.weight_elems(), 5);
            let w = NmMatrix::prune_from_dense(
                &dense,
                geom.k,
                geom.patch_len(),
                nm,
                OffsetLayout::Duplicated,
            )
            .unwrap();
            let rq = Requant::for_dot_len((geom.patch_len() / nm.m()).max(1));
            let mut l1 = Scratchpad::new("l1", 512 * 1024);
            let bufs = stage_conv_sparse(&mut l1, &geom, &input, &w, 4).unwrap();
            let job = SparseConvJob {
                conv: ConvJob {
                    geom,
                    requant: rq,
                    bufs,
                },
                nm,
            };
            assert_full_parity(&l1, 4, |ctx, cluster| {
                conv_sparse_isa(ctx, &job, cluster).unwrap()
            });
        }
    }
}

/// Geometries stressing the incremental bulk im2col: column reuse along
/// a row (stride < fx), none at all (stride > fx, ox == 1, pointwise),
/// and padding classes up to fully padded edges (pad >= fx). C = 8 keeps
/// `patch_len` a multiple of 8 so the same grid serves the 1:8 sparse
/// kernels.
fn incremental_im2col_geoms() -> Vec<ConvGeom> {
    vec![
        ConvGeom::square(8, 4, 7, 3, 2, 1).unwrap(), // strided, odd positions
        ConvGeom::square(8, 2, 4, 3, 1, 3).unwrap(), // pad >= fx: fully padded edges
        ConvGeom::square(8, 4, 6, 1, 1, 0).unwrap(), // pointwise: whole-row copies
        ConvGeom::new(8, 3, 3, 6, 3, 3, 1, 0).unwrap(), // ox == 1: no horizontal reuse
        ConvGeom::square(8, 2, 9, 2, 3, 1).unwrap(), // stride > fx: disjoint patches
    ]
}

/// The incremental bulk im2col must stay bit-exact and stat-exact for
/// every conv kernel on the reuse/no-reuse/padded geometry grid —
/// including under the stalled cost model (exercised by
/// `assert_full_parity`) and through the per-channel mixed kernel.
#[test]
fn conv_incremental_im2col_parity() {
    let nm = Nm::ONE_OF_EIGHT;
    for geom in incremental_im2col_geoms() {
        let input = random_data(geom.input_elems(), 73);
        let dense = random_data(geom.weight_elems(), 79);
        let rq = Requant::for_dot_len(geom.patch_len());

        // Dense 1x2 and 4x2.
        let mut l1 = Scratchpad::new("l1", 512 * 1024);
        let bufs = stage_conv_dense(&mut l1, &geom, &input, &dense, 4).unwrap();
        let job = ConvJob {
            geom,
            requant: rq,
            bufs,
        };
        assert_full_parity(&l1, 4, |ctx, cluster| {
            conv_dense_1x2(ctx, &job, cluster).unwrap()
        });
        assert_full_parity(&l1, 4, |ctx, cluster| {
            conv_dense_4x2(ctx, &job, cluster).unwrap()
        });

        // Sparse software and ISA kernels at 1:8.
        for layout in [OffsetLayout::Plain, OffsetLayout::Duplicated] {
            let w =
                NmMatrix::prune_from_dense(&dense, geom.k, geom.patch_len(), nm, layout).unwrap();
            let rq = Requant::for_dot_len((geom.patch_len() / nm.m()).max(1));
            let mut l1 = Scratchpad::new("l1", 512 * 1024);
            let bufs = stage_conv_sparse(&mut l1, &geom, &input, &w, 4).unwrap();
            let job = SparseConvJob {
                conv: ConvJob {
                    geom,
                    requant: rq,
                    bufs,
                },
                nm,
            };
            match layout {
                OffsetLayout::Plain => assert_full_parity(&l1, 4, |ctx, cluster| {
                    conv_sparse_sw(ctx, &job, cluster).unwrap()
                }),
                _ => assert_full_parity(&l1, 4, |ctx, cluster| {
                    conv_sparse_isa(ctx, &job, cluster).unwrap()
                }),
            }
        }

        // Per-channel mixed (dense + 1:8 rows share the im2col).
        let patterns: Vec<_> = (0..geom.k)
            .map(|i| if i % 2 == 0 { None } else { Some(nm) })
            .collect();
        let w = ChannelNmMatrix::prune_from_dense(
            &dense,
            geom.k,
            geom.patch_len(),
            &patterns,
            OffsetLayout::Plain,
        )
        .unwrap();
        let rq = Requant::for_dot_len((geom.patch_len() / nm.m()).max(1));
        let mut l1 = Scratchpad::new("l1", 512 * 1024);
        let (bufs, row_values, row_offsets) =
            stage_conv_channelwise(&mut l1, &geom, &input, &w, 4).unwrap();
        let job = ChannelConvJob {
            conv: ConvJob {
                geom,
                requant: rq,
                bufs,
            },
            patterns,
            row_values,
            row_offsets,
        };
        assert_full_parity(&l1, 4, |ctx, cluster| {
            conv_channel_mixed(ctx, &job, cluster, ChannelEngine::Software).unwrap()
        });
    }
}

/// The im2col-only workload (bulk path materializes nothing but each
/// core's final patch buffers) must still leave the scratchpad
/// bit-identical to the reference's per-position rebuilds, with exact
/// stats, on every geometry class and core count — including a cluster
/// larger than the position count (cores with empty ranges never touch
/// their buffers on either path).
#[test]
fn im2col_only_bulk_parity() {
    for geom in incremental_im2col_geoms() {
        let input = random_data(geom.input_elems(), 83);
        let weights = random_data(geom.weight_elems(), 89);
        let mut l1 = Scratchpad::new("l1", 512 * 1024);
        let bufs = stage_conv_dense(&mut l1, &geom, &input, &weights, 16).unwrap();
        let job = ConvJob {
            geom,
            requant: Requant::IDENTITY,
            bufs,
        };
        for cores in [1, 4, 16] {
            assert_full_parity(&l1, cores, |ctx, cluster| {
                im2col_only("im2col-test", ctx, &job, cluster)
            });
        }
    }
}

#[test]
fn per_channel_mixed_bulk_parity() {
    let ladder = [
        None,
        Some(Nm::ONE_OF_FOUR),
        None,
        Some(Nm::ONE_OF_EIGHT),
        Some(Nm::ONE_OF_SIXTEEN),
    ];

    // FC: C = 80 produces chunk+tail rows at every pattern.
    let geom = FcGeom::new(80, 7).unwrap();
    let patterns: Vec<_> = (0..geom.k).map(|i| ladder[i % ladder.len()]).collect();
    let input = random_data(geom.c, 13);
    let dense = random_data(geom.weight_elems(), 29);
    let w =
        ChannelNmMatrix::prune_from_dense(&dense, geom.k, geom.c, &patterns, OffsetLayout::Plain)
            .unwrap();
    let rq = Requant::for_dot_len(geom.c / 8);
    let mut l1 = Scratchpad::new("l1", 256 * 1024);
    let (bufs, row_values, row_offsets) = stage_fc_channelwise(&mut l1, &geom, &input, &w).unwrap();
    let job = ChannelFcJob {
        fc: FcJob {
            geom,
            requant: rq,
            bufs,
        },
        patterns,
        row_values,
        row_offsets,
    };
    assert_full_parity(&l1, 4, |ctx, cluster| {
        fc_channel_mixed(ctx, &job, cluster).unwrap()
    });

    // Conv, both engines.
    for engine in [ChannelEngine::Software, ChannelEngine::Isa] {
        let geom = ConvGeom::square(16, 5, 5, 3, 1, 1).unwrap();
        let patterns: Vec<_> = (0..geom.k).map(|i| ladder[i % ladder.len()]).collect();
        let layout = match engine {
            ChannelEngine::Software => OffsetLayout::Plain,
            ChannelEngine::Isa => OffsetLayout::Duplicated,
        };
        let input = random_data(geom.input_elems(), 37);
        let dense = random_data(geom.weight_elems(), 43);
        let w =
            ChannelNmMatrix::prune_from_dense(&dense, geom.k, geom.patch_len(), &patterns, layout)
                .unwrap();
        let rq = Requant::for_dot_len(geom.patch_len() / 8);
        let mut l1 = Scratchpad::new("l1", 256 * 1024);
        let (bufs, row_values, row_offsets) =
            stage_conv_channelwise(&mut l1, &geom, &input, &w, 4).unwrap();
        let job = ChannelConvJob {
            conv: ConvJob {
                geom,
                requant: rq,
                bufs,
            },
            patterns,
            row_values,
            row_offsets,
        };
        assert_full_parity(&l1, 4, |ctx, cluster| {
            conv_channel_mixed(ctx, &job, cluster, engine).unwrap()
        });
    }
}

/// End to end: the compiled executor must produce identical outputs and
/// identical cycle totals on both emulation paths.
#[test]
fn compiled_executor_bulk_parity() {
    use nm_compiler::exec::run_emulated;
    use nm_compiler::{ExecTier, Options, Target};
    use nm_core::Tensor;
    use nm_integration::{make_exact_nm, random_i8};
    use nm_nn::layer::{ConvLayer, LinearLayer};
    use nm_nn::GraphBuilder;

    let nm = Nm::ONE_OF_EIGHT;
    let mut cw = random_i8(8 * 3 * 3 * 8, 61);
    make_exact_nm(&mut cw, 8, 3 * 3 * 8, nm);
    let conv = ConvLayer::new(
        ConvGeom::square(8, 8, 6, 3, 1, 1).unwrap(),
        cw,
        Requant::for_dot_len(3 * 3 * 8),
    )
    .unwrap();
    let mut fcw = random_i8(4 * (6 * 6 * 8), 67);
    make_exact_nm(&mut fcw, 4, 6 * 6 * 8, nm);
    let fc = LinearLayer::new(
        FcGeom::new(6 * 6 * 8, 4).unwrap(),
        fcw,
        Requant::for_dot_len(6 * 6 * 8),
    )
    .unwrap();
    let mut b = GraphBuilder::new(&[6, 6, 8]);
    let x = b.input();
    let x = b.conv(x, conv).unwrap();
    let x = b.relu(x).unwrap();
    let x = b.flatten(x).unwrap();
    let out = b.linear(x, fc).unwrap();
    let g = b.finish(out).unwrap();

    let input = Tensor::from_vec(&[6, 6, 8], random_i8(6 * 6 * 8, 71)).unwrap();
    for target in [Target::SparseSw, Target::SparseIsa, Target::DensePulpNn] {
        let fast = Options::new(target);
        assert_eq!(fast.tier, ExecTier::Bulk, "bulk tier is the default");
        let mut reference = Options::new(target);
        reference.tier = ExecTier::Reference;
        let fast_run = run_emulated(&g, &input, &fast).unwrap();
        let ref_run = run_emulated(&g, &input, &reference).unwrap();
        assert_eq!(fast_run.output, ref_run.output, "{target:?} outputs");
        assert_eq!(
            fast_run.matmul_compute_cycles, ref_run.matmul_compute_cycles,
            "{target:?} cycles"
        );
    }

    // A strided, heavily padded conv exercises the incremental im2col's
    // padding classes through the executor's tiling too.
    let mut cw = random_i8(4 * 3 * 3 * 8, 73);
    make_exact_nm(&mut cw, 4, 3 * 3 * 8, nm);
    let conv = ConvLayer::new(
        ConvGeom::square(8, 4, 7, 3, 2, 2).unwrap(),
        cw,
        Requant::for_dot_len(3 * 3 * 8),
    )
    .unwrap();
    let mut b = GraphBuilder::new(&[7, 7, 8]);
    let x = b.input();
    let out = b.conv(x, conv).unwrap();
    let g = b.finish(out).unwrap();
    let input = Tensor::from_vec(&[7, 7, 8], random_i8(7 * 7 * 8, 77)).unwrap();
    for target in [Target::SparseSw, Target::SparseIsa, Target::DensePulpNn] {
        let fast = Options::new(target);
        let mut reference = Options::new(target);
        reference.tier = ExecTier::Reference;
        let fast_run = run_emulated(&g, &input, &fast).unwrap();
        let ref_run = run_emulated(&g, &input, &reference).unwrap();
        assert_eq!(fast_run.output, ref_run.output, "padded {target:?} outputs");
        assert_eq!(
            fast_run.matmul_compute_cycles, ref_run.matmul_compute_cycles,
            "padded {target:?} cycles"
        );
    }
}
