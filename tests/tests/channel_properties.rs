//! Property tests over the per-channel variable-sparsity extension
//! (paper future work): format round trips, kernel bit-exactness vs the
//! reference, analytic/emulated cycle identity, and assignment-policy
//! invariants.

use nm_compiler::channelwise::conv_channel_sweep;
use nm_core::format::{ChannelNmMatrix, OffsetLayout};
use nm_core::quant::Requant;
use nm_core::sparsity::Nm;
use nm_core::ConvGeom;
use nm_integration::random_i8;
use nm_isa::CostModel;
use nm_kernels::conv::per_channel::{conv_channel_mixed, ChannelConvJob, ChannelEngine};
use nm_kernels::conv::ConvJob;
use nm_kernels::layout::stage_conv_channelwise;
use nm_kernels::reference::conv_ref;
use nm_kernels::Ctx;
use nm_nn::prune::{assign_channel_patterns, channel_density};
use nm_platform::{Cluster, Scratchpad};
use proptest::prelude::*;

fn pattern_strategy() -> impl Strategy<Value = Option<Nm>> {
    prop_oneof![
        Just(None),
        Just(Some(Nm::ONE_OF_FOUR)),
        Just(Some(Nm::ONE_OF_EIGHT)),
        Just(Some(Nm::ONE_OF_SIXTEEN)),
    ]
}

fn engine_strategy() -> impl Strategy<Value = ChannelEngine> {
    prop_oneof![Just(ChannelEngine::Software), Just(ChannelEngine::Isa)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn channel_format_round_trips(
        patterns in prop::collection::vec(pattern_strategy(), 1..8),
        blocks16 in 1usize..4,
        seed in 1u64..10_000,
        duplicated in any::<bool>(),
    ) {
        let rows = patterns.len();
        let cols = 16 * blocks16; // divisible by every ladder M
        let dense = random_i8(rows * cols, seed);
        let layout = if duplicated { OffsetLayout::Duplicated } else { OffsetLayout::Plain };
        let w = ChannelNmMatrix::prune_from_dense(&dense, rows, cols, &patterns, layout).unwrap();
        let round = w.to_dense();
        // Dense rows survive verbatim; sparse rows satisfy their pattern.
        for (r, &p) in patterns.iter().enumerate() {
            let row = &round[r * cols..(r + 1) * cols];
            match p {
                None => prop_assert_eq!(row, &dense[r * cols..(r + 1) * cols]),
                Some(nm) => {
                    prop_assert!(nm_core::sparsity::check_pattern(row, 1, cols, nm).is_ok());
                }
            }
        }
        // Re-packing the pruned dense matrix is the identity.
        let again = ChannelNmMatrix::from_dense(&round, rows, cols, &patterns, layout).unwrap();
        prop_assert_eq!(again.to_dense(), round);
        // Memory never exceeds dense.
        prop_assert!(w.memory_bits_nominal() <= rows * cols * 8);
        prop_assert!(w.density() <= 1.0 + 1e-12);
    }

    #[test]
    fn per_channel_kernel_is_bit_exact_and_cycle_deterministic(
        patterns in prop::collection::vec(pattern_strategy(), 2..6),
        engine in engine_strategy(),
        img in 4usize..7,
        seed in 1u64..10_000,
    ) {
        let k = patterns.len();
        let geom = ConvGeom::square(16, k, img, 3, 1, 1).unwrap();
        let layout = match engine {
            ChannelEngine::Software => OffsetLayout::Plain,
            ChannelEngine::Isa => OffsetLayout::Duplicated,
        };
        let input = random_i8(geom.input_elems(), seed);
        let dense = random_i8(geom.weight_elems(), seed ^ 0x5555);
        let w = ChannelNmMatrix::prune_from_dense(
            &dense, geom.k, geom.patch_len(), &patterns, layout).unwrap();
        let pruned = w.to_dense();
        let rq = Requant::for_dot_len(geom.patch_len() / 8);
        let cluster = Cluster::new(4, CostModel::default());
        let mut l1 = Scratchpad::new("l1", 512 * 1024);
        let (bufs, row_values, row_offsets) =
            stage_conv_channelwise(&mut l1, &geom, &input, &w, cluster.n_cores()).unwrap();
        let job = ChannelConvJob {
            conv: ConvJob { geom, requant: rq, bufs },
            patterns,
            row_values,
            row_offsets,
        };
        let stats = conv_channel_mixed(&mut Ctx::Mem(&mut l1), &job, &cluster, engine).unwrap();
        let got: Vec<i8> = (0..geom.output_elems() as u32)
            .map(|i| nm_isa::Memory::load_i8(&l1, bufs.output + i))
            .collect();
        prop_assert_eq!(got, conv_ref(&geom, &input, &pruned, rq));
        let analytic = conv_channel_mixed(&mut Ctx::Analytic, &job, &cluster, engine).unwrap();
        prop_assert_eq!(stats.cycles(), analytic.cycles());
        prop_assert_eq!(stats.cluster.total_macs(), analytic.cluster.total_macs());
    }

    #[test]
    fn fc_per_channel_kernel_is_bit_exact_and_cycle_deterministic(
        patterns in prop::collection::vec(pattern_strategy(), 2..10),
        blocks16 in 1usize..4,
        seed in 1u64..10_000,
    ) {
        use nm_kernels::fc::per_channel::{fc_channel_mixed, ChannelFcJob};
        use nm_kernels::fc::FcJob;
        use nm_kernels::layout::stage_fc_channelwise;
        use nm_kernels::reference::fc_ref;
        use nm_core::FcGeom;

        let geom = FcGeom::new(16 * blocks16, patterns.len()).unwrap();
        let input = random_i8(geom.c, seed ^ 0x33);
        let dense = random_i8(geom.weight_elems(), seed);
        let w = ChannelNmMatrix::prune_from_dense(
            &dense, geom.k, geom.c, &patterns, OffsetLayout::Plain).unwrap();
        let pruned = w.to_dense();
        let rq = Requant::for_dot_len(geom.c / 8);
        let cluster = Cluster::new(4, CostModel::default());
        let mut l1 = Scratchpad::new("l1", 256 * 1024);
        let (bufs, row_values, row_offsets) =
            stage_fc_channelwise(&mut l1, &geom, &input, &w).unwrap();
        let job = ChannelFcJob {
            fc: FcJob { geom, requant: rq, bufs },
            patterns,
            row_values,
            row_offsets,
        };
        let stats = fc_channel_mixed(&mut Ctx::Mem(&mut l1), &job, &cluster).unwrap();
        let got: Vec<i8> = (0..geom.k as u32)
            .map(|i| nm_isa::Memory::load_i8(&l1, bufs.output + i))
            .collect();
        prop_assert_eq!(got, fc_ref(&geom, &input, &pruned, rq));
        let analytic = fc_channel_mixed(&mut Ctx::Analytic, &job, &cluster).unwrap();
        prop_assert_eq!(stats.cycles(), analytic.cycles());
    }

    #[test]
    fn assignment_respects_target_and_keeps_more_mass_than_uniform(
        rows in 4usize..24,
        blocks16 in 1usize..4,
        target_pct in 10u32..100,
        seed in 1u64..10_000,
    ) {
        let cols = 16 * blocks16;
        let dense = random_i8(rows * cols, seed);
        let target = f64::from(target_pct) / 100.0;
        let patterns = assign_channel_patterns(&dense, rows, cols, target).unwrap();
        let density = channel_density(&patterns);
        // The greedy stops at the first assignment at or below the target
        // unless even all-1:16 cannot reach it.
        prop_assert!(density <= target + 1e-9 || (density - 1.0 / 16.0).abs() < 1e-9);
        // Tightening the target never increases density.
        let tighter = assign_channel_patterns(&dense, rows, cols, target / 2.0).unwrap();
        prop_assert!(channel_density(&tighter) <= density + 1e-9);
    }

    #[test]
    fn sweep_cycles_bounded_by_uniform_endpoints(
        img in 4usize..8,
        k4 in 1usize..4,
        seed in 1u64..10_000,
    ) {
        let geom = ConvGeom::square(16, 4 * k4, img, 3, 1, 1).unwrap();
        let dense = random_i8(geom.weight_elems(), seed);
        let cluster = Cluster::new(8, CostModel::default());
        let points = conv_channel_sweep(
            &geom, &dense, ChannelEngine::Isa, &cluster, &[1.0, 0.5, 1.0 / 16.0]).unwrap();
        // Dense endpoint: all channels dense; sparsest: all 1:16.
        prop_assert_eq!(points[0].histogram[0], geom.k);
        prop_assert_eq!(points[2].histogram[3], geom.k);
        // Intermediate point sits between the endpoints in latency.
        prop_assert!(points[2].cycles <= points[1].cycles);
        prop_assert!(points[1].cycles <= points[0].cycles.max(points[1].cycles));
        // Mass is monotone along the sweep.
        prop_assert!(points[1].mass_kept <= points[0].mass_kept + 1e-12);
        prop_assert!(points[2].mass_kept <= points[1].mass_kept + 1e-12);
    }
}
