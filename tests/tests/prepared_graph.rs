//! Compile-once executor parity: a [`PreparedGraph`] must be a pure
//! amortization of [`run_emulated`] — bit-identical outputs and
//! identical cycle totals across repeated runs, both emulation paths,
//! every thread count, multi-token linears and uneven tile counts.

use nm_compiler::exec::run_emulated;
use nm_compiler::plan::compile;
use nm_compiler::tiling::tile_conv;
use nm_compiler::{ExecTier, KernelChoice, Options, PreparedGraph, Target};
use nm_core::quant::Requant;
use nm_core::sparsity::Nm;
use nm_core::{ConvGeom, FcGeom, Tensor};
use nm_integration::{make_exact_nm, random_i8};
use nm_models::vit::vit_tiny_sparse_for_tests;
use nm_nn::graph::Graph;
use nm_nn::layer::{ConvLayer, LinearLayer};
use nm_nn::rng::XorShift;
use nm_nn::GraphBuilder;

/// An L1 budget under which [`conv_fc_graph`]'s convolution tiles to an
/// odd tile count ≥ 5 (asserted in the parallel test) — so no even
/// thread split divides the work evenly.
const TILING_L1_BUDGET: usize = 8000;

/// A conv+fc graph used by the parity tests.
fn conv_fc_graph(nm: Nm) -> (Graph, Tensor<i8>) {
    let mut cw = random_i8(16 * 3 * 3 * 16, 3);
    make_exact_nm(&mut cw, 16, 3 * 3 * 16, nm);
    let conv = ConvLayer::new(
        ConvGeom::square(16, 16, 14, 3, 1, 1).unwrap(),
        cw,
        Requant::for_dot_len(3 * 3 * 16),
    )
    .unwrap();
    let mut fcw = random_i8(6 * 16, 5);
    make_exact_nm(&mut fcw, 6, 16, nm);
    let fc = LinearLayer::new(FcGeom::new(16, 6).unwrap(), fcw, Requant::for_dot_len(16)).unwrap();
    let mut b = GraphBuilder::new(&[14, 14, 16]);
    let x = b.conv(b.input(), conv).unwrap();
    let x = b.relu(x).unwrap();
    let x = b.global_avg_pool(x).unwrap();
    let out = b.linear(x, fc).unwrap();
    let g = b.finish(out).unwrap();
    let input = Tensor::from_vec(&[14, 14, 16], random_i8(14 * 14 * 16, 7)).unwrap();
    (g, input)
}

/// A ViT-shaped multi-token stack: two sparse linears over 5 tokens
/// with an L1 budget small enough to force several K-tiles.
fn multi_token_graph(nm: Nm) -> (Graph, Tensor<i8>, Options) {
    let (t, c, h, k) = (5, 64, 48, 32);
    let mut w1 = random_i8(h * c, 11);
    make_exact_nm(&mut w1, h, c, nm);
    let l1 = LinearLayer::new(FcGeom::new(c, h).unwrap(), w1, Requant::for_dot_len(c)).unwrap();
    let mut w2 = random_i8(k * h, 13);
    make_exact_nm(&mut w2, k, h, nm);
    let l2 = LinearLayer::new(FcGeom::new(h, k).unwrap(), w2, Requant::for_dot_len(h)).unwrap();
    let mut b = GraphBuilder::new(&[t, c]);
    let x = b.linear(b.input(), l1).unwrap();
    let x = b.gelu(x).unwrap();
    let out = b.linear(x, l2).unwrap();
    let g = b.finish(out).unwrap();
    let input = Tensor::from_vec(&[t, c], random_i8(t * c, 17)).unwrap();
    let mut opts = Options::new(Target::SparseIsa);
    // Small enough to force K-tiling of both linears, large enough for
    // the widest minimum tile.
    opts.l1_budget = 512;
    (g, input, opts)
}

/// The analytic plan's compute-cycle total for the same options.
fn planned_cycles(g: &Graph, opts: &Options) -> u64 {
    compile(g, opts)
        .unwrap()
        .layers
        .iter()
        .filter(|l| l.choice.is_some())
        .map(|l| l.compute_cycles)
        .sum()
}

/// Prepare once, run twice: both runs bit-identical to each other, to a
/// fresh `run_emulated`, and cycle-identical to the analytic plan — on
/// both cycle-accurate tiers (the native tier's output parity lives in
/// `native_parity.rs`).
#[test]
fn prepared_runs_are_reusable_and_match_run_emulated() {
    let (g, input) = conv_fc_graph(Nm::ONE_OF_EIGHT);
    for target in [Target::SparseIsa, Target::SparseSw, Target::DensePulpNn] {
        for tier in [ExecTier::Bulk, ExecTier::Reference] {
            let mut opts = Options::new(target);
            opts.tier = tier;
            let prepared = PreparedGraph::prepare(&g, &opts).unwrap();
            let first = prepared.run(&input).unwrap();
            let second = prepared.run(&input).unwrap();
            assert_eq!(first.output, second.output, "{target:?} {tier:?} reuse");
            assert_eq!(
                first.matmul_compute_cycles, second.matmul_compute_cycles,
                "{target:?} {tier:?} reuse cycles"
            );
            let fresh = run_emulated(&g, &input, &opts).unwrap();
            assert_eq!(first.output, fresh.output, "{target:?} {tier:?}");
            assert_eq!(
                first.matmul_compute_cycles, fresh.matmul_compute_cycles,
                "{target:?} {tier:?} cycles"
            );
            assert_eq!(
                first.matmul_compute_cycles,
                planned_cycles(&g, &opts),
                "{target:?} {tier:?} vs plan"
            );
        }
    }
}

/// Parallel tile execution must be invisible in the results: thread
/// counts that do and don't divide the (odd, asserted below) tile
/// count, including the auto setting, all produce the sequential
/// outputs and cycle totals.
#[test]
fn parallel_tiles_match_sequential_for_uneven_thread_counts() {
    let nm = Nm::ONE_OF_EIGHT;
    let (g, input) = conv_fc_graph(nm);
    // The budget must actually force an uneven multi-tile schedule, or
    // this test exercises nothing.
    let geom = ConvGeom::square(16, 16, 14, 3, 1, 1).unwrap();
    let tiling = tile_conv(&geom, &KernelChoice::ConvSparseIsa(nm), TILING_L1_BUDGET, 8).unwrap();
    let n_tiles = geom.oy().div_ceil(tiling.oy_tile) * geom.k.div_ceil(tiling.k_tile);
    assert!(
        n_tiles >= 5 && n_tiles % 2 == 1,
        "budget no longer yields an odd multi-tile schedule: {n_tiles} tiles"
    );
    for tier in [ExecTier::Bulk, ExecTier::Reference] {
        let mut opts = Options::new(Target::SparseIsa);
        opts.l1_budget = TILING_L1_BUDGET;
        opts.tier = tier;
        opts.host_threads = 1;
        let sequential = PreparedGraph::prepare(&g, &opts)
            .unwrap()
            .run(&input)
            .unwrap();
        assert_eq!(sequential.matmul_compute_cycles, planned_cycles(&g, &opts));
        for threads in [0, 2, 3, 5, 16] {
            opts.host_threads = threads;
            let prepared = PreparedGraph::prepare(&g, &opts).unwrap();
            for rep in 0..2 {
                let run = prepared.run(&input).unwrap();
                assert_eq!(
                    run.output, sequential.output,
                    "threads={threads} {tier:?} rep={rep}"
                );
                assert_eq!(
                    run.matmul_compute_cycles, sequential.matmul_compute_cycles,
                    "threads={threads} {tier:?} rep={rep} cycles"
                );
            }
        }
    }
}

/// Multi-token (ViT-shaped) linears: weights are packed per tile, never
/// per token, yet outputs and cycles must match the reference executor
/// and the analytic plan on both paths — with K-tiling forced and
/// thread counts that don't divide `tiles * token-chunks` evenly.
#[test]
fn multi_token_linear_matches_reference_plan_and_thread_counts() {
    let (g, input, base) = multi_token_graph(Nm::ONE_OF_EIGHT);
    let reference = nm_nn::execute(&g, &input).unwrap();
    let planned = planned_cycles(&g, &base);
    for tier in [ExecTier::Bulk, ExecTier::Reference] {
        let mut opts = base;
        opts.tier = tier;
        for threads in [1, 3, 4, 7] {
            opts.host_threads = threads;
            let prepared = PreparedGraph::prepare(&g, &opts).unwrap();
            let first = prepared.run(&input).unwrap();
            let second = prepared.run(&input).unwrap();
            assert_eq!(first.output, reference, "{tier:?} threads={threads}");
            assert_eq!(first.output, second.output, "{tier:?} threads={threads}");
            assert_eq!(
                first.matmul_compute_cycles, planned,
                "{tier:?} threads={threads} cycles"
            );
            assert_eq!(first.matmul_compute_cycles, second.matmul_compute_cycles);
        }
    }
}

/// The full tiny-ViT network (patch embedding, attention, sparse
/// feed-forwards over 4 tokens) through the compile-once executor: both
/// paths bit-identical to the reference executor and to each other's
/// cycle totals across repeated runs.
#[test]
fn vit_tiny_prepared_parity_across_paths() {
    let g = vit_tiny_sparse_for_tests(Nm::ONE_OF_EIGHT, 4).unwrap();
    let mut rng = XorShift::new(21);
    let input = Tensor::from_vec(&[16, 16, 3], rng.fill_weights(16 * 16 * 3, 50)).unwrap();
    let reference = nm_nn::execute(&g, &input).unwrap();
    let mut cycles = Vec::new();
    for tier in [ExecTier::Bulk, ExecTier::Reference] {
        let mut opts = Options::new(Target::SparseIsa);
        opts.tier = tier;
        let prepared = PreparedGraph::prepare(&g, &opts).unwrap();
        let a = prepared.run(&input).unwrap();
        let b = prepared.run(&input).unwrap();
        assert_eq!(a.output, reference, "{tier:?}");
        assert_eq!(a.output, b.output, "{tier:?} reuse");
        assert_eq!(a.matmul_compute_cycles, b.matmul_compute_cycles);
        cycles.push(a.matmul_compute_cycles);
    }
    assert_eq!(cycles[0], cycles[1], "bulk vs reference cycle totals");
}

/// A zero-token `[0, C]` input is degenerate but must not panic: the
/// old per-token loop returned an empty `[0, K]` tensor and zero
/// cycles, and the chunked executor must too.
#[test]
fn zero_token_linear_returns_empty_output() {
    let (c, k) = (64, 32);
    let mut w = random_i8(k * c, 19);
    make_exact_nm(&mut w, k, c, Nm::ONE_OF_EIGHT);
    let l = LinearLayer::new(FcGeom::new(c, k).unwrap(), w, Requant::for_dot_len(c)).unwrap();
    let mut b = GraphBuilder::new(&[0, c]);
    let out = b.linear(b.input(), l).unwrap();
    let g = b.finish(out).unwrap();
    let input = Tensor::from_vec(&[0, c], vec![]).unwrap();
    for tier in [ExecTier::Bulk, ExecTier::Reference, ExecTier::Native] {
        let mut opts = Options::new(Target::SparseIsa);
        opts.tier = tier;
        let run = PreparedGraph::prepare(&g, &opts)
            .unwrap()
            .run(&input)
            .unwrap();
        assert_eq!(run.output.shape(), &[0, k], "{tier:?}");
        assert_eq!(run.matmul_compute_cycles, 0, "{tier:?}");
    }
}

/// Input-shape validation still happens per run.
#[test]
fn prepared_run_rejects_wrong_input_shape() {
    let (g, _input) = conv_fc_graph(Nm::ONE_OF_EIGHT);
    let opts = Options::new(Target::SparseIsa);
    let prepared = PreparedGraph::prepare(&g, &opts).unwrap();
    let bad = Tensor::from_vec(&[7, 14, 16], random_i8(7 * 14 * 16, 23)).unwrap();
    assert!(prepared.run(&bad).is_err());
}
