//! Native-tier parity: `Ctx::MemNative` runs the *same* kernel bodies
//! as the bulk tier with the simulation accounting compiled out
//! (`ChargePolicy = Uncharged`), so its contract is:
//!
//! * **outputs** — the whole scratchpad must stay bit-identical to the
//!   bulk tier's, for every kernel family and weight format;
//! * **statistics** — all zero. Cycles and instret are only defined on
//!   the cycle-accurate tiers; a native run that reports a non-zero
//!   count means charging code survived the monomorphization.
//!
//! Coverage: fc/conv × dense / sparse-sw / sparse-isa, the per-channel
//! mixed kernels, the related-work baseline formats (CSR / dCSR /
//! blockwise), and `PreparedGraph` end to end on the ViT-tiny and
//! ResNet-18/CIFAR serving models (the graphs behind the bench suite's
//! `net-*-native` rows).

use nm_compiler::{ExecTier, Options, PreparedGraph, Target};
use nm_core::format::{
    BlockwiseMatrix, ChannelNmMatrix, CsrMatrix, DcsrMatrix, NmMatrix, OffsetLayout,
};
use nm_core::quant::Requant;
use nm_core::sparsity::Nm;
use nm_core::{ConvGeom, FcGeom, Tensor};
use nm_isa::CostModel;
use nm_kernels::baseline::blockwise::{fc_blockwise, stage_blockwise_fc};
use nm_kernels::baseline::csr::{fc_csr, stage_csr_fc};
use nm_kernels::baseline::dcsr::{fc_dcsr, stage_dcsr_fc};
use nm_kernels::conv::dense::{conv_dense_1x2, conv_dense_4x2};
use nm_kernels::conv::per_channel::{conv_channel_mixed, ChannelConvJob, ChannelEngine};
use nm_kernels::conv::sparse_isa::conv_sparse_isa;
use nm_kernels::conv::sparse_sw::{conv_sparse_sw, SparseConvJob};
use nm_kernels::conv::ConvJob;
use nm_kernels::fc::dense::fc_dense;
use nm_kernels::fc::per_channel::{fc_channel_mixed, ChannelFcJob};
use nm_kernels::fc::sparse_isa::fc_sparse_isa;
use nm_kernels::fc::sparse_sw::{fc_sparse_sw, SparseFcJob};
use nm_kernels::fc::FcJob;
use nm_kernels::layout::{
    stage_conv_channelwise, stage_conv_dense, stage_conv_sparse, stage_fc_channelwise,
    stage_fc_dense, stage_fc_sparse,
};
use nm_kernels::testdata::{random_data, random_sparse_data};
use nm_kernels::{Ctx, KernelStats};
use nm_models::resnet18_cifar_serve_sparse;
use nm_models::vit::vit_tiny_sparse_for_tests;
use nm_nn::rng::XorShift;
use nm_platform::{Cluster, Scratchpad};

/// Runs `kernel` on the bulk and native paths over clones of the same
/// staged scratchpad; asserts full-memory bit-exactness and that the
/// native run charged nothing.
fn assert_native_parity<F>(l1: &Scratchpad, cores: usize, kernel: F)
where
    F: Fn(&mut Ctx<'_>, &Cluster) -> KernelStats,
{
    let cluster = Cluster::new(cores, CostModel::default());
    let mut l1_bulk = l1.clone();
    let mut l1_native = l1.clone();
    let bulk = kernel(&mut Ctx::MemBulk(&mut l1_bulk), &cluster);
    let native = kernel(&mut Ctx::MemNative(&mut l1_native), &cluster);
    assert_eq!(
        l1_bulk.bytes(),
        l1_native.bytes(),
        "native scratchpad diverged from bulk"
    );
    assert_eq!(native.cycles(), 0, "native run charged cycles");
    assert_eq!(
        native.cluster.total_instret(),
        0,
        "native run charged instructions"
    );
    assert_eq!(native.cluster.total_macs(), 0, "native run counted MACs");
    // The bulk side of the comparison must be a real simulation, or the
    // zero-stat assertions above would trivially pass on a no-op.
    assert!(bulk.cycles() > 0, "bulk reference run simulated nothing");
}

/// FC geometries per pattern: chunk-only, chunk + tail, tail-only tiny.
fn fc_geoms(nm: Nm) -> [FcGeom; 3] {
    let m = nm.m();
    [
        FcGeom::new(8 * m, 6).unwrap(),
        FcGeom::new(5 * m, 4).unwrap(),
        FcGeom::new(m, 2).unwrap(),
    ]
}

/// Conv geometries per pattern: chunk-only, chunk + tail, tail-only.
fn conv_geoms(nm: Nm) -> [ConvGeom; 3] {
    let m = nm.m();
    [
        ConvGeom::square(4 * m, 4, 4, 1, 1, 0).unwrap(),
        ConvGeom::square(m, 3, 5, 3, 1, 1).unwrap(),
        ConvGeom::square(m, 1, 3, 1, 1, 0).unwrap(),
    ]
}

#[test]
fn fc_dense_native_parity() {
    for geom in [
        FcGeom::new(64, 16).unwrap(),
        FcGeom::new(30, 7).unwrap(),
        FcGeom::new(5, 1).unwrap(),
    ] {
        let input = random_data(geom.c, 3);
        let weights = random_data(geom.weight_elems(), 17);
        let mut l1 = Scratchpad::new("l1", 512 * 1024);
        let bufs = stage_fc_dense(&mut l1, &geom, &input, &weights).unwrap();
        let job = FcJob {
            geom,
            requant: Requant::for_dot_len(geom.c),
            bufs,
        };
        assert_native_parity(&l1, 4, |ctx, cluster| fc_dense(ctx, &job, cluster).unwrap());
    }
}

#[test]
fn fc_sparse_native_parity() {
    for nm in Nm::KERNEL_PATTERNS {
        for geom in fc_geoms(nm) {
            let input = random_data(geom.c, 9);
            let dense = random_data(geom.weight_elems(), 23);
            let rq = Requant::for_dot_len((geom.c / nm.m()).max(1));
            for layout in [OffsetLayout::Plain, OffsetLayout::Interleaved] {
                let w = NmMatrix::prune_from_dense(&dense, geom.k, geom.c, nm, layout).unwrap();
                let mut l1 = Scratchpad::new("l1", 512 * 1024);
                let bufs = stage_fc_sparse(&mut l1, &geom, &input, &w).unwrap();
                let job = SparseFcJob {
                    fc: FcJob {
                        geom,
                        requant: rq,
                        bufs,
                    },
                    nm,
                };
                match layout {
                    OffsetLayout::Plain => assert_native_parity(&l1, 4, |ctx, cluster| {
                        fc_sparse_sw(ctx, &job, cluster).unwrap()
                    }),
                    _ => assert_native_parity(&l1, 4, |ctx, cluster| {
                        fc_sparse_isa(ctx, &job, cluster).unwrap()
                    }),
                }
            }
        }
    }
}

#[test]
fn conv_native_parity() {
    // Dense kernels across reuse / tail / strided geometries.
    for geom in [
        ConvGeom::square(8, 4, 6, 3, 1, 1).unwrap(),
        ConvGeom::square(3, 9, 5, 3, 1, 1).unwrap(),
        ConvGeom::square(4, 2, 7, 3, 2, 1).unwrap(),
    ] {
        let input = random_data(geom.input_elems(), 7);
        let weights = random_data(geom.weight_elems(), 13);
        let mut l1 = Scratchpad::new("l1", 512 * 1024);
        let bufs = stage_conv_dense(&mut l1, &geom, &input, &weights, 4).unwrap();
        let job = ConvJob {
            geom,
            requant: Requant::for_dot_len(geom.patch_len()),
            bufs,
        };
        assert_native_parity(&l1, 4, |ctx, cluster| {
            conv_dense_1x2(ctx, &job, cluster).unwrap()
        });
        assert_native_parity(&l1, 4, |ctx, cluster| {
            conv_dense_4x2(ctx, &job, cluster).unwrap()
        });
    }
    // Sparse kernels, both engines, across patterns.
    for nm in Nm::KERNEL_PATTERNS {
        for geom in conv_geoms(nm) {
            let input = random_data(geom.input_elems(), 3);
            let dense = random_data(geom.weight_elems(), 11);
            let rq = Requant::for_dot_len((geom.patch_len() / nm.m()).max(1));
            for layout in [OffsetLayout::Plain, OffsetLayout::Duplicated] {
                let w = NmMatrix::prune_from_dense(&dense, geom.k, geom.patch_len(), nm, layout)
                    .unwrap();
                let mut l1 = Scratchpad::new("l1", 512 * 1024);
                let bufs = stage_conv_sparse(&mut l1, &geom, &input, &w, 4).unwrap();
                let job = SparseConvJob {
                    conv: ConvJob {
                        geom,
                        requant: rq,
                        bufs,
                    },
                    nm,
                };
                match layout {
                    OffsetLayout::Plain => assert_native_parity(&l1, 4, |ctx, cluster| {
                        conv_sparse_sw(ctx, &job, cluster).unwrap()
                    }),
                    _ => assert_native_parity(&l1, 4, |ctx, cluster| {
                        conv_sparse_isa(ctx, &job, cluster).unwrap()
                    }),
                }
            }
        }
    }
}

#[test]
fn baseline_formats_native_parity() {
    let geom = FcGeom::new(96, 7).unwrap();
    let mut cases: Vec<(FcGeom, Vec<i8>)> = [3usize, 8, 17]
        .iter()
        .map(|&keep| (geom, random_sparse_data(geom.weight_elems(), keep, 29)))
        .collect();
    cases.push((FcGeom::new(32, 5).unwrap(), vec![0i8; 32 * 5]));
    for (geom, dense) in &cases {
        let geom = *geom;
        let input = random_data(geom.c, 47);
        let fc = FcJob {
            geom,
            requant: Requant::for_dot_len(12),
            bufs: Default::default(),
        };

        let w = CsrMatrix::from_dense(dense, geom.k, geom.c).unwrap();
        let mut l1 = Scratchpad::new("l1", 512 * 1024);
        let job = stage_csr_fc(&mut l1, &fc, &input, &w).unwrap();
        assert_native_parity(&l1, 4, |ctx, cluster| fc_csr(ctx, &job, cluster).unwrap());

        let w = DcsrMatrix::from_dense(dense, geom.k, geom.c).unwrap();
        let mut l1 = Scratchpad::new("l1", 512 * 1024);
        let job = stage_dcsr_fc(&mut l1, &fc, &input, &w).unwrap();
        assert_native_parity(&l1, 4, |ctx, cluster| fc_dcsr(ctx, &job, cluster).unwrap());

        let w = BlockwiseMatrix::from_dense(dense, geom.k, geom.c, 4).unwrap();
        let mut l1 = Scratchpad::new("l1", 512 * 1024);
        let job = stage_blockwise_fc(&mut l1, &fc, &input, &w).unwrap();
        assert_native_parity(&l1, 4, |ctx, cluster| {
            fc_blockwise(ctx, &job, cluster).unwrap()
        });
    }
}

#[test]
fn per_channel_mixed_native_parity() {
    let ladder = [
        None,
        Some(Nm::ONE_OF_FOUR),
        None,
        Some(Nm::ONE_OF_EIGHT),
        Some(Nm::ONE_OF_SIXTEEN),
    ];

    let geom = FcGeom::new(80, 7).unwrap();
    let patterns: Vec<_> = (0..geom.k).map(|i| ladder[i % ladder.len()]).collect();
    let input = random_data(geom.c, 13);
    let dense = random_data(geom.weight_elems(), 29);
    let w =
        ChannelNmMatrix::prune_from_dense(&dense, geom.k, geom.c, &patterns, OffsetLayout::Plain)
            .unwrap();
    let mut l1 = Scratchpad::new("l1", 256 * 1024);
    let (bufs, row_values, row_offsets) = stage_fc_channelwise(&mut l1, &geom, &input, &w).unwrap();
    let job = ChannelFcJob {
        fc: FcJob {
            geom,
            requant: Requant::for_dot_len(geom.c / 8),
            bufs,
        },
        patterns,
        row_values,
        row_offsets,
    };
    assert_native_parity(&l1, 4, |ctx, cluster| {
        fc_channel_mixed(ctx, &job, cluster).unwrap()
    });

    for engine in [ChannelEngine::Software, ChannelEngine::Isa] {
        let geom = ConvGeom::square(16, 5, 5, 3, 1, 1).unwrap();
        let patterns: Vec<_> = (0..geom.k).map(|i| ladder[i % ladder.len()]).collect();
        let layout = match engine {
            ChannelEngine::Software => OffsetLayout::Plain,
            ChannelEngine::Isa => OffsetLayout::Duplicated,
        };
        let input = random_data(geom.input_elems(), 37);
        let dense = random_data(geom.weight_elems(), 43);
        let w =
            ChannelNmMatrix::prune_from_dense(&dense, geom.k, geom.patch_len(), &patterns, layout)
                .unwrap();
        let mut l1 = Scratchpad::new("l1", 256 * 1024);
        let (bufs, row_values, row_offsets) =
            stage_conv_channelwise(&mut l1, &geom, &input, &w, 4).unwrap();
        let job = ChannelConvJob {
            conv: ConvJob {
                geom,
                requant: Requant::for_dot_len(geom.patch_len() / 8),
                bufs,
            },
            patterns,
            row_values,
            row_offsets,
        };
        assert_native_parity(&l1, 4, |ctx, cluster| {
            conv_channel_mixed(ctx, &job, cluster, engine).unwrap()
        });
    }
}

/// End to end through the compiled executor: a native-tier
/// `PreparedGraph` of the graph behind the `net-vit-tiny-native` bench
/// row must reproduce the bulk tier's output bits exactly and report
/// zero cycles, for every target and a couple of thread counts.
#[test]
fn vit_tiny_prepared_native_parity() {
    let g = vit_tiny_sparse_for_tests(Nm::ONE_OF_EIGHT, 4).unwrap();
    let mut rng = XorShift::new(21);
    let input = Tensor::from_vec(&[16, 16, 3], rng.fill_weights(16 * 16 * 3, 50)).unwrap();
    for target in [Target::SparseIsa, Target::SparseSw, Target::DensePulpNn] {
        let mut opts = Options::new(target);
        let bulk = PreparedGraph::prepare(&g, &opts)
            .unwrap()
            .run(&input)
            .unwrap();
        opts.tier = ExecTier::Native;
        for threads in [1, 4] {
            opts.host_threads = threads;
            let native = PreparedGraph::prepare(&g, &opts)
                .unwrap()
                .run(&input)
                .unwrap();
            assert_eq!(
                native.output, bulk.output,
                "{target:?} threads={threads} native output diverged"
            );
            assert_eq!(
                native.matmul_compute_cycles, 0,
                "{target:?} threads={threads} native cycles must be zero"
            );
        }
    }
}

/// The ResNet-18/CIFAR serving model (the graph behind
/// `net-resnet18-cifar-native`) end to end: native output bits equal
/// bulk's, cycles zero.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "runs ResNet-18 inference; runs in release CI (cargo test --release)"
)]
fn resnet18_prepared_native_parity() {
    let g = resnet18_cifar_serve_sparse(10, Nm::ONE_OF_EIGHT, 1).unwrap();
    let mut rng = XorShift::new(5);
    let elems: usize = g.input_shape().iter().product();
    let input = Tensor::from_vec(g.input_shape(), rng.fill_weights(elems, 50)).unwrap();
    let mut opts = Options::new(Target::SparseIsa);
    let bulk = PreparedGraph::prepare(&g, &opts)
        .unwrap()
        .run(&input)
        .unwrap();
    opts.tier = ExecTier::Native;
    let native = PreparedGraph::prepare(&g, &opts)
        .unwrap()
        .run(&input)
        .unwrap();
    assert_eq!(native.output, bulk.output, "native output diverged");
    assert_eq!(native.matmul_compute_cycles, 0);
}
