//! Cross-checks between the executable Fig. 4/5 instruction streams
//! (`nm_isa::programs`) and the charged-operation kernels
//! (`nm-kernels`): the *same* inner-loop work must retire the same
//! instruction counts and produce the same arithmetic, whichever way it
//! is expressed.

use nm_core::format::{NmMatrix, OffsetLayout};
use nm_core::sparsity::Nm;
use nm_integration::{make_exact_nm, random_i8};
use nm_isa::asm::{retired, Instr, Interp};
use nm_isa::programs::{self, reg};
use nm_isa::{Core, CostModel, DecimateMode, FlatMem, Memory};
use proptest::prelude::*;

fn mode_of(nm: Nm) -> DecimateMode {
    match nm.m() {
        4 => DecimateMode::OneOfFour,
        8 => DecimateMode::OneOfEight,
        _ => DecimateMode::OneOfSixteen,
    }
}

fn nm_strategy() -> impl Strategy<Value = Nm> {
    prop_oneof![
        Just(Nm::ONE_OF_FOUR),
        Just(Nm::ONE_OF_EIGHT),
        Just(Nm::ONE_OF_SIXTEEN)
    ]
}

/// Stages one N:M row (values + plain/duplicated offsets) plus two
/// im2col buffers, then runs both the SW and ISA conv programs over it
/// and returns their accumulators.
fn run_conv_programs(nm: Nm, chunks: usize, seed: u64) -> ((i32, i32), (i32, i32), Vec<i32>) {
    let m = nm.m();
    let nz = 4 * chunks;
    let cols = nz * m;
    let mut dense = random_i8(cols, seed);
    make_exact_nm(&mut dense, 1, cols, nm);
    let buf0 = random_i8(cols, seed ^ 0xAA);
    let buf1 = random_i8(cols, seed ^ 0xBB);

    // Expected: decimated dot products straight from the dense row.
    let expect: Vec<i32> = [&buf0, &buf1]
        .iter()
        .map(|buf| {
            dense
                .iter()
                .zip(buf.iter())
                .map(|(&w, &a)| i32::from(w) * i32::from(a))
                .sum()
        })
        .collect();

    const W: u32 = 0x000;
    const O: u32 = 0x400;
    const B0: u32 = 0x800;
    let b1 = B0 + cols as u32;
    let run = |layout: OffsetLayout, prog: Vec<Instr>| {
        let packed = NmMatrix::from_dense(&dense, 1, cols, nm, layout).unwrap();
        let mut mem = FlatMem::new(0x800 + 2 * cols);
        for (i, &v) in packed.values().iter().enumerate() {
            mem.store_i8(W + i as u32, v);
        }
        mem.write_bytes(O, packed.offsets_bytes());
        for (i, &v) in buf0.iter().enumerate() {
            mem.store_i8(B0 + i as u32, v);
        }
        for (i, &v) in buf1.iter().enumerate() {
            mem.store_i8(b1 + i as u32, v);
        }
        let mut core = Core::new(CostModel::default());
        let mut interp = Interp::new();
        interp.set(reg::W_PTR, W);
        interp.set(reg::O_PTR, O);
        interp.set(reg::BUF0, B0);
        interp.set(reg::BUF1, b1);
        interp.run(&prog, &mut core, &mut mem);
        (interp.get(reg::ACC0) as i32, interp.get(reg::ACC1) as i32)
    };
    let sw = run(
        OffsetLayout::Plain,
        programs::conv_sparse_sw(mode_of(nm), chunks as u32),
    );
    let isa = run(
        OffsetLayout::Duplicated,
        programs::conv_sparse_isa(mode_of(nm), chunks as u32),
    );
    (sw, isa, expect)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn conv_programs_compute_the_packed_rows_dot_product(
        nm in nm_strategy(),
        chunk_pairs in 1usize..5,
        seed in 1u64..10_000,
    ) {
        let chunks = 2 * chunk_pairs; // even, for the 1:4 ISA pairing
        let ((sw0, sw1), (isa0, isa1), expect) = run_conv_programs(nm, chunks, seed);
        prop_assert_eq!(sw0, expect[0], "{} sw patch0", nm);
        prop_assert_eq!(sw1, expect[1], "{} sw patch1", nm);
        prop_assert_eq!(isa0, expect[0], "{} isa patch0", nm);
        prop_assert_eq!(isa1, expect[1], "{} isa patch1", nm);
    }

    #[test]
    fn program_budgets_scale_linearly_with_chunks(
        nm in nm_strategy(),
        chunk_pairs in 1usize..8,
    ) {
        let chunks = (2 * chunk_pairs) as u32;
        let mode = mode_of(nm);
        let per_iter_sw = if nm.m() == 4 { 23 } else { 22 };
        // SW program: 1 lp.setup + chunks * body.
        prop_assert_eq!(
            retired(&programs::conv_sparse_sw(mode, chunks)),
            1 + u64::from(chunks) * per_iter_sw
        );
        // ISA program: clear + setup + 12/chunk for every format.
        prop_assert_eq!(
            retired(&programs::conv_sparse_isa(mode, chunks)),
            2 + u64::from(chunks) * 12
        );
        // FC programs: 16 and 13 per chunk.
        prop_assert_eq!(
            retired(&programs::fc_sparse_sw(mode, chunks)),
            1 + u64::from(chunks) * 16
        );
        prop_assert_eq!(
            retired(&programs::fc_sparse_isa(mode, 15, chunks)),
            2 + u64::from(chunks) * 13
        );
        prop_assert_eq!(retired(&programs::conv_dense_1x2(chunks)), 1 + u64::from(chunks) * 5);
        prop_assert_eq!(retired(&programs::fc_dense_1x2(chunks)), 1 + u64::from(chunks) * 5);
    }

    #[test]
    fn interp_instret_equals_static_retired_count(
        nm in nm_strategy(),
        chunk_pairs in 1usize..4,
        seed in 1u64..10_000,
    ) {
        // The interpreter must charge exactly the statically countable
        // instructions: no hidden work, no skipped work.
        let chunks = 2 * chunk_pairs;
        let m = nm.m();
        let cols = 4 * chunks * m;
        let mut dense = random_i8(cols, seed);
        make_exact_nm(&mut dense, 1, cols, nm);
        let packed = NmMatrix::from_dense(&dense, 1, cols, nm, OffsetLayout::Plain).unwrap();
        let mut mem = FlatMem::new(0x800 + 2 * cols);
        for (i, &v) in packed.values().iter().enumerate() {
            mem.store_i8(i as u32, v);
        }
        mem.write_bytes(0x400, packed.offsets_bytes());
        let prog = programs::conv_sparse_sw(mode_of(nm), chunks as u32);
        let mut core = Core::new(CostModel::default());
        let mut interp = Interp::new();
        interp.set(reg::W_PTR, 0);
        interp.set(reg::O_PTR, 0x400);
        interp.set(reg::BUF0, 0x800);
        interp.set(reg::BUF1, 0x800 + cols as u32);
        interp.run(&prog, &mut core, &mut mem);
        prop_assert_eq!(core.instret(), retired(&prog));
        // 8 MACs per chunk over two patches.
        prop_assert_eq!(core.macs(), 8 * chunks as u64);
    }
}

/// The ISA program and the SW program disagree on *instructions* but
/// must agree on *work*: same MAC count, ISA strictly fewer retired
/// instructions — the entire point of the extension (Sec. 4.1.3).
#[test]
fn isa_program_is_strictly_shorter_at_equal_work() {
    for nm in Nm::KERNEL_PATTERNS {
        let chunks = 6u32;
        let sw = retired(&programs::conv_sparse_sw(mode_of(nm), chunks));
        let isa = retired(&programs::conv_sparse_isa(mode_of(nm), chunks));
        assert!(isa < sw, "{nm}: isa {isa} vs sw {sw}");
        // Ratio matches the paper's 22-or-23 -> 12 reduction.
        let ratio = sw as f64 / isa as f64;
        assert!(ratio > 1.7 && ratio < 2.0, "{nm}: ratio {ratio}");
    }
}

/// The dense program's listing contains exactly the Fig. 4 instruction
/// kinds: loads and SIMD dot products, nothing else inside the loop.
#[test]
fn dense_program_body_is_loads_and_sdotp_only() {
    let prog = programs::conv_dense_1x2(3);
    let Instr::HwLoop { body, .. } = &prog[0] else {
        panic!("dense program is one hardware loop")
    };
    for i in body {
        assert!(
            matches!(i, Instr::Lw { .. } | Instr::Sdotp { .. }),
            "unexpected instruction {i}"
        );
    }
}
