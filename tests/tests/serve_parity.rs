//! Differential property tests for the batched inference service: for
//! any request interleaving, worker count, batch limit and execution
//! tier, every request's output through `nm_serve::Service` must be
//! bit-identical to a sequential `PreparedGraph::run` loop over the
//! same requests — and on the cycle-accurate tiers the simulated cycle
//! totals too. This is the determinism contract documented at the top
//! of `nm-serve`.

use nm_compiler::{BatchPlan, ExecTier, Options, PreparedGraph, Target};
use nm_core::quant::Requant;
use nm_core::sparsity::Nm;
use nm_core::{FcGeom, Tensor};
use nm_integration::{make_exact_nm, random_i8, sparse_conv_fc_graph};
use nm_models::{mlp_serve_sparse, resnet18_cifar_serve_sparse};
use nm_nn::graph::Graph;
use nm_nn::layer::LinearLayer;
use nm_nn::rng::XorShift;
use nm_nn::GraphBuilder;
use nm_serve::{Service, ServiceConfig};
use std::sync::Arc;

/// A small conv+fc graph — not a Linear chain, so its batch plan is the
/// conv-batch-major walk (conv tiles staged once per batch).
fn conv_fc_graph(nm: Nm) -> Arc<Graph> {
    Arc::new(sparse_conv_fc_graph(10, 6, nm, 3))
}

/// A token-coalescible sparse MLP — the stacked multi-token plan's
/// subject.
fn mlp_graph(nm: Nm) -> Arc<Graph> {
    Arc::new(mlp_serve_sparse(&[64, 48, 32], nm, 5).unwrap())
}

fn random_inputs(shape: &[usize], n: usize, seed: u64) -> Vec<Tensor<i8>> {
    let elems: usize = shape.iter().product();
    let mut rng = XorShift::new(seed);
    (0..n)
        .map(|_| Tensor::from_vec(shape, rng.fill_weights(elems, 50)).unwrap())
        .collect()
}

/// A deterministic pseudo-random interleaving of `counts.len()` request
/// streams: returns a sequence of model indices, each appearing exactly
/// `counts[i]` times, shuffled by `seed`.
fn interleaving(counts: &[usize], seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = counts
        .iter()
        .enumerate()
        .flat_map(|(m, &n)| std::iter::repeat_n(m, n))
        .collect();
    let mut rng = XorShift::new(seed);
    // Fisher–Yates with the test RNG.
    for i in (1..order.len()).rev() {
        let j = (rng.next_u64() % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    order
}

/// The full differential sweep: two models (one coalescible, one not)
/// served concurrently under every worker count / batch limit /
/// cycle-accurate tier combination, with a different pseudo-random
/// interleaving per configuration, compared request-by-request against
/// sequential `PreparedGraph::run` baselines.
#[test]
fn service_matches_sequential_runs_for_any_configuration() {
    let nm = Nm::ONE_OF_EIGHT;
    let graphs = [mlp_graph(nm), conv_fc_graph(nm)];
    let per_model = 8;
    for tier in [ExecTier::Bulk, ExecTier::Reference] {
        let mut opts = Options::new(Target::SparseIsa);
        opts.tier = tier;
        // Sequential ground truth, one prepared model per graph.
        let inputs: Vec<Vec<Tensor<i8>>> = graphs
            .iter()
            .enumerate()
            .map(|(m, g)| random_inputs(g.input_shape(), per_model, 100 + m as u64))
            .collect();
        let expected: Vec<Vec<_>> = graphs
            .iter()
            .zip(&inputs)
            .map(|(g, xs)| {
                let prepared = PreparedGraph::prepare(g, &opts).unwrap();
                xs.iter().map(|x| prepared.run(x).unwrap()).collect()
            })
            .collect();

        for workers in [1, 2, 3, 8] {
            for max_batch in [1, 4, 16] {
                let service = Service::start(ServiceConfig {
                    queue_capacity: 2 * graphs.len() * per_model,
                    max_batch,
                    workers,
                    tier,
                    ..ServiceConfig::default()
                });
                let ids: Vec<_> = graphs
                    .iter()
                    .enumerate()
                    .map(|(m, g)| service.register(&format!("model-{m}"), g, &opts).unwrap())
                    .collect();
                // A configuration-specific interleaving of the two
                // request streams.
                let seed = 1000
                    + workers as u64 * 100
                    + max_batch as u64 * 10
                    + u64::from(tier == ExecTier::Bulk);
                let mut next = vec![0usize; graphs.len()];
                let mut tickets = Vec::new();
                for m in interleaving(&[per_model; 2], seed) {
                    let x = inputs[m][next[m]].clone();
                    tickets.push((m, next[m], service.submit(ids[m], x).unwrap()));
                    next[m] += 1;
                }
                for (m, i, ticket) in tickets {
                    let got = ticket.wait().unwrap();
                    let want = &expected[m][i];
                    assert_eq!(
                        got.output, want.output,
                        "output diverged: model {m} req {i} workers={workers} \
                         max_batch={max_batch} {tier:?}"
                    );
                    assert_eq!(
                        got.sim_cycles,
                        Some(want.matmul_compute_cycles),
                        "cycles diverged: model {m} req {i} workers={workers} \
                         max_batch={max_batch} {tier:?}"
                    );
                }
                let stats = service.shutdown();
                assert_eq!(stats.completed, (graphs.len() * per_model) as u64);
                assert_eq!(stats.shed, 0, "queue was sized to admit everything");
            }
        }
    }
}

/// The determinism contract across priority classes: priority-band /
/// earliest-deadline-first dispatch reorders *when* a request runs,
/// never *what* it computes. A wave mixing all three [`Priority`]
/// classes with assorted (far-future or absent) deadlines — enqueued
/// against a paused pool so the EDF sort sees the whole wave at once —
/// must complete every request with outputs and cycle totals
/// bit-identical to the sequential baseline, across worker counts and
/// batch limits. The queue admits the entire wave, so no shed class is
/// exercised: scheduling policy alone is under test.
#[test]
fn priority_mixes_preserve_bit_and_cycle_determinism() {
    use nm_serve::Priority;
    use std::time::{Duration, Instant};

    let nm = Nm::ONE_OF_EIGHT;
    let graphs = [mlp_graph(nm), conv_fc_graph(nm)];
    let per_model = 9;
    let mut opts = Options::new(Target::SparseIsa);
    opts.tier = ExecTier::Bulk;
    let inputs: Vec<Vec<Tensor<i8>>> = graphs
        .iter()
        .enumerate()
        .map(|(m, g)| random_inputs(g.input_shape(), per_model, 500 + m as u64))
        .collect();
    let expected: Vec<Vec<_>> = graphs
        .iter()
        .zip(&inputs)
        .map(|(g, xs)| {
            let prepared = PreparedGraph::prepare(g, &opts).unwrap();
            xs.iter().map(|x| prepared.run(x).unwrap()).collect()
        })
        .collect();

    for workers in [1, 2] {
        for max_batch in [1, 4] {
            let service = Service::start(ServiceConfig {
                queue_capacity: 2 * graphs.len() * per_model,
                max_batch,
                workers,
                tier: ExecTier::Bulk,
                ..ServiceConfig::default()
            });
            let ids: Vec<_> = graphs
                .iter()
                .enumerate()
                .map(|(m, g)| service.register(&format!("model-{m}"), g, &opts).unwrap())
                .collect();
            // Pause so the whole mixed wave is queued before dispatch:
            // the priority/deadline sort then reorders maximally.
            service.pause();
            let far = Instant::now() + Duration::from_secs(3600);
            let farther = Instant::now() + Duration::from_secs(7200);
            let mut next = vec![0usize; graphs.len()];
            let mut tickets = Vec::new();
            for m in interleaving(
                &[per_model; 2],
                4242 + workers as u64 * 10 + max_batch as u64,
            ) {
                let i = next[m];
                next[m] += 1;
                let priority = Priority::ALL[(m + i) % Priority::ALL.len()];
                // Deadlines are generous or absent: ordering hints, not
                // shed triggers.
                let deadline = match i % 3 {
                    0 => Some(far),
                    1 => Some(farther),
                    _ => None,
                };
                let x = inputs[m][i].clone();
                let ticket = service
                    .submit_with_deadline(ids[m], x, deadline, priority)
                    .unwrap();
                tickets.push((m, i, ticket));
            }
            service.resume();
            for (m, i, ticket) in tickets {
                let got = ticket.wait().unwrap();
                let want = &expected[m][i];
                assert_eq!(
                    got.output, want.output,
                    "output diverged: model {m} req {i} workers={workers} \
                     max_batch={max_batch}"
                );
                assert_eq!(
                    got.sim_cycles,
                    Some(want.matmul_compute_cycles),
                    "cycles diverged: model {m} req {i} workers={workers} \
                     max_batch={max_batch}"
                );
            }
            let stats = service.shutdown();
            assert_eq!(stats.completed, (graphs.len() * per_model) as u64);
            assert_eq!(stats.shed, 0, "the queue admits the whole wave");
            assert_eq!(stats.shed_preempted, 0, "nothing was displaced");
            assert_eq!(stats.shed_expired, 0, "deadlines were generous");
        }
    }
}

/// The coalesced multi-token path with K-tiling forced (small L1
/// budget): batched execution through the service must still match the
/// sequential loop exactly — this is the configuration where weights
/// genuinely stage once per batch across several K-tiles.
#[test]
fn coalesced_k_tiled_mlp_matches_sequential() {
    let nm = Nm::ONE_OF_EIGHT;
    let graph = mlp_graph(nm);
    for tier in [ExecTier::Bulk, ExecTier::Reference] {
        let mut opts = Options::new(Target::SparseIsa);
        opts.tier = tier;
        opts.l1_budget = 512; // forces K-tiling of every layer
        let prepared = PreparedGraph::prepare(&graph, &opts).unwrap();
        assert_eq!(prepared.batch_plan(), BatchPlan::TokenCoalesced);
        let xs = random_inputs(graph.input_shape(), 16, 33);
        let expected: Vec<_> = xs.iter().map(|x| prepared.run(x).unwrap()).collect();

        let service = Service::start(ServiceConfig {
            queue_capacity: 32,
            max_batch: 16,
            workers: 1,
            tier,
            ..ServiceConfig::default()
        });
        let model = service.register("mlp-ktiled", &graph, &opts).unwrap();
        // Deterministic batch shaping: the paused queue accumulates the
        // whole wave, so resuming hands the worker exactly one
        // 16-request batch — the configuration where tile weights stage
        // once for all sixteen requests.
        service.pause();
        let tickets: Vec<_> = xs
            .iter()
            .map(|x| service.submit(model, x.clone()).unwrap())
            .collect();
        service.resume();
        for (ticket, want) in tickets.into_iter().zip(&expected) {
            let got = ticket.wait().unwrap();
            assert_eq!(got.output, want.output, "{tier:?}");
            assert_eq!(got.sim_cycles, Some(want.matmul_compute_cycles), "{tier:?}");
            assert_eq!(got.batch_size, 16, "{tier:?}: one full coalesced batch");
        }
        service.shutdown();
    }
}

/// The native tier through the service: outputs stay bit-identical to
/// the bulk-tier sequential baseline for both batch plans, but no cycle
/// assertions are possible — `sim_cycles` is `None` on every response
/// because the native tier compiles simulation charging out.
#[test]
fn native_tier_service_matches_bulk_outputs() {
    let nm = Nm::ONE_OF_EIGHT;
    for graph in [mlp_graph(nm), conv_fc_graph(nm)] {
        let opts = Options::new(Target::SparseIsa);
        assert_eq!(opts.tier, ExecTier::Bulk, "bulk tier is the default");
        let prepared = PreparedGraph::prepare(&graph, &opts).unwrap();
        let xs = random_inputs(graph.input_shape(), 8, 91);
        let expected: Vec<_> = xs.iter().map(|x| prepared.run(x).unwrap()).collect();

        let service = Service::start(ServiceConfig {
            queue_capacity: 16,
            max_batch: 4,
            workers: 2,
            tier: ExecTier::Native,
            ..ServiceConfig::default()
        });
        let model = service.register("native-model", &graph, &opts).unwrap();
        let tickets: Vec<_> = xs
            .iter()
            .map(|x| service.submit(model, x.clone()).unwrap())
            .collect();
        for (i, (ticket, want)) in tickets.into_iter().zip(&expected).enumerate() {
            let got = ticket.wait().unwrap();
            assert_eq!(got.output, want.output, "native output diverged: req {i}");
            assert_eq!(
                got.sim_cycles, None,
                "native tier must not report simulated cycles: req {i}"
            );
        }
        service.shutdown();
    }
}

/// `run_batch` itself (no service): the batched entry point must equal
/// per-request `run` calls under both work-sharing plans, and reject
/// shape mismatches atomically — naming the failing request.
#[test]
fn run_batch_matches_individual_runs() {
    let nm = Nm::ONE_OF_EIGHT;
    for (graph, plan) in [
        (mlp_graph(nm), BatchPlan::TokenCoalesced),
        (conv_fc_graph(nm), BatchPlan::ConvBatchMajor),
    ] {
        let opts = Options::new(Target::SparseIsa);
        let prepared = PreparedGraph::prepare(&graph, &opts).unwrap();
        assert_eq!(prepared.batch_plan(), plan);
        let label = plan.label();
        let xs = random_inputs(graph.input_shape(), 5, 77);
        let refs: Vec<&Tensor<i8>> = xs.iter().collect();
        let batched = prepared.run_batch(&refs).unwrap();
        assert_eq!(batched.len(), xs.len());
        for (x, b) in xs.iter().zip(&batched) {
            let solo = prepared.run(x).unwrap();
            assert_eq!(b.output, solo.output, "plan={label}");
            assert_eq!(
                b.matmul_compute_cycles, solo.matmul_compute_cycles,
                "plan={label}"
            );
        }
        // A wrong-shaped rider poisons the whole batch up front, and
        // the error names which request it was.
        let bad = Tensor::from_vec(&[3], vec![0i8; 3]).unwrap();
        let mut with_bad = refs.clone();
        with_bad.push(&bad);
        let err = prepared.run_batch(&with_bad).unwrap_err();
        assert!(
            err.to_string().contains("batch request 5"),
            "error must name the failing request: {err}"
        );
    }
}

/// Coalescing requires a *chain*, not just whitelisted ops: a graph of
/// pure Linear nodes that is a DAG (here: two linears both reading the
/// input node, one of them dead) must take the per-request fallback —
/// the stacked multi-token sweep threads values sequentially and would
/// silently compute the wrong function on such a graph.
#[test]
fn linear_dag_is_not_coalesced_but_still_batches_correctly() {
    let nm = Nm::ONE_OF_EIGHT;
    let (c, k) = (64, 32);
    let mut w1 = random_i8(k * c, 41);
    make_exact_nm(&mut w1, k, c, nm);
    let l1 = LinearLayer::new(FcGeom::new(c, k).unwrap(), w1, Requant::for_dot_len(c)).unwrap();
    let mut w2 = random_i8(k * c, 43);
    make_exact_nm(&mut w2, k, c, nm);
    let l2 = LinearLayer::new(FcGeom::new(c, k).unwrap(), w2, Requant::for_dot_len(c)).unwrap();
    let mut b = GraphBuilder::new(&[c]);
    let _dead = b.linear(b.input(), l1).unwrap();
    let out = b.linear(b.input(), l2).unwrap();
    let graph = b.finish(out).unwrap();
    let opts = Options::new(Target::SparseIsa);
    let prepared = PreparedGraph::prepare(&graph, &opts).unwrap();
    assert!(
        matches!(prepared.batch_plan(), BatchPlan::Sequential { .. }),
        "a non-chain Linear DAG must plan sequential execution, got {:?}",
        prepared.batch_plan()
    );
    let xs = random_inputs(&[c], 4, 47);
    let refs: Vec<&Tensor<i8>> = xs.iter().collect();
    for (x, run) in xs.iter().zip(prepared.run_batch(&refs).unwrap()) {
        let solo = prepared.run(x).unwrap();
        assert_eq!(run.output, solo.output);
        assert_eq!(run.matmul_compute_cycles, solo.matmul_compute_cycles);
    }
}

// The conv-batch-major plan at model scale: the pruned ResNet-18
// serving model (16 sparse convs, residual Adds, pools, a final FC)
// served across worker counts × batch limits × both cycle-accurate
// tiers, every request's output and cycle total compared bit-for-bit
// against the sequential baseline. This is the configuration where conv
// tile weights genuinely stage once per batch — the tentpole
// determinism contract end to end.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "serves ResNet-18 many times; runs in release CI (cargo test --release)"
)]
fn resnet_conv_batch_major_matches_sequential() {
    let nm = Nm::ONE_OF_EIGHT;
    let graph = Arc::new(resnet18_cifar_serve_sparse(10, nm, 1).unwrap());
    let per_wave = 16;
    for tier in [ExecTier::Bulk, ExecTier::Reference] {
        let mut opts = Options::new(Target::SparseIsa);
        opts.tier = tier;
        let prepared = PreparedGraph::prepare(&graph, &opts).unwrap();
        assert_eq!(prepared.batch_plan(), BatchPlan::ConvBatchMajor);
        let seed = 200 + u64::from(tier == ExecTier::Bulk);
        let xs = random_inputs(graph.input_shape(), per_wave, seed);
        let expected: Vec<_> = xs.iter().map(|x| prepared.run(x).unwrap()).collect();

        for workers in [1, 2, 8] {
            for max_batch in [1, 4, 16] {
                let service = Service::start(ServiceConfig {
                    queue_capacity: 2 * per_wave,
                    max_batch,
                    workers,
                    tier,
                    ..ServiceConfig::default()
                });
                let model = service.register("resnet18", &graph, &opts).unwrap();
                // Queue the whole wave before the workers see any of it
                // so batch limits, not arrival timing, shape the batches.
                service.pause();
                let tickets: Vec<_> = xs
                    .iter()
                    .map(|x| service.submit(model, x.clone()).unwrap())
                    .collect();
                service.resume();
                for (ticket, want) in tickets.into_iter().zip(&expected) {
                    let got = ticket.wait().unwrap();
                    assert_eq!(
                        got.output, want.output,
                        "output diverged: workers={workers} max_batch={max_batch} {tier:?}"
                    );
                    assert_eq!(
                        got.sim_cycles,
                        Some(want.matmul_compute_cycles),
                        "cycles diverged: workers={workers} max_batch={max_batch} {tier:?}"
                    );
                    match got.mode {
                        BatchPlan::ConvBatchMajor => assert!(got.batch_size > 1),
                        BatchPlan::Sequential { .. } => assert!(
                            got.batch_size <= 1 || max_batch == 1,
                            "sequential mode with a shared batch: workers={workers} \
                             max_batch={max_batch} batch_size={}",
                            got.batch_size
                        ),
                        BatchPlan::TokenCoalesced => {
                            panic!("a conv graph cannot token-coalesce")
                        }
                    }
                }
                let stats = service.shutdown();
                assert_eq!(stats.completed, per_wave as u64);
                assert_eq!(stats.shed, 0, "queue was sized to admit everything");
                if workers == 1 && max_batch == 16 {
                    assert_eq!(
                        stats.max_coalesced, 16,
                        "one worker over a paused full wave coalesces it whole ({tier:?})"
                    );
                }
            }
        }
    }
}

/// Shared prepared models: `prepare_shared` hands out a `'static`
/// artifact that multiple threads can run concurrently with sequential
/// results (the primitive under the service's worker pool).
#[test]
fn shared_prepared_graph_is_concurrently_reusable() {
    let nm = Nm::ONE_OF_EIGHT;
    let graph = mlp_graph(nm);
    let opts = Options::new(Target::SparseIsa);
    let prepared = Arc::new(PreparedGraph::prepare_shared(Arc::clone(&graph), &opts).unwrap());
    let xs = random_inputs(graph.input_shape(), 6, 55);
    let expected: Vec<_> = xs.iter().map(|x| prepared.run(x).unwrap()).collect();
    std::thread::scope(|scope| {
        for _ in 0..3 {
            let (prepared, xs, expected) = (Arc::clone(&prepared), &xs, &expected);
            scope.spawn(move || {
                for (x, want) in xs.iter().zip(expected) {
                    let got = prepared.run(x).unwrap();
                    assert_eq!(got.output, want.output);
                    assert_eq!(got.matmul_compute_cycles, want.matmul_compute_cycles);
                }
            });
        }
    });
}
