//! Metrics-export suite for the serving layer's observability surface
//! (`nm_serve::metrics`): the Prometheus text export must be a *lossless
//! window* onto the service's ledgers, not a best-effort approximation.
//! What must hold:
//!
//! * parsing `Service::metrics_text()` back (`parse_text`) reproduces
//!   the `ServiceStats`/`CacheStats` ledgers **exactly**, and the
//!   five-term reconciliation (`submitted == completed + failed +
//!   shed_expired + shed_canceled + shed_preempted`) holds on the
//!   exported numbers — globally and per model;
//! * every terminal outcome class (completion, deadline expiry,
//!   displacement, cancellation) lands in its per-model series;
//! * the queue-depth gauge is a consistent sample taken inside the
//!   queue mutex, never a racy re-count — depth and high-water agree;
//! * `Ticket::wait_timeout(Duration::MAX)` means "wait forever"
//!   end-to-end (the satellite regression: the old deadline arithmetic
//!   panicked on overflow);
//! * `InferenceResult::latency` is monotone-consistent in fulfill order
//!   on *both* fulfill paths — the batch path and the re-run-after-panic
//!   path — and covers the queued wait;
//! * the export text is byte-deterministic for a pinned request set,
//!   outside the wall-clock histogram family.
//!
//! Runs in CI's release profile as a named step (`serve_metrics`);
//! everything here is sized to also pass in debug on one core.

use nm_compiler::{ExecTier, Options, Target};
use nm_core::sparsity::Nm;
use nm_core::Tensor;
use nm_models::mlp_serve_sparse;
use nm_nn::graph::Graph;
use nm_nn::rng::XorShift;
use nm_serve::metrics::parse_text;
use nm_serve::{FaultAction, FaultPlan, FaultPoint, Priority, ServeError, Service, ServiceConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

const HANG_BOUND: Duration = Duration::from_secs(60);

fn mlp(dims: &[usize], seed: u64) -> Arc<Graph> {
    Arc::new(mlp_serve_sparse(dims, Nm::ONE_OF_EIGHT, seed).unwrap())
}

fn input_for(shape: &[usize], seed: u64) -> Tensor<i8> {
    let elems: usize = shape.iter().product();
    Tensor::from_vec(shape, XorShift::new(seed).fill_weights(elems, 50)).unwrap()
}

/// The tentpole gate: a workload that exercises completion, deadline
/// expiry and displacement at once, then asserts (a) the export parses,
/// (b) re-rendering the parse reproduces the text byte for byte,
/// (c) `check_quiesced` finds the exported numbers equal to the
/// ledgers, and (d) the expected per-class/per-model counts.
#[test]
fn mixed_outcome_export_round_trips_exactly() {
    let graph = mlp(&[64, 48, 32], 5);
    let opts = Options::new(Target::SparseIsa);
    let service = Service::start(ServiceConfig {
        queue_capacity: 8,
        max_batch: 4,
        workers: 1,
        ..ServiceConfig::default()
    });
    let model = service.register("mixed", &graph, &opts).unwrap();
    service.pause();

    // Four batch-class completions…
    let completions: Vec<_> = (0..4)
        .map(|i| {
            service
                .submit_with_deadline(model, input_for(&[64], 100 + i), None, Priority::Batch)
                .unwrap()
        })
        .collect();
    // …one request born past its deadline (sheds at dispatch)…
    let expired = service
        .submit_with_deadline(
            model,
            input_for(&[64], 200),
            Some(Instant::now()),
            Priority::Batch,
        )
        .unwrap();
    // …three best-effort slots that three Interactive submits displace.
    let victims: Vec<_> = (0..3)
        .map(|i| {
            service
                .submit_with_deadline(model, input_for(&[64], 300 + i), None, Priority::BestEffort)
                .unwrap()
        })
        .collect();
    assert_eq!(service.queue_depth(), 8, "the queue is exactly full");
    let interactive: Vec<_> = (0..3)
        .map(|i| {
            service
                .submit_with_deadline(
                    model,
                    input_for(&[64], 400 + i),
                    None,
                    Priority::Interactive,
                )
                .unwrap()
        })
        .collect();

    service.resume();
    for t in completions {
        t.wait_timeout(HANG_BOUND).expect("batch-class completes");
    }
    assert!(matches!(
        expired.wait_timeout(HANG_BOUND),
        Err(ServeError::DeadlineExceeded)
    ));
    for t in victims {
        assert!(matches!(
            t.wait_timeout(HANG_BOUND),
            Err(ServeError::Preempted)
        ));
    }
    for t in interactive {
        t.wait_timeout(HANG_BOUND).expect("interactive completes");
    }
    service.drain();

    let text = service.metrics_text();
    let parsed = parse_text(&text).unwrap_or_else(|e| panic!("export must parse: {e}"));
    // Lossless: the parse re-renders to the identical byte string.
    assert_eq!(parsed.render(), text, "render∘parse must be the identity");
    // Exact: the exported numbers ARE the ledgers, and they reconcile.
    parsed
        .check_quiesced(&service.stats(), &service.cache_stats())
        .unwrap_or_else(|e| panic!("export must reconcile with the ledgers: {e}"));

    assert_eq!(parsed.service.submitted, 11);
    assert_eq!(parsed.service.completed, 7);
    assert_eq!(parsed.service.shed_expired, 1);
    assert_eq!(parsed.service.shed_preempted, 3);
    assert_eq!(parsed.service.failed, 0);
    assert_eq!(parsed.service.shed, 0, "nothing was refused at submit");
    let m = &parsed.models[0];
    assert_eq!(m.model, "mixed");
    assert_eq!(m.submitted, 11);
    assert_eq!(m.completed, 7);
    assert_eq!(m.shed_expired, 1);
    assert_eq!(m.shed_preempted, 3);
    assert_eq!(
        m.latency_count, 7,
        "exactly one histogram observation per completion"
    );
    service.shutdown();
}

/// Cancellation is the one terminal class the mixed test above cannot
/// shape deterministically — it takes a worker dying with the batch in
/// hand. Kill the sole worker with no restart budget: the service
/// poisons, the three held requests cancel, and the *poisoned*
/// service's export still parses and still reconciles, with the
/// cancellations in the per-model series.
#[test]
fn poisoned_service_still_exports_reconciled_cancellations() {
    let graph = mlp(&[64, 48, 32], 5);
    let opts = Options::new(Target::SparseIsa);
    let service = Service::start(ServiceConfig {
        queue_capacity: 8,
        max_batch: 8,
        workers: 1,
        restart_budget: 0,
        restart_backoff: Duration::from_millis(1),
        tier: ExecTier::Bulk,
        fault_plan: Some(Arc::new(FaultPlan::new().fail_nth(
            FaultPoint::BatchRun,
            0,
            FaultAction::KillWorker,
        ))),
        ..ServiceConfig::default()
    });
    let model = service.register("doomed", &graph, &opts).unwrap();
    service.pause();
    let tickets: Vec<_> = (0..3)
        .map(|i| service.submit(model, input_for(&[64], 500 + i)).unwrap())
        .collect();
    service.resume();
    for t in tickets {
        assert!(matches!(
            t.wait_timeout(HANG_BOUND),
            Err(ServeError::Canceled)
        ));
    }
    // The cancellations land during the unwind, slightly before the
    // supervisor records the poisoning — bounded spin (same idiom as
    // the chaos suite).
    let t = Instant::now();
    while !service.is_poisoned() {
        assert!(
            t.elapsed() < Duration::from_secs(10),
            "poisoning never landed"
        );
        std::thread::sleep(Duration::from_millis(1));
    }

    let parsed = parse_text(&service.metrics_text())
        .unwrap_or_else(|e| panic!("a poisoned export must still parse: {e}"));
    parsed
        .check_quiesced(&service.stats(), &service.cache_stats())
        .unwrap_or_else(|e| panic!("a poisoned export must still reconcile: {e}"));
    assert_eq!(parsed.service.shed_canceled, 3);
    assert_eq!(
        parsed.models[0].shed_canceled, 3,
        "the held batch lands in the per-model canceled series"
    );
    assert_eq!(parsed.models[0].completed, 0);
    service.shutdown();
}

/// Satellite regression, end-to-end: `wait_timeout(Duration::MAX)` must
/// mean "wait forever" — the old code computed `now + timeout` and
/// panicked on the overflow. The waiter must neither panic nor time
/// out while the service is paused, and must then receive the result.
#[test]
fn wait_timeout_duration_max_waits_forever_then_delivers() {
    let graph = mlp(&[64, 48, 32], 5);
    let opts = Options::new(Target::SparseIsa);
    let service = Service::start(ServiceConfig {
        queue_capacity: 8,
        max_batch: 4,
        workers: 1,
        ..ServiceConfig::default()
    });
    let model = service.register("m", &graph, &opts).unwrap();
    service.pause();
    let ticket = service.submit(model, input_for(&[64], 600)).unwrap();
    let waiter = std::thread::spawn(move || ticket.wait_timeout(Duration::MAX));
    std::thread::sleep(Duration::from_millis(50));
    assert!(
        !waiter.is_finished(),
        "Duration::MAX must not fire early (nor panic computing a deadline)"
    );
    service.resume();
    let r = waiter
        .join()
        .expect("the waiter must not panic")
        .expect("the request completes once resumed");
    // The 50ms pause sat entirely between submit and fulfill, so the
    // recorded latency must cover it.
    assert!(
        r.latency >= Duration::from_millis(50),
        "latency {:?} must cover the paused wait",
        r.latency
    );
    service.shutdown();
}

/// Satellite 3's contract on both fulfill paths. Submit instants are
/// bracketed (`before_i ≤ submitted_i ≤ after_i`), so each fulfill
/// instant is pinned to `[before_i + latency_i, after_i + latency_i]`.
/// With one worker and a pre-loaded FIFO queue, fulfills happen in
/// submit order — the reconstructed instants must be monotone
/// non-decreasing within the bracketing slack, and every latency must
/// cover the paused wait.
fn assert_latency_contract(fault_plan: Option<Arc<FaultPlan>>, rerun_path: bool) {
    let graph = mlp(&[64, 48, 32], 5);
    let opts = Options::new(Target::SparseIsa);
    let service = Service::start(ServiceConfig {
        queue_capacity: 8,
        max_batch: 4,
        workers: 1,
        restart_budget: 2,
        restart_backoff: Duration::from_millis(1),
        tier: ExecTier::Bulk,
        fault_plan,
        ..ServiceConfig::default()
    });
    let model = service.register("lat", &graph, &opts).unwrap();
    service.pause();
    let mut tickets = Vec::new();
    for i in 0..4u64 {
        let before = Instant::now();
        let t = service.submit(model, input_for(&[64], 700 + i)).unwrap();
        tickets.push((before, Instant::now(), t));
    }
    let resume_at = Instant::now();
    service.resume();

    let mut fulfill_bounds = Vec::new();
    for (i, (before, after, t)) in tickets.into_iter().enumerate() {
        let r = t
            .wait_timeout(HANG_BOUND)
            .unwrap_or_else(|e| panic!("request {i} must complete: {e:?}"));
        assert_eq!(
            r.batch_size == 1,
            rerun_path,
            "request {i}: wrong fulfill path (batch_size={})",
            r.batch_size
        );
        // fulfill = submitted + latency and submitted ≤ after, so
        // `after + latency` is an upper-bracket witness that the
        // fulfill did not predate the resume.
        assert!(
            after + r.latency >= resume_at,
            "request {i}: latency {:?} cannot predate the resume",
            r.latency
        );
        fulfill_bounds.push((before + r.latency, after + r.latency));
    }
    // Monotone fulfill instants, within the bracketing slack: the
    // lower bound of fulfill i never exceeds the upper bound of
    // fulfill i+1.
    for (i, w) in fulfill_bounds.windows(2).enumerate() {
        assert!(
            w[0].0 <= w[1].1,
            "fulfill instants went backwards between requests {i} and {}",
            i + 1
        );
    }

    // The histogram saw exactly the four completions.
    service.drain();
    let parsed =
        parse_text(&service.metrics_text()).unwrap_or_else(|e| panic!("export must parse: {e}"));
    parsed
        .check_quiesced(&service.stats(), &service.cache_stats())
        .unwrap_or_else(|e| panic!("export must reconcile: {e}"));
    assert_eq!(parsed.models[0].latency_count, 4);

    let stats = service.shutdown();
    assert_eq!(stats.completed, 4);
    assert_eq!(stats.worker_panics, u64::from(rerun_path));
}

#[test]
fn latencies_are_monotone_consistent_on_the_batch_path() {
    assert_latency_contract(None, false);
}

#[test]
fn latencies_are_monotone_consistent_on_the_rerun_after_panic_path() {
    // Occurrence 0 is the whole batch's pass (panic → isolate); the
    // four individual re-runs take occurrences 1..=4 and all succeed.
    assert_latency_contract(
        Some(Arc::new(FaultPlan::new().fail_nth(
            FaultPoint::BatchRun,
            0,
            FaultAction::Panic,
        ))),
        true,
    );
}

/// The queue gauge is a *sample* taken inside the queue mutex: with the
/// pool paused and five requests queued, the export must say depth 5 /
/// high-water 5 (a consistent pair), and after the drain depth 0 with
/// the high-water mark sticky.
#[test]
fn queue_depth_gauge_is_a_consistent_sample() {
    let graph = mlp(&[64, 48, 32], 5);
    let opts = Options::new(Target::SparseIsa);
    let service = Service::start(ServiceConfig {
        queue_capacity: 8,
        max_batch: 4,
        workers: 1,
        ..ServiceConfig::default()
    });
    let model = service.register("m", &graph, &opts).unwrap();
    service.pause();
    let tickets: Vec<_> = (0..5)
        .map(|i| service.submit(model, input_for(&[64], 800 + i)).unwrap())
        .collect();

    let parsed = parse_text(&service.metrics_text())
        .unwrap_or_else(|e| panic!("mid-run export must parse: {e}"));
    parsed
        .check_internal()
        .unwrap_or_else(|e| panic!("mid-run export must be internally consistent: {e}"));
    assert_eq!(parsed.queue_depth, 5);
    assert_eq!(parsed.queue_depth_high_water, 5);

    service.resume();
    for t in tickets {
        t.wait_timeout(HANG_BOUND).expect("completes");
    }
    service.drain();
    let parsed = parse_text(&service.metrics_text())
        .unwrap_or_else(|e| panic!("drained export must parse: {e}"));
    assert_eq!(parsed.queue_depth, 0, "the queue drained");
    assert_eq!(
        parsed.queue_depth_high_water, 5,
        "the high-water mark is sticky"
    );
    service.shutdown();
}

/// Determinism: two fresh services fed the identical pinned workload
/// must export byte-identical text outside the wall-clock histogram
/// family (`nm_serve_request_latency_seconds`), whose *values* are
/// host-dependent by design — counters, gauges, model order, family
/// order and label escaping are all pinned.
#[test]
fn export_is_byte_deterministic_outside_the_histogram() {
    let run_once = || -> String {
        let graphs = [mlp(&[64, 48, 32], 5), mlp(&[64, 40, 24], 6)];
        let opts = Options::new(Target::SparseIsa);
        let service = Service::start(ServiceConfig {
            queue_capacity: 16,
            max_batch: 4,
            workers: 1,
            ..ServiceConfig::default()
        });
        let ids: Vec<_> = graphs
            .iter()
            .enumerate()
            .map(|(i, g)| service.register(&format!("det-{i}"), g, &opts).unwrap())
            .collect();
        service.pause();
        let mut tickets = Vec::new();
        for i in 0..6usize {
            let m = i % 2;
            let input = input_for(graphs[m].input_shape(), 900 + i as u64);
            tickets.push(service.submit(ids[m], input).unwrap());
        }
        // One born-expired request so a shed class is exercised too.
        let late = service
            .submit_with_deadline(
                ids[0],
                input_for(graphs[0].input_shape(), 990),
                Some(Instant::now()),
                Priority::Batch,
            )
            .unwrap();
        service.resume();
        for t in tickets {
            t.wait_timeout(HANG_BOUND).expect("completes");
        }
        assert!(matches!(
            late.wait_timeout(HANG_BOUND),
            Err(ServeError::DeadlineExceeded)
        ));
        service.drain();
        let text = service.metrics_text();
        service.shutdown();
        text
    };
    let strip_histogram = |text: &str| -> String {
        text.lines()
            .filter(|l| !l.contains("nm_serve_request_latency_seconds"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    let (first, second) = (run_once(), run_once());
    assert_eq!(
        strip_histogram(&first),
        strip_histogram(&second),
        "everything outside the histogram family must be byte-identical"
    );
}
