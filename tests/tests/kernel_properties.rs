//! Property tests over the kernel library: for random geometries and
//! every pattern, (1) emulated outputs are bit-exact against the naive
//! reference, and (2) analytic cycles equal emulated cycles exactly.

use nm_core::format::{NmMatrix, OffsetLayout};
use nm_core::quant::Requant;
use nm_core::sparsity::Nm;
use nm_core::{ConvGeom, FcGeom};
use nm_integration::random_i8;
use nm_isa::{CostModel, Memory};
use nm_kernels::conv::dense::{conv_dense_1x2, conv_dense_4x2};
use nm_kernels::conv::sparse_isa::conv_sparse_isa;
use nm_kernels::conv::sparse_sw::{conv_sparse_sw, SparseConvJob};
use nm_kernels::conv::{im2col_only, ConvJob};
use nm_kernels::fc::dense::fc_dense;
use nm_kernels::fc::sparse_isa::fc_sparse_isa;
use nm_kernels::fc::sparse_sw::{fc_sparse_sw, SparseFcJob};
use nm_kernels::fc::FcJob;
use nm_kernels::layout::{stage_conv_dense, stage_conv_sparse, stage_fc_dense, stage_fc_sparse};
use nm_kernels::reference::{conv_ref, fc_ref};
use nm_kernels::Ctx;
use nm_platform::{Cluster, Scratchpad};
use proptest::prelude::*;

fn nm_strategy() -> impl Strategy<Value = Nm> {
    prop_oneof![
        Just(Nm::ONE_OF_FOUR),
        Just(Nm::ONE_OF_EIGHT),
        Just(Nm::ONE_OF_SIXTEEN)
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn sparse_conv_kernels_match_reference_and_analytic(
        nm in nm_strategy(),
        c_blocks in 1usize..4,
        k in 1usize..7,
        i in 3usize..7,
        stride in 1usize..3,
        cores in 1usize..5,
        isa in any::<bool>(),
        seed in 1u64..5000,
    ) {
        let c = nm.m() * c_blocks;
        let geom = ConvGeom::square(c, k, i, 3, stride, 1).unwrap();
        let input = random_i8(geom.input_elems(), seed);
        let dense = random_i8(geom.weight_elems(), seed ^ 0xFFFF);
        let layout = if isa { OffsetLayout::Duplicated } else { OffsetLayout::Plain };
        let w = NmMatrix::prune_from_dense(&dense, geom.k, geom.patch_len(), nm, layout).unwrap();
        let pruned = w.to_dense();
        let rq = Requant::for_dot_len(geom.patch_len() / nm.m());
        let cluster = Cluster::new(cores, CostModel::default());
        let mut l1 = Scratchpad::new("l1", 512 * 1024);
        let bufs = stage_conv_sparse(&mut l1, &geom, &input, &w, cluster.n_cores()).unwrap();
        let job = SparseConvJob { conv: ConvJob { geom, requant: rq, bufs }, nm };
        let run = if isa { conv_sparse_isa } else { conv_sparse_sw };
        let stats = run(&mut Ctx::Mem(&mut l1), &job, &cluster).unwrap();
        let got: Vec<i8> =
            (0..geom.output_elems() as u32).map(|i| l1.load_i8(bufs.output + i)).collect();
        prop_assert_eq!(got, conv_ref(&geom, &input, &pruned, rq));
        let analytic = run(&mut Ctx::Analytic, &job, &cluster).unwrap();
        prop_assert_eq!(stats.cycles(), analytic.cycles());
        prop_assert_eq!(stats.cluster.total_instret(), analytic.cluster.total_instret());
    }

    #[test]
    fn dense_conv_kernels_match_reference_and_analytic(
        c in 1usize..12,
        k in 1usize..10,
        i in 2usize..7,
        f in 1usize..4,
        quad in any::<bool>(),
        cores in 1usize..5,
        seed in 1u64..5000,
    ) {
        prop_assume!(i + 2 >= f);
        let geom = ConvGeom::square(c, k, i, f, 1, f / 2).unwrap();
        let input = random_i8(geom.input_elems(), seed);
        let weights = random_i8(geom.weight_elems(), seed ^ 0xAAAA);
        let rq = Requant::for_dot_len(geom.patch_len());
        let cluster = Cluster::new(cores, CostModel::default());
        let mut l1 = Scratchpad::new("l1", 512 * 1024);
        let bufs = stage_conv_dense(&mut l1, &geom, &input, &weights, cluster.n_cores()).unwrap();
        let job = ConvJob { geom, requant: rq, bufs };
        let run = if quad { conv_dense_4x2 } else { conv_dense_1x2 };
        let stats = run(&mut Ctx::Mem(&mut l1), &job, &cluster).unwrap();
        let got: Vec<i8> =
            (0..geom.output_elems() as u32).map(|i| l1.load_i8(bufs.output + i)).collect();
        prop_assert_eq!(got, conv_ref(&geom, &input, &weights, rq));
        let analytic = run(&mut Ctx::Analytic, &job, &cluster).unwrap();
        prop_assert_eq!(stats.cycles(), analytic.cycles());
    }

    // Padded-geometry im2col agreement across all three modes,
    // including the previously untested extremes: stride > fx (disjoint
    // patches, no column reuse) and pad >= fx (rows that are entirely
    // zero padding, plus split rows with padding on both sides). The
    // pad-split charging fix and the bulk path's closed-form blocks
    // must agree with the reference exactly — emulated vs bulk on bytes
    // and every statistic, emulated vs analytic on totals.
    #[test]
    fn padded_im2col_agrees_across_modes(
        c in 1usize..9,
        k in 1usize..5,
        i in 2usize..8,
        f in 1usize..5,
        stride in 1usize..6,
        pad in 0usize..6,
        cores in 1usize..5,
        quad in any::<bool>(),
        seed in 1u64..5000,
    ) {
        prop_assume!(i + 2 * pad >= f);
        let geom = ConvGeom::new(c, k, i, i, f, f, stride, pad).unwrap();
        let input = random_i8(geom.input_elems(), seed);
        let weights = random_i8(geom.weight_elems(), seed ^ 0x5A5A);
        let rq = Requant::for_dot_len(geom.patch_len());
        let cluster = Cluster::new(cores, CostModel::default());
        let mut l1 = Scratchpad::new("l1", 512 * 1024);
        let bufs = stage_conv_dense(&mut l1, &geom, &input, &weights, cluster.n_cores()).unwrap();
        let job = ConvJob { geom, requant: rq, bufs };
        let run = if quad { conv_dense_4x2 } else { conv_dense_1x2 };

        // Emulated reference vs bulk: bit-exact scratchpad, equal stats.
        let mut l1_bulk = l1.clone();
        let stats = run(&mut Ctx::Mem(&mut l1), &job, &cluster).unwrap();
        let bulk = run(&mut Ctx::MemBulk(&mut l1_bulk), &job, &cluster).unwrap();
        prop_assert_eq!(l1.bytes(), l1_bulk.bytes());
        prop_assert_eq!(&stats, &bulk);

        // Outputs stay correct under extreme padding.
        let got: Vec<i8> =
            (0..geom.output_elems() as u32).map(|i| l1.load_i8(bufs.output + i)).collect();
        prop_assert_eq!(got, conv_ref(&geom, &input, &weights, rq));

        // Analytic totals agree (charging is mode-independent).
        let analytic = run(&mut Ctx::Analytic, &job, &cluster).unwrap();
        prop_assert_eq!(stats.cycles(), analytic.cycles());
        prop_assert_eq!(stats.cluster.total_instret(), analytic.cluster.total_instret());

        // The im2col step alone: final-only materialization must land on
        // the reference's exact final buffer state and charges.
        let mut l1_ref = l1.clone();
        let mut l1_bulk = l1.clone();
        let im_ref = im2col_only("im2col-prop", &mut Ctx::Mem(&mut l1_ref), &job, &cluster);
        let im_bulk = im2col_only("im2col-prop", &mut Ctx::MemBulk(&mut l1_bulk), &job, &cluster);
        prop_assert_eq!(l1_ref.bytes(), l1_bulk.bytes());
        prop_assert_eq!(&im_ref, &im_bulk);
        let im_an = im2col_only("im2col-prop", &mut Ctx::Analytic, &job, &cluster);
        prop_assert_eq!(im_ref.cycles(), im_an.cycles());
        prop_assert_eq!(im_ref.cluster.total_instret(), im_an.cluster.total_instret());
    }

    #[test]
    fn fc_kernels_match_reference_and_analytic(
        nm in nm_strategy(),
        c_blocks in 1usize..6,
        k_pairs in 1usize..8,
        kind in 0usize..3,
        cores in 1usize..5,
        seed in 1u64..5000,
    ) {
        let c = nm.m() * c_blocks;
        let k = 2 * k_pairs;
        let geom = FcGeom::new(c, k).unwrap();
        let input = random_i8(c, seed);
        let dense = random_i8(geom.weight_elems(), seed ^ 0x1234);
        let rq = Requant::for_dot_len(c / nm.m());
        let cluster = Cluster::new(cores, CostModel::default());
        let mut l1 = Scratchpad::new("l1", 512 * 1024);
        match kind {
            0 => {
                let bufs = stage_fc_dense(&mut l1, &geom, &input, &dense).unwrap();
                let job = FcJob { geom, requant: rq, bufs };
                let stats = fc_dense(&mut Ctx::Mem(&mut l1), &job, &cluster).unwrap();
                let got: Vec<i8> = (0..k as u32).map(|i| l1.load_i8(bufs.output + i)).collect();
                prop_assert_eq!(got, fc_ref(&geom, &input, &dense, rq));
                let analytic = fc_dense(&mut Ctx::Analytic, &job, &cluster).unwrap();
                prop_assert_eq!(stats.cycles(), analytic.cycles());
            }
            kind => {
                let layout =
                    if kind == 2 { OffsetLayout::Interleaved } else { OffsetLayout::Plain };
                let w = NmMatrix::prune_from_dense(&dense, k, c, nm, layout).unwrap();
                let pruned = w.to_dense();
                let bufs = stage_fc_sparse(&mut l1, &geom, &input, &w).unwrap();
                let job = SparseFcJob { fc: FcJob { geom, requant: rq, bufs }, nm };
                let run = if kind == 2 { fc_sparse_isa } else { fc_sparse_sw };
                let stats = run(&mut Ctx::Mem(&mut l1), &job, &cluster).unwrap();
                let got: Vec<i8> = (0..k as u32).map(|i| l1.load_i8(bufs.output + i)).collect();
                prop_assert_eq!(got, fc_ref(&geom, &input, &pruned, rq));
                let analytic = run(&mut Ctx::Analytic, &job, &cluster).unwrap();
                prop_assert_eq!(stats.cycles(), analytic.cycles());
            }
        }
    }
}
