//! Property tests over the sparse formats: round trips, memory math and
//! cross-format consistency on random N:M-compliant matrices.

use nm_core::format::{BlockwiseMatrix, CooMatrix, CsrMatrix, NmMatrix, OffsetLayout};
use nm_core::sparsity::{check_pattern, Nm};
use nm_integration::{make_exact_nm, random_i8};
use proptest::prelude::*;

fn nm_strategy() -> impl Strategy<Value = Nm> {
    prop_oneof![
        Just(Nm::ONE_OF_FOUR),
        Just(Nm::ONE_OF_EIGHT),
        Just(Nm::ONE_OF_SIXTEEN)
    ]
}

fn layout_strategy() -> impl Strategy<Value = OffsetLayout> {
    prop_oneof![
        Just(OffsetLayout::Plain),
        Just(OffsetLayout::Duplicated),
        Just(OffsetLayout::Interleaved)
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn nm_round_trip(
        nm in nm_strategy(),
        layout in layout_strategy(),
        rows_half in 1usize..8,
        blocks in 1usize..9,
        seed in 1u64..10_000,
    ) {
        let rows = rows_half * 2; // interleaved layout needs even rows
        let cols = blocks * nm.m();
        let mut w = random_i8(rows * cols, seed);
        make_exact_nm(&mut w, rows, cols, nm);
        let packed = NmMatrix::from_dense(&w, rows, cols, nm, layout).unwrap();
        prop_assert_eq!(packed.to_dense(), w.clone());
        // Memory accounting: values byte count is rows * blocks * n.
        prop_assert_eq!(packed.values().len(), rows * blocks * nm.n());
        // Every row decodes to its dense slice.
        for r in 0..rows {
            let vals = packed.row_values(r);
            let offs = packed.row_offsets(r);
            for (i, (&v, &o)) in vals.iter().zip(&offs).enumerate() {
                let block = i / nm.n();
                if v != 0 {
                    prop_assert_eq!(w[r * cols + block * nm.m() + o as usize], v);
                }
            }
        }
    }

    #[test]
    fn all_formats_agree_on_dense_reconstruction(
        nm in nm_strategy(),
        rows in 1usize..10,
        blocks in 1usize..6,
        seed in 1u64..10_000,
    ) {
        let cols = blocks * nm.m().max(4);
        prop_assume!(cols.is_multiple_of(nm.m()) && cols.is_multiple_of(4));
        let mut w = random_i8(rows * cols, seed);
        nm_core::sparsity::prune_magnitude(&mut w, rows, cols, nm).unwrap();
        let coo = CooMatrix::from_dense(&w, rows, cols).unwrap();
        let csr = CsrMatrix::from_dense(&w, rows, cols).unwrap();
        let bw = BlockwiseMatrix::from_dense(&w, rows, cols, 4).unwrap();
        prop_assert_eq!(coo.to_dense(), w.clone());
        prop_assert_eq!(csr.to_dense(), w.clone());
        prop_assert_eq!(bw.to_dense(), w.clone());
        prop_assert_eq!(coo.nnz(), csr.nnz());
    }

    #[test]
    fn pruning_always_satisfies_pattern(
        nm in nm_strategy(),
        rows in 1usize..10,
        blocks in 1usize..9,
        seed in 1u64..10_000,
    ) {
        let cols = blocks * nm.m();
        let mut w = random_i8(rows * cols, seed);
        nm_core::sparsity::prune_magnitude(&mut w, rows, cols, nm).unwrap();
        prop_assert!(check_pattern(&w, rows, cols, nm).is_ok());
    }

    #[test]
    fn nm_memory_always_beats_csr_at_kernel_patterns(
        nm in nm_strategy(),
        rows in 2usize..12,
        blocks in 2usize..9,
        seed in 1u64..10_000,
    ) {
        let cols = blocks * nm.m();
        let mut w = random_i8(rows * cols, seed);
        make_exact_nm(&mut w, rows, cols, nm);
        let packed = NmMatrix::from_dense(&w, rows, cols, nm, OffsetLayout::Plain).unwrap();
        let csr = CsrMatrix::from_dense(&w, rows, cols).unwrap();
        prop_assert!(packed.memory_bits_nominal() / 8 <= csr.memory_bytes());
    }
}
