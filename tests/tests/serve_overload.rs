//! Overload-resilience suite for the serving layer: the Zipf×Poisson
//! load-generator soak (`nm_bench::loadgen`) plus pinned structural
//! scenarios for the priority-shed policy and the memory-budgeted
//! model cache. What must hold under any scheduling:
//!
//! * the accounting reconciles exactly even when most of the offered
//!   load is shed and workers are killed mid-overload;
//! * an `Interactive` request is never full-shed while lower-class
//!   work occupies queue slots — it displaces a victim instead
//!   (`Preempted`), and only an all-Interactive queue can refuse one;
//! * cache eviction churn (more live models than the byte budget
//!   holds) never corrupts results: every completed request stays
//!   bit+cycle identical to a sequential `PreparedGraph::run`;
//! * a model that cannot fit the budget at all is refused at
//!   registration (`CacheOverBudget`), leaving the service fully
//!   usable.
//!
//! The full soak runs in CI's release profile as a named step
//! (`serve_overload`); a smaller smoke configuration keeps the same
//! contracts exercised in debug.

use nm_bench::loadgen::{run_overload, OverloadConfig};
use nm_compiler::{Options, PreparedGraph, Target};
use nm_core::sparsity::Nm;
use nm_core::Tensor;
use nm_models::mlp_serve_sparse;
use nm_nn::graph::Graph;
use nm_nn::rng::XorShift;
use nm_serve::{Priority, ServeError, Service, ServiceConfig, SubmitError};
use std::sync::Arc;
use std::time::Duration;

const HANG_BOUND: Duration = Duration::from_secs(60);

fn mlp(dims: &[usize], seed: u64) -> Arc<Graph> {
    Arc::new(mlp_serve_sparse(dims, Nm::ONE_OF_EIGHT, seed).unwrap())
}

fn input_for(shape: &[usize], seed: u64) -> Tensor<i8> {
    let elems: usize = shape.iter().product();
    Tensor::from_vec(shape, XorShift::new(seed).fill_weights(elems, 50)).unwrap()
}

/// Resident bytes the service's cache will account for `graph` (the
/// service overrides `opts.tier` with its own, which defaults to the
/// same Bulk tier used here).
fn artifact_bytes(graph: &Arc<Graph>, opts: &Options) -> usize {
    PreparedGraph::prepare_shared(Arc::clone(graph), opts)
        .unwrap()
        .resident_bytes()
}

/// The full seeded soak at release scale: 600 Zipf×Poisson arrivals at
/// twice the drain-capacity upper bound, four models over a
/// three-model cache budget, two mid-run worker kills. Every
/// robustness contract is asserted by `OverloadReport::check`.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "release-scale soak; the debug smoke below runs the same contracts"
)]
fn overload_soak_holds_every_robustness_contract() {
    let report = run_overload(&OverloadConfig::default());
    eprintln!("[serve_overload] {}", report.summary());
    report.check();
}

/// The same soak shrunk for debug CI: fewer arrivals, same contracts —
/// reconciliation, interactive protection, eviction-correctness and
/// worker-kill recovery all still fire.
#[test]
fn overload_smoke_reconciles_in_debug() {
    let cfg = OverloadConfig {
        requests: 150,
        ..OverloadConfig::default()
    };
    let report = run_overload(&cfg);
    eprintln!("[serve_overload smoke] {}", report.summary());
    report.check();
}

/// The structural priority guarantee, pinned without load-generator
/// randomness: a full queue of `BestEffort` work admits `Interactive`
/// requests by displacement (each victim resolves `Preempted`), and an
/// Interactive request is only ever full-shed once the queue holds
/// nothing of lower class. The paused pool makes every step exact.
#[test]
fn interactive_never_sheds_while_best_effort_occupies_slots() {
    let capacity = 8;
    let graph = mlp(&[64, 48, 32], 5);
    let opts = Options::new(Target::SparseIsa);
    let service = Service::start(ServiceConfig {
        queue_capacity: capacity,
        max_batch: 4,
        workers: 2,
        ..ServiceConfig::default()
    });
    let model = service.register("m", &graph, &opts).unwrap();
    service.pause();

    // Fill every slot with best-effort work.
    let best_effort: Vec<_> = (0..capacity)
        .map(|i| {
            service
                .submit_with_deadline(
                    model,
                    input_for(&[64], 100 + i as u64),
                    None,
                    Priority::BestEffort,
                )
                .unwrap()
        })
        .collect();
    assert_eq!(service.queue_depth(), capacity);

    // Every Interactive submit against the full queue is admitted by
    // displacing one best-effort victim — never shed.
    let interactive: Vec<_> = (0..capacity)
        .map(|i| {
            service
                .submit_with_deadline(
                    model,
                    input_for(&[64], 200 + i as u64),
                    None,
                    Priority::Interactive,
                )
                .unwrap_or_else(|e| {
                    panic!("interactive {i} shed while best-effort held slots: {e:?}")
                })
        })
        .collect();
    assert_eq!(service.queue_depth(), capacity, "displacement is 1-for-1");

    // All eight victims were preempted, promptly and with the
    // documented error.
    for (i, t) in best_effort.into_iter().enumerate() {
        match t.wait_timeout(HANG_BOUND) {
            Err(ServeError::Preempted) => {}
            other => panic!("victim {i} resolved strangely: {other:?}"),
        }
    }

    // The queue now holds only Interactive work: the next Interactive
    // arrival has no lower class to displace, so *this* one is shed —
    // the only circumstance in which the class can be.
    match service.submit_with_deadline(model, input_for(&[64], 300), None, Priority::Interactive) {
        Err(SubmitError::Shed { capacity: c }) => assert_eq!(c, capacity),
        other => panic!("an all-interactive full queue must shed: {other:?}"),
    }

    service.resume();
    for (i, t) in interactive.into_iter().enumerate() {
        t.wait_timeout(HANG_BOUND)
            .unwrap_or_else(|e| panic!("admitted interactive {i} must complete: {e:?}"));
    }

    // Tentpole gate on the pinned scenario: the export carries the same
    // exact story the ledgers tell — the one boundary shed counted in
    // its class, all eight victims in the per-model preempted series,
    // and the five-term reconciliation on the *exported* numbers.
    service.drain();
    let parsed = nm_serve::metrics::parse_text(&service.metrics_text())
        .unwrap_or_else(|e| panic!("pinned-scenario metrics export must parse: {e}"));
    parsed
        .check_quiesced(&service.stats(), &service.cache_stats())
        .unwrap_or_else(|e| panic!("pinned-scenario export must reconcile: {e}"));
    assert_eq!(
        parsed.service.shed_full_by_class,
        [1, 0, 0],
        "the boundary shed survives the export round trip per class"
    );
    let m = parsed
        .models
        .iter()
        .find(|m| m.model == "m")
        .expect("the registered model exports a series");
    assert_eq!(
        m.shed_preempted, capacity as u64,
        "all eight displacement victims land in the per-model series"
    );
    assert_eq!(m.completed, capacity as u64);

    let stats = service.shutdown();
    assert_eq!(stats.submitted, 2 * capacity as u64);
    assert_eq!(stats.completed, capacity as u64);
    assert_eq!(stats.shed_preempted, capacity as u64);
    assert_eq!(
        stats.shed_full_by_class,
        [1, 0, 0],
        "exactly the one boundary shed, and it was counted per class"
    );
    assert_eq!(
        stats.completed
            + stats.failed
            + stats.shed_expired
            + stats.shed_canceled
            + stats.shed_preempted,
        stats.submitted,
        "displacement accounting reconciles exactly"
    );
}

/// Eviction churn at the service level: three models contend for a
/// budget holding two, driven by an identical sequential request
/// sequence on two independent services. Every response must match the
/// sequential oracle bit+cycle (whatever the cache evicted underneath),
/// and both services must evict at least once (the third registration
/// alone overflows the budget deterministically).
#[test]
fn eviction_churn_is_deterministic_at_the_service_level() {
    let dims: [&[usize]; 3] = [&[64, 64, 48, 32], &[64, 64, 40, 24], &[64, 64, 56, 16]];
    let graphs: Vec<Arc<Graph>> = dims
        .iter()
        .enumerate()
        .map(|(i, d)| mlp(d, 11 + i as u64))
        .collect();
    let opts = Options::new(Target::SparseIsa);
    let bytes: Vec<usize> = graphs.iter().map(|g| artifact_bytes(g, &opts)).collect();
    let mut sorted = bytes.clone();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let budget: usize = sorted[..2].iter().sum();
    let oracles: Vec<_> = graphs
        .iter()
        .map(|g| PreparedGraph::prepare_shared(Arc::clone(g), &opts).unwrap())
        .collect();

    let sequence = [0usize, 1, 2, 0, 2, 1, 0, 0, 2, 1, 2, 0];
    let run_once = || -> Vec<(Tensor<i8>, Option<u64>)> {
        let service = Service::start(ServiceConfig {
            queue_capacity: 16,
            max_batch: 4,
            workers: 1,
            cache_budget: Some(budget),
            ..ServiceConfig::default()
        });
        let ids: Vec<_> = graphs
            .iter()
            .enumerate()
            .map(|(i, g)| service.register(&format!("m{i}"), g, &opts).unwrap())
            .collect();
        let mut got = Vec::new();
        for (step, &m) in sequence.iter().enumerate() {
            let ticket = service
                .submit(ids[m], input_for(&[64], 900 + step as u64))
                .unwrap_or_else(|e| panic!("step {step} model {m}: {e:?}"));
            let r = ticket.wait_timeout(HANG_BOUND).unwrap();
            got.push((r.output, r.sim_cycles));
            // One request at a time: nothing is pinned between steps,
            // so resolve-time eviction always has a victim available.
            service.drain();
        }
        let cache = service.cache_stats();
        assert!(
            cache.evictions >= 1,
            "three models over a two-model budget must evict (evictions={})",
            cache.evictions
        );
        assert!(
            cache.resident_bytes <= budget as u64,
            "the resident gauge respects the budget"
        );
        service.shutdown();
        got
    };

    let first = run_once();
    let second = run_once();
    assert_eq!(
        first, second,
        "identical sequences produce identical results"
    );
    for (step, ((output, sim_cycles), &m)) in first.iter().zip(&sequence).enumerate() {
        let want = oracles[m]
            .run(&input_for(&[64], 900 + step as u64))
            .unwrap();
        assert_eq!(output, &want.output, "step {step} diverged from the oracle");
        assert_eq!(
            *sim_cycles,
            Some(want.matmul_compute_cycles),
            "step {step} cycles diverged"
        );
    }
}

/// Registration-time budget refusal at the service level: a model
/// larger than the whole budget is refused with `CacheOverBudget` (the
/// error carries both sides of the comparison), nothing is registered,
/// and a model that does fit then registers and serves on the same
/// service.
#[test]
fn register_refuses_a_model_that_cannot_fit_the_budget() {
    let big = mlp(&[64, 64, 64, 48, 32], 21);
    let small = mlp(&[64, 48, 32], 22);
    let opts = Options::new(Target::SparseIsa);
    let big_bytes = artifact_bytes(&big, &opts);
    let small_bytes = artifact_bytes(&small, &opts);
    assert!(small_bytes < big_bytes, "the fixture needs distinct sizes");
    let budget = big_bytes - 1;

    let service = Service::start(ServiceConfig {
        cache_budget: Some(budget),
        ..ServiceConfig::default()
    });
    match service.register("too-big", &big, &opts) {
        Err(ServeError::CacheOverBudget {
            required,
            budget: b,
        }) => {
            assert_eq!(required, big_bytes);
            assert_eq!(b, budget);
        }
        other => panic!("expected CacheOverBudget, got {other:?}"),
    }
    assert_eq!(service.model_count(), 0, "the refusal registered nothing");

    let model = service.register("fits", &small, &opts).unwrap();
    let ticket = service.submit(model, input_for(&[64], 33)).unwrap();
    ticket
        .wait_timeout(HANG_BOUND)
        .expect("the fitting model serves");
    let cache = service.cache_stats();
    // The refused model still cost a miss (it prepared successfully
    // before failing the budget check) — but never became resident.
    assert_eq!(cache.misses, 2);
    assert_eq!(cache.evictions, 0, "nothing was resident to evict");
    assert_eq!(cache.resident_bytes, small_bytes as u64);
    service.shutdown();
}
