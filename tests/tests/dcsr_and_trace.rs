//! Property tests for the dCSR comparator format/kernel and the
//! tile-trace infrastructure.

use nm_compiler::profile::trace_layer;
use nm_compiler::{compile, Options, Target};
use nm_core::format::{CsrMatrix, DcsrMatrix};
use nm_core::quant::Requant;
use nm_core::FcGeom;
use nm_integration::random_i8;
use nm_isa::CostModel;
use nm_kernels::baseline::dcsr::{fc_dcsr, stage_dcsr_fc};
use nm_kernels::fc::FcJob;
use nm_kernels::reference::fc_ref;
use nm_kernels::Ctx;
use nm_platform::pipeline::{double_buffered_cycles, serial_cycles, TileCost};
use nm_platform::{Cluster, Lane, Scratchpad, Trace};
use proptest::prelude::*;

/// Random matrix with bounded gaps (dCSR escapes cover deltas <= 271).
fn gap_sparse(rows: usize, cols: usize, keep_every: usize, seed: u64) -> Vec<i8> {
    let raw = random_i8(rows * cols, seed);
    raw.iter()
        .enumerate()
        .map(|(i, &v)| {
            if i % keep_every == 0 {
                if v == 0 {
                    1
                } else {
                    v
                }
            } else {
                0
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn dcsr_round_trips_and_never_stores_more_than_csr_plus_slack(
        rows in 1usize..12,
        cols16 in 1usize..8,
        keep_every in 2usize..40,
        seed in 1u64..10_000,
    ) {
        let cols = 16 * cols16;
        prop_assume!(keep_every <= 250); // bounded gaps
        let dense = gap_sparse(rows, cols, keep_every, seed);
        let d = DcsrMatrix::from_dense(&dense, rows, cols).unwrap();
        prop_assert_eq!(d.to_dense(), dense.clone());
        let c = CsrMatrix::from_dense(&dense, rows, cols).unwrap();
        // Identical non-zeros...
        let nnz: usize = (0..rows).map(|r| d.row_nnz(r)).sum();
        prop_assert_eq!(nnz, c.nnz());
        // ...with at most ~half the index storage at realistic shapes
        // (nibbles vs 16-bit columns), modulo row-pointer overhead.
        prop_assert!(d.memory_bytes() <= c.memory_bytes() + rows);
    }

    #[test]
    fn dcsr_kernel_matches_reference_on_random_sparsity(
        k in 1usize..10,
        cols16 in 1usize..6,
        keep_every in 2usize..30,
        seed in 1u64..10_000,
    ) {
        let geom = FcGeom::new(16 * cols16, k).unwrap();
        let dense = gap_sparse(geom.k, geom.c, keep_every, seed);
        let input = random_i8(geom.c, seed ^ 0x77);
        let w = DcsrMatrix::from_dense(&dense, geom.k, geom.c).unwrap();
        let rq = Requant::for_dot_len((geom.c / keep_every).max(1));
        let fc = FcJob { geom, requant: rq, bufs: Default::default() };
        let mut l1 = Scratchpad::new("l1", 256 * 1024);
        let job = stage_dcsr_fc(&mut l1, &fc, &input, &w).unwrap();
        let cluster = Cluster::new(4, CostModel::default());
        let stats = fc_dcsr(&mut Ctx::Mem(&mut l1), &job, &cluster).unwrap();
        let got: Vec<i8> = (0..geom.k as u32)
            .map(|i| nm_isa::Memory::load_i8(&l1, job.bufs.output + i))
            .collect();
        prop_assert_eq!(got, fc_ref(&geom, &input, &dense, rq));
        let analytic = fc_dcsr(&mut Ctx::Analytic, &job, &cluster).unwrap();
        prop_assert_eq!(stats.cycles(), analytic.cycles());
        prop_assert_eq!(stats.cluster.total_instret(), analytic.cluster.total_instret());
    }

    #[test]
    fn trace_replays_the_pipeline_model_exactly(
        tiles in prop::collection::vec((0u64..200, 0u64..500, 0u64..100), 0..12),
    ) {
        let tiles: Vec<TileCost> = tiles
            .into_iter()
            .map(|(dma_in, compute, dma_out)| TileCost { dma_in, compute, dma_out })
            .collect();
        let trace = Trace::from_tiles(&tiles);
        prop_assert_eq!(trace.end(), double_buffered_cycles(&tiles));
        prop_assert!(trace.end() <= serial_cycles(&tiles));
        // Lane busy-time equals the raw transfer/compute sums.
        prop_assert_eq!(trace.lane_busy(Lane::Compute),
            tiles.iter().map(|t| t.compute).sum::<u64>());
        prop_assert_eq!(trace.lane_busy(Lane::DmaIn),
            tiles.iter().map(|t| t.dma_in).sum::<u64>());
        prop_assert_eq!(trace.lane_busy(Lane::DmaOut),
            tiles.iter().map(|t| t.dma_out).sum::<u64>());
        // Spans never overlap within a lane and never cross the end.
        for lane in Lane::ALL {
            let mut spans: Vec<_> = trace.spans().iter().filter(|s| s.lane == lane).collect();
            spans.sort_by_key(|s| s.start);
            for s in &spans {
                prop_assert!(s.start < s.end && s.end <= trace.end());
            }
            for pair in spans.windows(2) {
                prop_assert!(pair[0].end <= pair[1].start);
            }
        }
    }
}

/// The traced schedule of every plannable ResNet18 layer matches the
/// planner's latency — one invariant over the real model, not toys.
#[test]
fn resnet18_traces_agree_with_plans() {
    use nm_core::sparsity::Nm;
    use nm_nn::prune::{prune_graph, resnet_policy};

    let nm = Nm::ONE_OF_EIGHT;
    let mut g = nm_models::resnet18_cifar(100, 1).unwrap();
    prune_graph(&mut g, nm, resnet_policy(nm)).unwrap();
    let opts = Options::new(Target::SparseIsa);
    let report = compile(&g, &opts).unwrap();
    let mut traced = 0;
    for plan in &report.layers {
        if plan.choice.is_none() {
            continue;
        }
        let lt = trace_layer(&g, plan.node, &opts).unwrap();
        assert_eq!(lt.trace.end(), plan.cycles, "node {}", plan.node);
        traced += 1;
    }
    assert!(
        traced >= 18,
        "expected most ResNet18 layers traced, got {traced}"
    );
}
