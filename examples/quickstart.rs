//! Quickstart: prune a fully-connected layer to 1:8 sparsity, pack it in
//! the paper's N:M format, and run it on the simulated 8-core PULP
//! cluster with the dense, software-sparse and `xDecimate` kernels —
//! verifying all three produce bit-identical outputs and reporting the
//! speedups of Sec. 5.2.
//!
//! Run: `cargo run --release -p nm-examples --example quickstart`

use nm_core::format::{NmMatrix, OffsetLayout};
use nm_core::quant::Requant;
use nm_core::sparsity::Nm;
use nm_core::FcGeom;
use nm_examples::{banner, speedup};
use nm_isa::CostModel;
use nm_kernels::fc::dense::fc_dense;
use nm_kernels::fc::sparse_isa::fc_sparse_isa;
use nm_kernels::fc::sparse_sw::{fc_sparse_sw, SparseFcJob};
use nm_kernels::fc::FcJob;
use nm_kernels::layout::{stage_fc_dense, stage_fc_sparse};
use nm_kernels::reference::fc_ref;
use nm_kernels::Ctx;
use nm_nn::rng::XorShift;
use nm_platform::{Cluster, Scratchpad};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let geom = FcGeom::new(1024, 256)?;
    let nm = Nm::ONE_OF_EIGHT;
    let mut rng = XorShift::new(42);
    let input = rng.fill_weights(geom.c, 60);
    let dense_w = rng.fill_weights(geom.weight_elems(), 40);
    let requant = Requant::for_dot_len(geom.c / nm.m());
    let cluster = Cluster::new(8, CostModel::default());

    banner("1. prune to 1:8 and pack");
    let packed = NmMatrix::prune_from_dense(&dense_w, geom.k, geom.c, nm, OffsetLayout::Plain)?;
    let pruned = packed.to_dense();
    println!(
        "dense weights: {} B -> N:M packed: {} B ({:.1}% reduction)",
        geom.weight_elems(),
        packed.memory_bits_nominal() / 8,
        100.0 * nm.sw_memory_reduction()
    );

    banner("2. dense baseline on the simulated cluster");
    let mut l1 = Scratchpad::new("L1", 512 * 1024);
    let bufs = stage_fc_dense(&mut l1, &geom, &input, &pruned)?;
    let job = FcJob {
        geom,
        requant,
        bufs,
    };
    let dense_stats = fc_dense(&mut Ctx::Mem(&mut l1), &job, &cluster)?;
    let dense_out: Vec<i8> = (0..geom.k as u32)
        .map(|i| nm_isa::Memory::load_i8(&l1, bufs.output + i))
        .collect();
    println!(
        "cycles: {}  (MAC/cyc {:.2})",
        dense_stats.cycles(),
        dense_stats.macs_per_cycle()
    );

    banner("3. software sparse kernel (XpulpV2 only)");
    let mut l1 = Scratchpad::new("L1", 512 * 1024);
    let bufs = stage_fc_sparse(&mut l1, &geom, &input, &packed)?;
    let sjob = SparseFcJob {
        fc: FcJob {
            geom,
            requant,
            bufs,
        },
        nm,
    };
    let sw_stats = fc_sparse_sw(&mut Ctx::Mem(&mut l1), &sjob, &cluster)?;
    let sw_out: Vec<i8> = (0..geom.k as u32)
        .map(|i| nm_isa::Memory::load_i8(&l1, bufs.output + i))
        .collect();
    println!(
        "cycles: {}  speedup vs dense: {}",
        sw_stats.cycles(),
        speedup(dense_stats.cycles(), sw_stats.cycles())
    );

    banner("4. xDecimate kernel (interleaved offsets)");
    let interleaved = NmMatrix::from_dense(&pruned, geom.k, geom.c, nm, OffsetLayout::Interleaved)?;
    let mut l1 = Scratchpad::new("L1", 512 * 1024);
    let bufs = stage_fc_sparse(&mut l1, &geom, &input, &interleaved)?;
    let ijob = SparseFcJob {
        fc: FcJob {
            geom,
            requant,
            bufs,
        },
        nm,
    };
    let isa_stats = fc_sparse_isa(&mut Ctx::Mem(&mut l1), &ijob, &cluster)?;
    let isa_out: Vec<i8> = (0..geom.k as u32)
        .map(|i| nm_isa::Memory::load_i8(&l1, bufs.output + i))
        .collect();
    println!(
        "cycles: {}  speedup vs dense: {}  vs SW sparse: {}",
        isa_stats.cycles(),
        speedup(dense_stats.cycles(), isa_stats.cycles()),
        speedup(sw_stats.cycles(), isa_stats.cycles())
    );

    banner("5. verify bit-exactness");
    let reference = fc_ref(&geom, &input, &pruned, requant);
    assert_eq!(dense_out, reference, "dense kernel output");
    assert_eq!(sw_out, reference, "software sparse kernel output");
    assert_eq!(isa_out, reference, "xDecimate kernel output");
    println!("all three kernels match the reference bit-for-bit");
    Ok(())
}
