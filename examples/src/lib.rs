//! Shared pretty-printing helpers for the runnable examples.
//!
//! Run any example with
//! `cargo run --release -p nm-examples --example <name>`.

/// Prints a section banner.
pub fn banner(title: &str) {
    println!("\n=== {title} ===");
}

/// Formats a speedup.
pub fn speedup(base: u64, new: u64) -> String {
    format!("{:.2}x", base as f64 / new as f64)
}
