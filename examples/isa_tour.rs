//! A guided tour of the `xDecimate` hardware extension (Sec. 4.3):
//! walks the XFU datapath cycle by cycle on a tiny 1:8 stream, shows the
//! csr-driven block/lane sequencing, checks the forwarding path, and
//! prints the gate-equivalent area budget behind the paper's 5 % claim.
//!
//! Run: `cargo run --release -p nm-examples --example isa_tour`

use nm_examples::banner;
use nm_rtl::pipeline::{IssueOp, XfuPipeline};
use nm_rtl::{ri5cy_area, xfu_area, DecimateMode, DecimateXfu, GateLibrary};

fn main() {
    banner("1. the packed offset stream");
    // Four non-zero offsets (3, 7, 1, 6), duplicated for the conv
    // kernels' two im2col buffers, packed LSB-first in nibbles.
    let offsets = [3u8, 7, 1, 6];
    let mut rs2 = 0u32;
    for (i, &o) in offsets
        .iter()
        .flat_map(|o| [o, o])
        .enumerate()
        .take(8)
        .collect::<Vec<_>>()
    {
        rs2 |= u32::from(o & 0xF) << (i * 4);
    }
    println!("offsets {offsets:?} duplicated -> rs2 = {rs2:#010x}");

    banner("2. EX/WB walk: addresses and lanes");
    let mut xfu = DecimateXfu::new();
    let (buf1, buf2) = (0x100u32, 0x200u32);
    println!("{:>4} {:>6} {:>10} {:>5}", "csr", "rs1", "addr", "lane");
    for call in 0..8 {
        let rs1 = if call % 2 == 0 { buf1 } else { buf2 };
        let addr = xfu.ex_stage(DecimateMode::OneOfEight, rs1, rs2);
        let lane = (xfu.csr() >> 1) & 3;
        println!("{:>4} {:>#6x} {:>#10x} {:>5}", xfu.csr(), rs1, addr, lane);
        xfu.wb_stage(0, 0);
    }
    println!("block advances every 2 calls (M=8 stride); lanes fill vB1/vB2");

    banner("3. back-to-back issue with forwarding");
    let mut with = XfuPipeline::new(true);
    let mut without = XfuPipeline::new(false);
    for _ in 0..8 {
        with.issue(IssueOp::XDecimate { rd: 5 });
        without.issue(IssueOp::XDecimate { rd: 5 });
    }
    println!(
        "8 same-rd xdecimate: {} cycles with forwarding, {} without",
        with.cycles(),
        without.cycles()
    );

    banner("4. area budget (paper: 5.0% of the core)");
    let lib = GateLibrary::default();
    let xfu_a = xfu_area(&lib);
    let core_a = ri5cy_area(&lib);
    println!("{xfu_a}");
    println!(
        "\nXFU {:.0} GE vs RI5CY-class core {:.0} GE -> {:.1}% overhead",
        xfu_a.total_ge(),
        core_a.total_ge(),
        100.0 * xfu_a.fraction_of(&core_a)
    );

    banner("5. the Fig. 4 inner loops, as executable listings");
    use nm_isa::asm::{listing, retired};
    use nm_isa::programs;
    println!("-- dense 1x2 (5 instructions/iteration) --");
    print!("{}", listing(&programs::conv_dense_1x2(1)));
    println!("-- sparse SW 1:8 (22 instructions/iteration) --");
    print!(
        "{}",
        listing(&programs::conv_sparse_sw(DecimateMode::OneOfEight, 1))
    );
    println!("-- sparse ISA 1:8 (12 instructions/iteration) --");
    print!(
        "{}",
        listing(&programs::conv_sparse_isa(DecimateMode::OneOfEight, 1))
    );
    let sw = retired(&programs::conv_sparse_sw(DecimateMode::OneOfEight, 64));
    let isa = retired(&programs::conv_sparse_isa(DecimateMode::OneOfEight, 64));
    println!(
        "over 64 chunks: SW retires {sw} instructions, ISA {isa} ({:.2}x fewer) —",
        sw as f64 / isa as f64
    );
    println!("run `cargo test -p nm-isa programs` to see these streams executed");
    println!("against real data and checked against reference dot products.");
}
