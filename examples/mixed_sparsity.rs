//! The paper's future-work study, both axes (Sec. 6: "variable sparsity
//! patterns (e.g., per-layer or per-channel)"):
//!
//! 1. **Per-layer** — greedy pattern assignment across ResNet18's
//!    convolutions under a kept-density floor (`nm_compiler::mixed`).
//! 2. **Per-channel** — pattern assignment per output channel inside one
//!    representative convolution, traded against the retained weight
//!    mass (`nm_compiler::channelwise`), executed with the per-channel
//!    mixed kernel.
//!
//! Run: `cargo run --release -p nm-examples --example mixed_sparsity`

use nm_compiler::channelwise::conv_channel_sweep;
use nm_compiler::mixed::assign_mixed;
use nm_compiler::{Options, Target};
use nm_core::ConvGeom;
use nm_examples::banner;
use nm_isa::CostModel;
use nm_kernels::conv::per_channel::ChannelEngine;
use nm_models::resnet18_cifar;
use nm_nn::graph::OpKind;
use nm_nn::rng::XorShift;
use nm_platform::Cluster;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("1. per-layer mixed sparsity on ResNet18 (xDecimate target)");
    let graph = resnet18_cifar(100, 1)?;
    let opts = Options::new(Target::SparseIsa);
    println!(
        "{:<14} {:>9} {:>9} {:>14}  per-layer ladder",
        "density floor", "achieved", "Mcycles", "layers sparse"
    );
    for floor in [1.0, 0.5, 0.25, 0.125, 0.0] {
        let a = assign_mixed(
            &graph,
            &opts,
            floor,
            |_, op| matches!(op, OpKind::Conv2d(l) if !l.geom.is_pointwise() && l.geom.c % 16 == 0),
        )?;
        let sparse = a.per_layer.iter().filter(|(_, nm)| nm.is_some()).count();
        let ladder: String = a
            .per_layer
            .iter()
            .map(|(_, nm)| match nm {
                None => 'd',
                Some(nm) if nm.m() == 4 => '4',
                Some(nm) if nm.m() == 8 => '8',
                _ => 'x', // 1:16
            })
            .collect();
        println!(
            "{:<14.3} {:>9.3} {:>9.2} {:>11}/{:<2}  {}",
            floor,
            a.density,
            a.cycles as f64 / 1e6,
            sparse,
            a.per_layer.len(),
            ladder
        );
    }
    println!("(d = dense, 4/8/x = 1:4, 1:8, 1:16 — the greedy sparsifies the layers");
    println!(" with the most cycles saved per dropped weight first, and parks the");
    println!(" rest at the floor)");

    banner("2. per-channel sparsity inside one 128x128 3x3 convolution");
    let geom = ConvGeom::square(128, 128, 8, 3, 1, 1)?;
    let mut rng = XorShift::new(41);
    let weights = rng.fill_weights(geom.weight_elems(), 40);
    let cluster = Cluster::new(8, CostModel::default());
    let targets = [1.0, 0.75, 0.5, 0.25, 0.125, 1.0 / 16.0];
    for engine in [ChannelEngine::Software, ChannelEngine::Isa] {
        println!("\nengine: {engine:?}");
        println!(
            "{:>7} {:>8} {:>9} {:>9} {:>10}  dense/1:4/1:8/1:16",
            "target", "density", "Kcycles", "mem KiB", "mass kept"
        );
        for p in conv_channel_sweep(&geom, &weights, engine, &cluster, &targets)? {
            let h = p.histogram;
            println!(
                "{:>7.3} {:>8.3} {:>9.1} {:>9.1} {:>10.3}  {}/{}/{}/{}",
                p.target_density,
                p.density,
                p.cycles as f64 / 1e3,
                p.weight_bits as f64 / 8.0 / 1024.0,
                p.mass_kept,
                h[0],
                h[1],
                h[2],
                h[3]
            );
        }
    }

    banner("3. per-channel sparsity on a 2048x256 fully-connected layer");
    let fc_geom = nm_core::FcGeom::new(2048, 256)?;
    let fc_weights = rng.fill_weights(fc_geom.weight_elems(), 40);
    println!(
        "{:>7} {:>8} {:>9} {:>9} {:>10}  dense/1:4/1:8/1:16",
        "target", "density", "Kcycles", "mem KiB", "mass kept"
    );
    for p in nm_compiler::channelwise::fc_channel_sweep(&fc_geom, &fc_weights, &cluster, &targets)?
    {
        let h = p.histogram;
        println!(
            "{:>7.3} {:>8.3} {:>9.1} {:>9.1} {:>10.3}  {}/{}/{}/{}",
            p.target_density,
            p.density,
            p.cycles as f64 / 1e3,
            p.weight_bits as f64 / 8.0 / 1024.0,
            p.mass_kept,
            h[0],
            h[1],
            h[2],
            h[3]
        );
    }

    banner("takeaway");
    println!("per-channel assignment buys intermediate density/latency points the");
    println!("uniform kernels cannot reach, keeping the highest-magnitude channels");
    println!("dense — with the xDecimate engine every sparse point beats software.");
    Ok(())
}
