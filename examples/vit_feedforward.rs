//! ViT-Small end-to-end deployment (Table 2's right half): sparsify the
//! feed-forward linear layers of every transformer block, compile, and
//! print the latency / memory table. Attention layers stay dense, as in
//! the paper (where they run through Deeploy).
//!
//! Run: `cargo run --release -p nm-examples --example vit_feedforward`

use nm_compiler::plan::{compile, Options};
use nm_compiler::Target;
use nm_core::sparsity::Nm;
use nm_examples::banner;
use nm_models::vit::VitConfig;
use nm_models::vit_small;
use nm_nn::prune::{prune_graph, vit_ff_policy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("ViT-Small / 224x224 (synthetic weights)");
    let cfg = VitConfig::SMALL_224;
    let dense = vit_small(&cfg, 1)?;
    println!(
        "params: {:.2} M   dense MACs: {:.2} G   tokens: {}",
        dense.params() as f64 / 1e6,
        dense.dense_macs() as f64 / 1e9,
        cfg.tokens()
    );

    let base = compile(&dense, &Options::new(Target::Dense1x2))?;
    println!(
        "\n{:<10} {:>9} {:>9} {:>8} {:>9}",
        "config", "Mcycles", "MAC/cyc", "Mem MB", "vs dense"
    );
    let print = |name: &str, cycles: u64, mpc: f64, mem: usize| {
        println!(
            "{:<10} {:>9.2} {:>9.2} {:>8.2} {:>8.2}x",
            name,
            cycles as f64 / 1e6,
            mpc,
            mem as f64 / 1e6,
            base.total_cycles() as f64 / cycles as f64
        );
    };
    print(
        "dense",
        base.total_cycles(),
        base.macs_per_cycle(),
        base.total_weight_bytes(),
    );
    for nm in Nm::KERNEL_PATTERNS {
        let mut g = vit_small(&cfg, 1)?;
        let pruned = prune_graph(&mut g, nm, vit_ff_policy(nm, 128))?;
        let sw = compile(&g, &Options::new(Target::SparseSw))?;
        let isa = compile(&g, &Options::new(Target::SparseIsa))?;
        print(
            &format!("sw-{nm}"),
            sw.total_cycles(),
            sw.macs_per_cycle(),
            sw.total_weight_bytes(),
        );
        print(
            &format!("isa-{nm}"),
            isa.total_cycles(),
            isa.macs_per_cycle(),
            isa.total_weight_bytes(),
        );
        if nm == Nm::ONE_OF_FOUR {
            println!("   ({} feed-forward layers sparsified)", pruned.len());
        }
    }
    println!(
        "\npaper Table 2: dense 975.23 Mcyc / 21.59 MB; 1:16 isa 540.23 Mcyc (1.81x) / 8.76 MB"
    );
    Ok(())
}
