//! GVSoC-style profiling of a compiled network: per-layer compute/DMA
//! breakdown plus tile-level Gantt timelines, reproducing the paper's
//! Sec. 5.2 explanation — convolutions hide weight transfers under
//! compute (double buffering), memory-bound FC layers cannot.
//!
//! Run: `cargo run --release -p nm-examples --example profiling`

use nm_compiler::profile::{breakdown_report, trace_layer};
use nm_compiler::{compile, Options, Target};
use nm_core::sparsity::Nm;
use nm_examples::banner;
use nm_models::{lenet300, resnet18_cifar};
use nm_nn::graph::OpKind;
use nm_nn::prune::{prune_graph, resnet_policy};
use nm_platform::Lane;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("1. ResNet18 @ 1:8 on the xDecimate target — layer breakdown");
    let nm = Nm::ONE_OF_EIGHT;
    let mut graph = resnet18_cifar(100, 1)?;
    prune_graph(&mut graph, nm, resnet_policy(nm))?;
    let opts = Options::new(Target::SparseIsa);
    let report = compile(&graph, &opts)?;
    print!("{}", breakdown_report(&report));

    banner("2. tile timeline of the largest sparse convolution");
    let busiest = report
        .layers
        .iter()
        .filter(|l| l.op_name == "conv2d" && l.choice.as_ref().is_some_and(|c| c.nm().is_some()))
        .max_by_key(|l| l.cycles)
        .expect("a sparse conv exists");
    let lt = trace_layer(&graph, busiest.node, &opts)?;
    println!("node {} ({}, {} tiles):", lt.node, lt.kernel, lt.n_tiles);
    print!("{}", lt.trace.render(72));
    println!(
        "compute is busy {:.0} % of the layer — the DMA lanes hide underneath",
        100.0 * lt.trace.utilization(Lane::Compute)
    );

    banner("3. the memory-bound counterexample: LeNet300's first FC layer");
    let fc_graph = lenet300(1)?;
    let fc_opts = Options::new(Target::Dense1x2);
    let fc_node = fc_graph
        .nodes()
        .iter()
        .position(|n| matches!(n.op, OpKind::Linear(_)))
        .expect("lenet300 starts with a linear layer");
    let lt = trace_layer(&fc_graph, fc_node, &fc_opts)?;
    println!("node {} ({}, {} tiles):", lt.node, lt.kernel, lt.n_tiles);
    print!("{}", lt.trace.render(72));
    println!(
        "here DMA-in is busy {:.0} % — weight transfers, not MACs, set the latency,",
        100.0 * lt.trace.utilization(Lane::DmaIn)
    );
    println!("which is why sparse FC layers win even at 1:4 (fewer bytes moved).");
    Ok(())
}
