//! Keyword spotting on a DS-CNN-style network (the Trommer et al. 2021
//! benchmark family): prune the folded separable blocks to each N:M
//! pattern, deploy through the MATCH-like compiler on the simulated Vega
//! SoC, and compare latency and weight memory across all four targets —
//! the same experiment shape as Table 2, on an audio workload.
//!
//! Run: `cargo run --release -p nm-examples --example keyword_spotting`

use nm_compiler::{compile, Options, Target};
use nm_core::sparsity::Nm;
use nm_core::Tensor;
use nm_examples::{banner, speedup};
use nm_models::ds_cnn_kws;
use nm_nn::prune::{prune_graph, resnet_policy, weight_sparsity};
use nm_nn::{execute, rng::XorShift};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("DS-CNN keyword spotting (49x10 MFCC, 12 classes)");
    let dense = ds_cnn_kws(1)?;
    println!(
        "{} parameters, {:.1} M dense MACs",
        dense.params(),
        dense.dense_macs() as f64 / 1e6
    );

    // A synthetic MFCC frame; real Speech Commands data is substituted
    // per DESIGN.md (latency does not depend on activation values).
    let mut rng = XorShift::new(7);
    let frame = Tensor::from_vec(&[49, 10, 1], rng.fill_weights(490, 60))?;
    let logits = execute(&dense, &frame)?;
    println!("dense logits (first 4): {:?}", &logits.data()[..4]);

    banner("latency & memory per pattern (compiled for Vega)");
    let base = compile(&dense, &Options::new(Target::DensePulpNn))?;
    println!(
        "{:<10} {:>10} {:>12} {:>10} {:>9}",
        "config", "Mcycles", "MACs/cyc", "mem KiB", "speedup"
    );
    println!(
        "{:<10} {:>10.2} {:>12.2} {:>10.1} {:>9}",
        "dense",
        base.total_cycles() as f64 / 1e6,
        base.macs_per_cycle(),
        base.total_weight_bytes() as f64 / 1024.0,
        "1.00x"
    );
    for nm in Nm::KERNEL_PATTERNS {
        let mut g = ds_cnn_kws(1)?;
        prune_graph(&mut g, nm, resnet_policy(nm))?;
        let logits_sparse = execute(&g, &frame)?;
        for target in [Target::SparseSw, Target::SparseIsa] {
            let report = compile(&g, &Options::new(target))?;
            println!(
                "{:<10} {:>10.2} {:>12.2} {:>10.1} {:>9}",
                format!(
                    "{nm} {}",
                    if target == Target::SparseSw {
                        "sw"
                    } else {
                        "isa"
                    }
                ),
                report.total_cycles() as f64 / 1e6,
                report.macs_per_cycle(),
                report.total_weight_bytes() as f64 / 1024.0,
                speedup(base.total_cycles(), report.total_cycles()),
            );
        }
        println!(
            "           (weight sparsity {:.1} %, sparse logits[0..4] {:?})",
            100.0 * weight_sparsity(&g),
            &logits_sparse.data()[..4]
        );
    }

    banner("takeaway");
    println!("the folded 3x3 blocks dominate the MACs, so the DS-CNN behaves like");
    println!("the paper's ResNet18: 1:4 software kernels roughly break even, while");
    println!("1:8/1:16 and every xDecimate variant reduce latency and memory together.");
    Ok(())
}
