//! End-to-end ResNet18/CIFAR-100 deployment (Table 2's left half):
//! builds the network, prunes its 3x3 convolutions to each N:M pattern,
//! compiles it through the MATCH-like flow, and prints the latency /
//! memory table with speedups over the dense baselines.
//!
//! Run: `cargo run --release -p nm-examples --example resnet18_cifar`

use nm_compiler::plan::{compile, Options};
use nm_compiler::Target;
use nm_core::sparsity::Nm;
use nm_examples::banner;
use nm_models::resnet18_cifar;
use nm_nn::prune::{prune_graph, resnet_policy, weight_sparsity};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("ResNet18 / CIFAR-100 geometry (synthetic weights)");
    let dense = resnet18_cifar(100, 1)?;
    println!(
        "params: {:.2} M   dense MACs: {:.1} M",
        dense.params() as f64 / 1e6,
        dense.dense_macs() as f64 / 1e6
    );

    let d1x2 = compile(&dense, &Options::new(Target::Dense1x2))?;
    let dpnn = compile(&dense, &Options::new(Target::DensePulpNn))?;
    println!(
        "\n{:<12} {:>9} {:>9} {:>8} {:>8}",
        "config", "Mcycles", "MAC/cyc", "Mem MB", "vs pulp-nn"
    );
    let print = |name: &str, cycles: u64, mpc: f64, mem: usize| {
        println!(
            "{:<12} {:>9.2} {:>9.2} {:>8.2} {:>8.2}x",
            name,
            cycles as f64 / 1e6,
            mpc,
            mem as f64 / 1e6,
            dpnn.total_cycles() as f64 / cycles as f64
        );
    };
    print(
        "dense-1x2",
        d1x2.total_cycles(),
        d1x2.macs_per_cycle(),
        d1x2.total_weight_bytes(),
    );
    print(
        "pulp-nn",
        dpnn.total_cycles(),
        dpnn.macs_per_cycle(),
        dpnn.total_weight_bytes(),
    );

    for nm in Nm::KERNEL_PATTERNS {
        let mut g = resnet18_cifar(100, 1)?;
        prune_graph(&mut g, nm, resnet_policy(nm))?;
        let sw = compile(&g, &Options::new(Target::SparseSw))?;
        let isa = compile(&g, &Options::new(Target::SparseIsa))?;
        print(
            &format!("sw-{nm}"),
            sw.total_cycles(),
            sw.macs_per_cycle(),
            sw.total_weight_bytes(),
        );
        print(
            &format!("isa-{nm}"),
            isa.total_cycles(),
            isa.macs_per_cycle(),
            isa.total_weight_bytes(),
        );
        if nm == Nm::ONE_OF_SIXTEEN {
            println!(
                "   (overall weight sparsity after pruning: {:.1}%)",
                100.0 * weight_sparsity(&g)
            );
        }
    }
    println!("\npaper Table 2: dense pulp-nn 49.71 Mcyc; 1:8 isa 24.01 Mcyc (2.07x); 1:16 isa 15.48 Mcyc");
    Ok(())
}
